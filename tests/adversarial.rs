//! Adversarial and differential integration tests: extreme parameter
//! regimes, degenerate machines, and checker-vs-simulator agreement
//! under random schedule mutations.

use cyclosched::model::analysis::GraphBuilder;
use cyclosched::prelude::*;
use cyclosched::workloads::{random_csdfg, RandomGraphConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

#[test]
fn huge_volumes_force_colocation() {
    // A chain with enormous communication volumes: any cross-PE split
    // would dwarf the computation, so the compacted schedule should
    // keep the chain on one processor.
    let g = GraphBuilder::new()
        .task("A", 1)
        .task("B", 1)
        .task("C", 1)
        .dep("A", "B", 0, 1000)
        .dep("B", "C", 0, 1000)
        .dep("C", "A", 1, 1000)
        .build()
        .unwrap();
    let m = Machine::linear_array(4);
    let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
    validate(&r.graph, &m, &r.schedule).unwrap();
    let pes: std::collections::HashSet<_> = g.tasks().map(|v| r.schedule.pe(v).unwrap()).collect();
    assert_eq!(pes.len(), 1, "tasks were split across {pes:?}");
    assert_eq!(r.best_length, 3);
}

#[test]
fn diameter_spanning_communication() {
    // Producer pinned by its in-degree to one side of a long linear
    // array; verify the validator and the replay agree on a schedule
    // that must pay multi-hop costs.
    let g = GraphBuilder::new()
        .task("src", 1)
        .task("sink", 1)
        .dep("src", "sink", 0, 3)
        .dep("sink", "src", 1, 3)
        .build()
        .unwrap();
    let m = Machine::linear_array(8);
    // Hand-place at the two ends: 7 hops x volume 3 = 21 per direction.
    let (src, sink) = (
        g.task_by_name("src").unwrap(),
        g.task_by_name("sink").unwrap(),
    );
    let mut s = Schedule::new(8);
    s.place(src, Pe(0), 1, 1).unwrap();
    s.place(sink, Pe(7), 23, 1).unwrap(); // 1 + 21 + 1
    let required = cyclosched::schedule::required_length(&g, &m, &s);
    s.pad_to(required);
    validate(&g, &m, &s).unwrap();
    let rep = replay_static(&g, &m, &s, 10);
    assert!(rep.is_valid());
    // One step earlier must be illegal in both views.
    let mut s2 = Schedule::new(8);
    s2.place(src, Pe(0), 1, 1).unwrap();
    s2.place(sink, Pe(7), 22, 1).unwrap();
    s2.pad_to(required);
    assert!(validate(&g, &m, &s2).is_err());
    assert!(!replay_static(&g, &m, &s2, 10).is_valid());
}

#[test]
fn parallel_edges_and_self_loops_survive_the_pipeline() {
    let mut g = Csdfg::new();
    let a = g.add_task("A", 2).unwrap();
    let b = g.add_task("B", 1).unwrap();
    g.add_dep(a, b, 0, 1).unwrap();
    g.add_dep(a, b, 0, 5).unwrap(); // parallel, heavier
    g.add_dep(a, b, 2, 1).unwrap(); // parallel, delayed
    g.add_dep(b, a, 1, 2).unwrap();
    g.add_dep(a, a, 1, 1).unwrap(); // self loop
    assert!(g.check_legal().is_ok());
    for m in [
        Machine::linear_array(2),
        Machine::complete(3),
        Machine::mesh(2, 2),
    ] {
        let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        validate(&r.graph, &m, &r.schedule).unwrap();
        assert!(replay_static(&r.graph, &m, &r.schedule, 8).is_valid());
    }
}

#[test]
fn single_pe_machines_always_work() {
    for w in cyclosched::workloads::all_workloads() {
        let g = w.build();
        let m = Machine::linear_array(1);
        let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        validate(&r.graph, &m, &r.schedule).unwrap();
        // Serial execution: length >= total work.
        assert!(u64::from(r.best_length) >= g.total_time(), "{}", w.name);
    }
}

#[test]
fn long_delay_chains_relax_constraints() {
    // With k delays on the only cycle, the PSL divides by k: large k
    // should let the schedule shrink toward the critical path.
    let mut lengths = Vec::new();
    for k in [1u32, 2, 4, 8] {
        let g = GraphBuilder::new()
            .task("A", 2)
            .task("B", 2)
            .dep("A", "B", 0, 1)
            .dep("B", "A", k, 1)
            .build()
            .unwrap();
        let m = Machine::complete(2);
        let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        lengths.push(r.best_length);
    }
    for w in lengths.windows(2) {
        assert!(w[1] <= w[0], "more delays should never hurt: {lengths:?}");
    }
    // k=8 gives bound ceil(4/8) = 1... floored by t=2 tasks: period 2.
    assert_eq!(*lengths.last().unwrap(), 2);
}

/// Differential fuzzing: mutate valid schedules and require the
/// algebraic checker and the cycle-accurate replay to agree on
/// validity, every time.
#[test]
fn checker_and_replay_agree_under_mutation() {
    let mut rng = StdRng::seed_from_u64(0xC5DF);
    for seed in 0..30u64 {
        let cfg = RandomGraphConfig {
            nodes: 8,
            back_edges: 3,
            ..Default::default()
        };
        let g = random_csdfg(cfg, seed);
        let m = Machine::mesh(2, 2);
        let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        let base = r.schedule.clone();
        let graph = r.graph;
        // Mutate: move one random task to a random (pe, cs).
        for _ in 0..8 {
            let mut s = base.clone();
            let victims: Vec<_> = graph.tasks().collect();
            let v = victims[rng.gen_range(0..victims.len())];
            let slot = s.remove(v).unwrap();
            let new_pe = Pe(rng.gen_range(0..4));
            let new_cs = rng.gen_range(1..=base.length() + 2);
            if s.place(v, new_pe, new_cs, slot.duration).is_err() {
                continue; // occupied: not a schedule, skip
            }
            let checker_ok = validate(&graph, &m, &s).is_ok();
            let replay_ok = replay_static(&graph, &m, &s, 12).is_valid();
            assert_eq!(
                checker_ok,
                replay_ok,
                "disagreement: seed {seed}, task {} to {new_pe}@cs{new_cs}",
                graph.name(v)
            );
        }
    }
}

#[test]
fn zero_padding_trim_breaks_psl_and_both_views_see_it() {
    // Build a schedule that needs padding, then trim it: the checker
    // and the simulator must both flag the violation.
    let g = GraphBuilder::new()
        .task("A", 1)
        .task("B", 2)
        .dep("A", "B", 0, 2)
        .dep("B", "A", 1, 2)
        .build()
        .unwrap();
    let m = Machine::linear_array(2);
    let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
    let mut s = Schedule::new(2);
    s.place(a, Pe(0), 1, 1).unwrap();
    s.place(b, Pe(1), 4, 2).unwrap();
    let required = cyclosched::schedule::required_length(&g, &m, &s);
    assert!(required > 5);
    s.pad_to(required);
    assert!(validate(&g, &m, &s).is_ok());
    assert!(replay_static(&g, &m, &s, 10).is_valid());
    s.trim_padding();
    assert!(validate(&g, &m, &s).is_err());
    assert!(!replay_static(&g, &m, &s, 10).is_valid());
}

#[test]
fn star_hub_is_the_bottleneck_under_contention() {
    use cyclosched::sim::run_contended;
    let g = cyclosched::workloads::workload_by_name("volterra")
        .unwrap()
        .build();
    let m = Machine::star(8);
    let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
    let c = run_contended(&r.graph, &m, &r.schedule, 30);
    if let Some(((x, y), _)) = c.links.hottest() {
        // Every star link touches the hub (PE index 0).
        assert!(x == 0 || y == 0);
    }
}

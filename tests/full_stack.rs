//! Cross-crate integration: every workload x every machine family,
//! through the full pipeline (model -> schedule -> validate -> retime
//! -> simulate), plus serialization round trips.

use cyclosched::model::{parser, spec::CsdfgSpec, transform};
use cyclosched::prelude::*;

fn all_machines() -> Vec<Machine> {
    let mut m = Machine::paper_suite();
    m.extend([
        Machine::torus(2, 3),
        Machine::star(5),
        Machine::binary_tree(7),
        Machine::complete(3),
        Machine::linear_array(2),
    ]);
    m
}

#[test]
fn every_workload_on_every_machine() {
    for w in cyclosched::workloads::all_workloads() {
        let g = w.build();
        for machine in all_machines() {
            let r = cyclo_compact(&g, &machine, CompactConfig::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, machine.name()));
            validate(&r.graph, &machine, &r.schedule)
                .unwrap_or_else(|v| panic!("{} on {}: {v:?}", w.name, machine.name()));
            assert!(r.best_length <= r.initial_length);
            let replay = replay_static(&r.graph, &machine, &r.schedule, 8);
            assert!(replay.is_valid(), "{} on {}", w.name, machine.name());
        }
    }
}

#[test]
fn slowdown_workloads_schedule_cleanly() {
    for name in ["elliptic", "lattice"] {
        let base = cyclosched::workloads::workload_by_name(name)
            .unwrap()
            .build();
        let g = transform::slowdown(&base, 3);
        for machine in Machine::paper_suite() {
            let r = cyclo_compact(&g, &machine, CompactConfig::default()).unwrap();
            validate(&r.graph, &machine, &r.schedule).unwrap();
            // Slow-down creates slack: the compacted schedule must beat
            // the start-up schedule on every machine.
            assert!(
                r.best_length < r.initial_length,
                "{name} on {}: {} !< {}",
                machine.name(),
                r.best_length,
                r.initial_length
            );
        }
    }
}

#[test]
fn compacted_length_respects_iteration_bound_after_slowdown() {
    let base = cyclosched::workloads::workload_by_name("lattice")
        .unwrap()
        .build();
    for f in 1..=4u32 {
        let g = transform::slowdown(&base, f);
        let bound = iteration_bound(&g).unwrap();
        let r = cyclo_compact(&g, &Machine::complete(8), CompactConfig::default()).unwrap();
        assert!(u64::from(r.best_length) >= bound.ceil(), "slowdown {f}");
    }
}

#[test]
fn graphs_survive_text_and_spec_round_trips_through_the_scheduler() {
    let g = cyclosched::workloads::paper::fig7_example();
    let machine = Machine::mesh(4, 2);
    let direct = cyclo_compact(&g, &machine, CompactConfig::default()).unwrap();

    // text format
    let text = parser::write(&g);
    let g2 = parser::parse(&text).unwrap();
    let via_text = cyclo_compact(&g2, &machine, CompactConfig::default()).unwrap();
    assert_eq!(via_text.best_length, direct.best_length);

    // serde spec
    let spec = CsdfgSpec::from(&g);
    let g3 = spec.build().unwrap();
    let via_spec = cyclo_compact(&g3, &machine, CompactConfig::default()).unwrap();
    assert_eq!(via_spec.best_length, direct.best_length);
}

#[test]
fn unfolded_graphs_still_schedule() {
    let base = cyclosched::workloads::paper::fig1_example();
    let g = transform::unfold(&base, 2);
    let machine = Machine::mesh(2, 2);
    let r = cyclo_compact(&g, &machine, CompactConfig::default()).unwrap();
    validate(&r.graph, &machine, &r.schedule).unwrap();
    // 2 iterations per schedule: per-iteration cost is length/2.
    assert!(r.best_length >= 2);
}

#[test]
fn random_graph_stress() {
    use cyclosched::workloads::{random_csdfg, RandomGraphConfig};
    let cfg = RandomGraphConfig {
        nodes: 24,
        back_edges: 8,
        ..Default::default()
    };
    for seed in 0..12 {
        let g = random_csdfg(cfg, seed);
        let machine = Machine::hypercube(3);
        let r = cyclo_compact(&g, &machine, CompactConfig::default()).unwrap();
        validate(&r.graph, &machine, &r.schedule).unwrap_or_else(|v| panic!("seed {seed}: {v:?}"));
        let replay = replay_static(&r.graph, &machine, &r.schedule, 6);
        assert!(replay.is_valid(), "seed {seed}");
        let st = run_self_timed(&r.graph, &machine, &r.schedule, 30);
        assert!(
            st.initiation_interval <= f64::from(r.best_length) + 1e-9,
            "seed {seed}"
        );
    }
}

#[test]
fn minimum_clock_period_lower_bounds_single_cycle_machines() {
    // On an ideal machine with unlimited PEs, the compacted length can
    // approach the min clock period; it can never beat the iteration
    // bound ceiling.
    let g = cyclosched::workloads::paper::fig1_example();
    let (phi, _) = cyclosched::retiming::clock_period::min_clock_period(&g);
    let machine = Machine::ideal(6);
    let r = cyclo_compact(&g, &machine, CompactConfig::default()).unwrap();
    let bound = iteration_bound(&g).unwrap();
    assert!(u64::from(r.best_length) >= bound.ceil());
    // phi is itself >= the bound's ceiling.
    assert!(u64::from(phi) >= bound.ceil());
}

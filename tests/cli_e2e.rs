//! End-to-end tests of the `cyclosched` binary: real process spawns
//! with piped stdin/stdout, covering the full user journey
//! (compile -> schedule -> simulate) and the error paths.

use std::io::Write as _;
use std::process::{Command, Output, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cyclosched"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> Output {
    let mut child = bin()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cyclosched");
    // Ignore write errors: a process that rejects its arguments exits
    // before reading stdin, which surfaces here as a broken pipe.
    let _ = child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(stdin.as_bytes());
    child.wait_with_output().expect("wait for cyclosched")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "exit {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const GRAPH: &str = "node A t=1\nnode B t=2\nedge A -> B d=0 c=1\nedge B -> A d=1 c=1\n";

#[test]
fn help_prints_usage() {
    let out = bin().arg("help").output().unwrap();
    let text = stdout_of(&out);
    assert!(text.contains("USAGE"));
    assert!(text.contains("schedule"));
}

#[test]
fn no_args_is_help() {
    let out = bin().output().unwrap();
    assert!(stdout_of(&out).contains("USAGE"));
}

#[test]
fn unknown_command_fails_with_message() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn bound_reports_iteration_bound() {
    let out = run_with_stdin(&["bound", "-"], GRAPH);
    let text = stdout_of(&out);
    assert!(text.contains("2 tasks"));
    assert!(text.contains("iteration bound: 3"));
}

#[test]
fn schedule_from_stdin_renders_a_table() {
    let out = run_with_stdin(&["schedule", "-", "--machine", "mesh:2x2"], GRAPH);
    let text = stdout_of(&out);
    assert!(text.contains("pe1"));
    assert!(String::from_utf8_lossy(&out.stderr).contains("compacted"));
}

#[test]
fn schedule_csv_output() {
    let out = run_with_stdin(
        &["schedule", "-", "--machine", "complete:2", "--csv"],
        GRAPH,
    );
    let text = stdout_of(&out);
    assert!(text.starts_with("task,pe,start,end"));
    assert!(text.contains("A,"));
    assert!(text.contains("B,"));
}

#[test]
fn schedule_requires_machine_flag() {
    let out = run_with_stdin(&["schedule", "-"], GRAPH);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--machine"));
}

#[test]
fn illegal_graph_rejected_cleanly() {
    // The analyzer's Pass A runs before `check_legal` and reports the
    // zero-delay cycle with its stable diagnostic code.
    let bad = "edge A -> B d=0 c=1\nedge B -> A d=0 c=1\n";
    let out = run_with_stdin(&["bound", "-"], bad);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(err.contains("CCS001"), "stderr: {err}");
    assert!(err.contains("zero total delay"), "stderr: {err}");
}

#[test]
fn compile_then_schedule_pipeline() {
    let kernel = "y = y[i-1]*k + x;\n";
    let compiled = stdout_of(&run_with_stdin(&["compile", "-"], kernel));
    assert!(compiled.contains("node y"));
    assert!(compiled.contains("edge y -> y.1 d=1")); // delayed self ref feeds the mul
    let out = run_with_stdin(&["schedule", "-", "--machine", "ring:4"], &compiled);
    assert!(out.status.success());
}

#[test]
fn compile_error_carries_position() {
    let out = run_with_stdin(&["compile", "-"], "y = x[j-1];\n");
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("1:"), "{err}");
}

#[test]
fn simulate_reports_replay_and_self_timed() {
    let out = run_with_stdin(
        &[
            "simulate",
            "-",
            "--machine",
            "linear:2",
            "--iterations",
            "10",
        ],
        GRAPH,
    );
    let text = stdout_of(&out);
    assert!(text.contains("static replay"));
    assert!(text.contains("valid: true"));
    assert!(text.contains("self-timed"));
}

#[test]
fn simulate_contended_adds_link_stats() {
    let out = run_with_stdin(
        &[
            "simulate",
            "-",
            "--machine",
            "star:4",
            "--iterations",
            "10",
            "--contended",
        ],
        GRAPH,
    );
    let text = stdout_of(&out);
    assert!(text.contains("contended:"));
}

#[test]
fn machines_lists_specs_and_details() {
    let out = bin().arg("machines").output().unwrap();
    let text = stdout_of(&out);
    assert!(text.contains("mesh:RxC"));
    assert!(text.contains("3-cube"));
    let out = bin().args(["machines", "hypercube:2"]).output().unwrap();
    let text = stdout_of(&out);
    assert!(text.contains("2-cube"));
    assert!(text.contains("graph machine"));
}

#[test]
fn workloads_roundtrip_through_schedule() {
    let out = bin().args(["workloads", "fig1"]).output().unwrap();
    let graph = stdout_of(&out);
    assert!(graph.contains("node A t=1"));
    let out = run_with_stdin(&["schedule", "-", "--machine", "mesh:2x2"], &graph);
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("start-up 7"), "{err}");
}

#[test]
fn svg_export_writes_a_file() {
    let dir = std::env::temp_dir().join(format!("ccs_svg_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("sched.svg");
    let out = run_with_stdin(
        &[
            "schedule",
            "-",
            "--machine",
            "complete:2",
            "--svg",
            path.to_str().unwrap(),
        ],
        GRAPH,
    );
    assert!(out.status.success());
    let svg = std::fs::read_to_string(&path).unwrap();
    assert!(svg.starts_with("<svg"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn refine_flag_accepted() {
    let out = run_with_stdin(
        &["schedule", "-", "--machine", "linear:4", "--refine"],
        GRAPH,
    );
    assert!(out.status.success());
}

/// Spawns `schedule fig1 --machine mesh:2x2 --trace <path>` with a
/// pinned `RAYON_NUM_THREADS`, returning the written trace text.
fn trace_with_threads(threads: &str, path: &std::path::Path) -> String {
    let graph = stdout_of(&bin().args(["workloads", "fig1"]).output().unwrap());
    let mut child = bin()
        .args([
            "schedule",
            "-",
            "--machine",
            "mesh:2x2",
            "--trace",
            path.to_str().unwrap(),
        ])
        .env("RAYON_NUM_THREADS", threads)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cyclosched");
    let _ = child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(graph.as_bytes());
    let out = child.wait_with_output().expect("wait for cyclosched");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(path).expect("read trace")
}

#[test]
fn trace_export_is_valid_chrome_json_and_thread_count_invariant() {
    let dir = std::env::temp_dir().join(format!("ccs_trace_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let t1 = trace_with_threads("1", &dir.join("t1.json"));
    let t8 = trace_with_threads("8", &dir.join("t8.json"));
    // Determinism contract: the logical-clock trace is byte-identical
    // regardless of how many worker threads the process uses.
    assert_eq!(t1, t8, "trace must not depend on RAYON_NUM_THREADS");
    let stats = cyclosched::trace::chrome::validate_chrome(&t1).expect("valid Chrome trace");
    assert!(stats.total > 0);
    assert!(stats.spans >= 2, "startup + compact spans at minimum");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_names_choice_and_runner_up() {
    let graph = stdout_of(&bin().args(["workloads", "fig1"]).output().unwrap());
    let out = run_with_stdin(
        &["schedule", "-", "--machine", "mesh:2x2", "--explain"],
        &graph,
    );
    let text = stdout_of(&out);
    // Every remapped node gets a placement line with its chosen
    // (PE, step) and a runner-up line right after it.
    assert!(text.contains("-> PE"), "{text}");
    assert!(text.contains("runner-up:"), "{text}");
    assert!(text.contains("rotated J = {"), "{text}");
    assert!(text.contains("compaction done:"), "{text}");
}

#[test]
fn explain_narrates_ledger_diffs_under_accepted_passes() {
    let graph = stdout_of(&bin().args(["workloads", "fig1"]).output().unwrap());
    let out = run_with_stdin(
        &["schedule", "-", "--machine", "mesh:2x2", "--explain"],
        &graph,
    );
    let text = stdout_of(&out);
    // Satellite of the report PR: accepted passes are annotated with
    // the edges whose hop-weighted comm cost moved, and where to.
    assert!(text.contains("ledger diff vs pass"), "{text}");
    assert!(text.contains("edge(s) moved"), "{text}");
    assert!(text.contains("cost "), "{text}");
}

/// Spawns `schedule fig1 --machine mesh:2x2 --report <path>` with a
/// pinned `RAYON_NUM_THREADS`, returning the written report text.
fn report_with_threads(threads: &str, path: &std::path::Path) -> String {
    let graph = stdout_of(&bin().args(["workloads", "fig1"]).output().unwrap());
    let mut child = bin()
        .args([
            "schedule",
            "-",
            "--machine",
            "mesh:2x2",
            "--report",
            path.to_str().unwrap(),
        ])
        .env("RAYON_NUM_THREADS", threads)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cyclosched");
    let _ = child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(graph.as_bytes());
    let out = child.wait_with_output().expect("wait for cyclosched");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(path).expect("read report")
}

#[test]
fn report_export_is_valid_and_thread_count_invariant() {
    let dir = std::env::temp_dir().join(format!("ccs_report_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let r1 = report_with_threads("1", &dir.join("r1.html"));
    let r8 = report_with_threads("8", &dir.join("r8.html"));
    // Determinism contract: the report is byte-identical regardless of
    // how many worker threads the process uses.
    assert_eq!(r1, r8, "report must not depend on RAYON_NUM_THREADS");
    let facts = cyclosched::report::check::check_html(&r1).expect("report passes report-check");
    assert_eq!(facts.sections, 4, "all four panels present");
    assert!(facts.conserved >= 1, "heatmaps carry conservation totals");
    for id in ["schedule", "heatmaps", "trajectory", "certificate"] {
        assert!(r1.contains(&format!("<section id=\"{id}\">")), "{id}");
    }
    assert!(r1.contains("optimality certificate"), "{r1:.300}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn heatmap_svg_export_writes_a_standalone_svg() {
    let dir = std::env::temp_dir().join(format!("ccs_hmsvg_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("heat.svg");
    let graph = stdout_of(&bin().args(["workloads", "fig1"]).output().unwrap());
    let out = run_with_stdin(
        &[
            "schedule",
            "-",
            "--machine",
            "mesh:2x2",
            "--heatmap-svg",
            path.to_str().unwrap(),
        ],
        &graph,
    );
    assert!(out.status.success());
    let svg = std::fs::read_to_string(&path).unwrap();
    assert!(svg.starts_with("<svg"), "{svg:.80}");
    assert!(
        svg.contains("xmlns=\"http://www.w3.org/2000/svg\""),
        "standalone SVG needs the namespace"
    );
    assert!(svg.contains("data-routable=\"true\""));
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns `schedule fig1 --machine mesh:2x2 --report-diff <path>
/// --diff-machine complete:4` with a pinned `RAYON_NUM_THREADS`,
/// returning the written diff-report text.
fn diff_report_with_threads(threads: &str, path: &std::path::Path) -> String {
    let graph = stdout_of(&bin().args(["workloads", "fig1"]).output().unwrap());
    let mut child = bin()
        .args([
            "schedule",
            "-",
            "--machine",
            "mesh:2x2",
            "--report-diff",
            path.to_str().unwrap(),
            "--diff-machine",
            "complete:4",
        ])
        .env("RAYON_NUM_THREADS", threads)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cyclosched");
    let _ = child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(graph.as_bytes());
    let out = child.wait_with_output().expect("wait for cyclosched");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::read_to_string(path).expect("read diff report")
}

#[test]
fn report_diff_export_is_valid_and_thread_count_invariant() {
    let dir = std::env::temp_dir().join(format!("ccs_diffreport_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let r1 = diff_report_with_threads("1", &dir.join("d1.html"));
    let r8 = diff_report_with_threads("8", &dir.join("d8.html"));
    assert_eq!(r1, r8, "diff report must not depend on RAYON_NUM_THREADS");
    let facts =
        cyclosched::report::check::check_html(&r1).expect("diff report passes report-check");
    assert_eq!(facts.sections, 4, "all four diff panels present");
    assert!(
        facts.conserved >= 2,
        "both sides carry conservation totals ({} conserved)",
        facts.conserved
    );
    for id in ["schedule", "heatmaps", "ledger", "certificate"] {
        assert!(r1.contains(&format!("<section id=\"{id}\">")), "{id}");
    }
    for tag in ["data-side=\"a\"", "data-side=\"b\"", "data-side=\"delta\""] {
        assert!(r1.contains(tag), "{tag}");
    }
    assert!(r1.contains("2-D Mesh 2x2"), "side A label present");
    assert!(
        r1.contains("Completely Connected 4"),
        "side B label present"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_diff_policy_side_b_reuses_the_machine() {
    let dir = std::env::temp_dir().join(format!("ccs_diffpolicy_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("policy.html");
    let graph = stdout_of(&bin().args(["workloads", "fig1"]).output().unwrap());
    let out = run_with_stdin(
        &[
            "schedule",
            "-",
            "--machine",
            "mesh:2x2",
            "--report-diff",
            path.to_str().unwrap(),
            "--diff-policy",
            "reference",
        ],
        &graph,
    );
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let html = std::fs::read_to_string(&path).unwrap();
    cyclosched::report::check::check_html(&html).expect("policy diff passes report-check");
    assert!(
        html.contains("2-D Mesh 2x2 (reference policy)"),
        "side B label names the policy"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn report_diff_flags_are_validated() {
    let out = run_with_stdin(
        &[
            "schedule",
            "-",
            "--machine",
            "complete:2",
            "--report-diff",
            "x.html",
        ],
        GRAPH,
    );
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--diff-machine"), "{err}");
}

#[test]
fn trace_clock_flag_is_validated() {
    let out = run_with_stdin(
        &[
            "schedule",
            "-",
            "--machine",
            "complete:2",
            "--trace-clock",
            "sundial",
        ],
        GRAPH,
    );
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace-clock"), "{err}");
}

//! End-to-end integration tests following the paper's own narrative:
//! build the published examples, schedule them on the published
//! machines, and verify the published behaviours.

use cyclosched::prelude::*;
use cyclosched::workloads::paper::{fig1_example, fig7_example};

#[test]
fn figure_2a_startup_schedule_is_reproduced_exactly() {
    let g = fig1_example();
    let machine = Machine::mesh(2, 2);
    let s = startup_schedule(&g, &machine, StartupConfig::default()).unwrap();
    let at = |name: &str| {
        let v = g.task_by_name(name).unwrap();
        (s.pe(v).unwrap().index(), s.cb(v).unwrap(), s.ce(v).unwrap())
    };
    // Figure 2(a): pe1 runs A,B,B,D,E,E,F; C lands on pe2 at cs3.
    assert_eq!(at("A"), (0, 1, 1));
    assert_eq!(at("B"), (0, 2, 3));
    assert_eq!(at("C"), (1, 3, 3));
    assert_eq!(at("D"), (0, 4, 4));
    assert_eq!(at("E"), (0, 5, 6));
    assert_eq!(at("F"), (0, 7, 7));
    assert_eq!(s.length(), 7);
}

#[test]
fn first_rotation_matches_figure_1c() {
    let g = fig1_example();
    let machine = Machine::mesh(2, 2);
    let result = cyclo_compact(
        &g,
        &machine,
        CompactConfig {
            passes: 1,
            ..Default::default()
        },
    )
    .unwrap();
    // One pass rotates exactly {A} and yields a 6-step schedule.
    assert_eq!(result.history.len(), 1);
    let rotated: Vec<&str> = result.history[0]
        .rotated
        .iter()
        .map(|&v| g.name(v))
        .collect();
    assert_eq!(rotated, vec!["A"]);
    assert_eq!(result.best_length, 6);
    // Figure 1(c): one delay moved from D->A onto A's out-edges.
    let d = g.task_by_name("D").unwrap();
    let a = g.task_by_name("A").unwrap();
    let da = result.graph.graph().find_edge(d, a).unwrap();
    assert_eq!(result.graph.delay(da), 2);
}

#[test]
fn paper_example_reaches_figure_3b_or_better() {
    let g = fig1_example();
    let machine = Machine::mesh(2, 2);
    let result = cyclo_compact(&g, &machine, CompactConfig::default()).unwrap();
    assert_eq!(result.initial_length, 7);
    assert!(
        result.best_length <= 5,
        "paper reached 5, we got {}",
        result.best_length
    );
    // Never below the iteration bound (3 for this graph).
    assert!(result.best_length >= 3);
    validate(&result.graph, &machine, &result.schedule).unwrap();
}

#[test]
fn fig7_compacts_on_all_five_architectures() {
    // Tables 1-10: the 19-node example on the paper's 8-PE machines.
    let g = fig7_example();
    for machine in Machine::paper_suite() {
        let r = cyclo_compact(&g, &machine, CompactConfig::default()).unwrap();
        assert!(
            (10..=16).contains(&r.initial_length),
            "start-up length {} out of the paper's range on {}",
            r.initial_length,
            machine.name()
        );
        assert!(
            r.best_length < r.initial_length,
            "no compaction on {}",
            machine.name()
        );
        validate(&r.graph, &machine, &r.schedule).unwrap();
        // Independent replay for many iterations.
        let replay = replay_static(&r.graph, &machine, &r.schedule, 25);
        assert!(
            replay.is_valid(),
            "{}: {:?}",
            machine.name(),
            replay.violations
        );
    }
}

#[test]
fn completely_connected_is_never_worse_than_sparse_machines() {
    // §5: "the performance of the system would be better in the
    // completely connected architecture than the other architectures".
    let g = fig7_example();
    let complete = cyclo_compact(&g, &Machine::complete(8), CompactConfig::default())
        .unwrap()
        .best_length;
    for machine in [
        Machine::linear_array(8),
        Machine::ring(8),
        Machine::mesh(4, 2),
    ] {
        let len = cyclo_compact(&g, &machine, CompactConfig::default())
            .unwrap()
            .best_length;
        assert!(
            complete <= len,
            "complete {} vs {} {}",
            complete,
            machine.name(),
            len
        );
    }
}

#[test]
fn relaxation_is_at_least_as_good_as_without() {
    // Table 11's headline: the relaxation scheme dominates.
    let g = fig7_example();
    for machine in Machine::paper_suite() {
        let with = cyclo_compact(
            &g,
            &machine,
            CompactConfig::with_mode(RemapMode::WithRelaxation),
        )
        .unwrap()
        .best_length;
        let without = cyclo_compact(
            &g,
            &machine,
            CompactConfig::with_mode(RemapMode::WithoutRelaxation),
        )
        .unwrap()
        .best_length;
        assert!(
            with <= without,
            "{}: with {} > without {}",
            machine.name(),
            with,
            without
        );
    }
}

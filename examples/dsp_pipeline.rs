//! Schedule real DSP kernels (the Table 11 applications) across the
//! paper's machines, comparing cyclo-compaction against the
//! communication-oblivious baselines and the iteration bound.
//!
//! Run with: `cargo run --example dsp_pipeline [workload]`
//! where `workload` is one of `elliptic`, `lattice`, `fir`, `iir`,
//! `diffeq` (default: `elliptic`).

use cyclosched::model::transform::slowdown;
use cyclosched::prelude::*;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "elliptic".to_string());
    let workload = cyclosched::workloads::workload_by_name(&which)
        .unwrap_or_else(|| panic!("unknown workload {which:?}; try `elliptic` or `lattice`"));
    // Table 11 runs the filters with a slow-down factor of 3.
    let graph = slowdown(&workload.build(), 3);

    println!("workload: {} — {}", workload.name, workload.description);
    println!(
        "  {} tasks, {} deps, total work {} cycles, slow-down 3",
        graph.task_count(),
        graph.dep_count(),
        graph.total_time()
    );
    if let Some(b) = iteration_bound(&graph) {
        println!(
            "  iteration bound: {b} ({:.2} cycles/iteration)\n",
            b.as_f64()
        );
    }

    println!(
        "{:<26} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "machine", "start-up", "compacted", "obl-list", "obl-rot", "self-timed II"
    );
    for machine in Machine::paper_suite() {
        let aware = cyclo_compact(&graph, &machine, CompactConfig::default()).expect("legal graph");
        let obl_list = oblivious_list_scheduling(&graph, &machine).expect("legal graph");
        let (obl_rot, obl_graph) =
            oblivious_rotation_scheduling(&graph, &machine, 64).expect("legal graph");

        validate(&aware.graph, &machine, &aware.schedule).expect("aware schedule valid");
        validate(&graph, &machine, &obl_list.schedule).expect("baseline valid");
        validate(&obl_graph, &machine, &obl_rot.schedule).expect("baseline valid");

        let st = run_self_timed(&aware.graph, &machine, &aware.schedule, 200);
        println!(
            "{:<26} {:>8} {:>10} {:>10} {:>10} {:>12.2}",
            machine.name(),
            aware.initial_length,
            aware.best_length,
            obl_list.actual_length,
            obl_rot.actual_length,
            st.initiation_interval
        );
    }
    println!("\ncolumns: start-up = §3 list schedule; compacted = cyclo-compaction (§4);");
    println!("obl-list / obl-rot = communication-oblivious baselines legalized on the machine;");
    println!("self-timed II = measured ASAP initiation interval of the compacted schedule.");
}

//! Explore how interconnect topology shapes schedule quality: sweep
//! one workload across every built-in machine family and size.
//!
//! Run with: `cargo run --example architecture_sweep [workload]`
//! (default workload: `fig7`).

use cyclosched::prelude::*;

fn machines() -> Vec<Machine> {
    vec![
        Machine::linear_array(4),
        Machine::linear_array(8),
        Machine::ring(4),
        Machine::ring(8),
        Machine::mesh(2, 2),
        Machine::mesh(4, 2),
        Machine::mesh(3, 3),
        Machine::hypercube(2),
        Machine::hypercube(3),
        Machine::hypercube(4),
        Machine::torus(3, 3),
        Machine::star(8),
        Machine::binary_tree(7),
        Machine::complete(4),
        Machine::complete(8),
    ]
}

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "fig7".to_string());
    let workload = cyclosched::workloads::workload_by_name(&which)
        .unwrap_or_else(|| panic!("unknown workload {which:?}"));
    let graph = workload.build();

    println!("workload: {} — {}\n", workload.name, workload.description);
    println!(
        "{:<22} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "machine", "PEs", "diameter", "start-up", "compact", "speedup", "traffic"
    );
    for machine in machines() {
        let r = cyclo_compact(&graph, &machine, CompactConfig::default()).expect("legal workload");
        validate(&r.graph, &machine, &r.schedule).expect("valid");
        let replay = replay_static(&r.graph, &machine, &r.schedule, 50);
        assert!(replay.is_valid());
        println!(
            "{:<22} {:>4} {:>9} {:>9} {:>9} {:>8.2}x {:>9}",
            machine.name(),
            machine.num_pes(),
            machine.diameter(),
            r.initial_length,
            r.best_length,
            r.speedup(),
            replay.traffic / 50,
        );
    }
    println!("\ntraffic = hop*volume units moved per iteration (50-iteration replay).");
    println!("Denser interconnects shorten schedules: completely connected is the floor.");
}

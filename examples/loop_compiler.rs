//! From loop source code to a pipelined multiprocessor schedule:
//! compile a recursive loop kernel with `ccs-lang`, schedule it with
//! cyclo-compaction, and show the result.
//!
//! Run with: `cargo run --example loop_compiler [file|-] [machine-spec]`
//! (defaults: a built-in biquad kernel on `mesh:2x2`).
//!
//! Kernel language: one assignment per statement; `v` = this
//! iteration's value, `v[i-k]` = the value k iterations ago; free
//! names are inputs; `#` comments.

use cyclosched::lang::{compile, LowerConfig};
use cyclosched::prelude::*;
use cyclosched::topology::parse_spec;
use std::io::Read;

const DEMO: &str = "\
# direct-form II biquad section
w = x - a1*w[i-1] - a2*w[i-2];
y = w*b0 + w[i-1]*b1 + w[i-2]*b2;
";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (source, spec) = match args.as_slice() {
        [path, spec] => {
            let text = if path == "-" {
                let mut s = String::new();
                std::io::stdin().read_to_string(&mut s).expect("read stdin");
                s
            } else {
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"))
            };
            (text, spec.clone())
        }
        _ => {
            println!("(no arguments: compiling the built-in biquad demo on mesh:2x2)\n");
            (DEMO.to_string(), "mesh:2x2".into())
        }
    };

    println!("== kernel source ==\n{source}");
    let lowered =
        compile(&source, LowerConfig::default()).unwrap_or_else(|e| panic!("compile error: {e}"));
    let graph = &lowered.graph;
    println!("== compiled CSDFG ==");
    print!("{graph}");

    let machine = parse_spec(&spec).unwrap_or_else(|e| panic!("{e}"));
    println!("\n== machine ==\n{machine}\n");

    if let Some(b) = iteration_bound(graph) {
        println!("iteration bound: {b} control steps/iteration");
    }
    let result = cyclo_compact(graph, &machine, CompactConfig::default())
        .expect("compiled kernels are legal CSDFGs");
    println!(
        "start-up {} steps -> compacted {} steps ({:.2}x speedup)\n",
        result.initial_length,
        result.best_length,
        result.speedup()
    );
    println!(
        "{}",
        result.schedule.render(|v| result.graph.name(v).to_string())
    );

    validate(&result.graph, &machine, &result.schedule).expect("valid schedule");
    let replay = replay_static(&result.graph, &machine, &result.schedule, 200);
    assert!(replay.is_valid());
    println!(
        "replayed 200 iterations: {} messages, {:.1}% utilization",
        replay.messages,
        replay.utilization() * 100.0
    );
}

//! Quickstart: schedule the paper's 6-node example on its 2x2 mesh and
//! watch cyclo-compaction shrink the table from 7 to 5 control steps
//! (paper Figures 1-4).
//!
//! Run with: `cargo run --example quickstart`

use cyclosched::prelude::*;

fn main() {
    // The paper's Figure 1(b) graph and Figure 1(a) machine.
    let graph = cyclosched::workloads::paper::fig1_example();
    let machine = Machine::mesh(2, 2);

    println!("== workload ==");
    print!("{graph}");
    if let Some(bound) = iteration_bound(&graph) {
        println!("iteration bound (no resources, no comm): {bound} control steps/iteration\n");
    }

    println!("== machine ==");
    println!("{machine}\n");

    // Start-up schedule (paper Figure 2a) + cyclo-compaction.
    let result =
        cyclo_compact(&graph, &machine, CompactConfig::default()).expect("fig1 is a legal CSDFG");

    println!(
        "== start-up schedule ({} control steps) ==",
        result.initial_length
    );
    println!("{}", result.initial.render(|v| graph.name(v).to_string()));

    println!(
        "== after cyclo-compaction ({} control steps) ==",
        result.best_length
    );
    println!("{}", result.schedule.render(|v| graph.name(v).to_string()));

    println!("== pass history ==");
    for rec in &result.history {
        let names: Vec<&str> = rec.rotated.iter().map(|&v| graph.name(v)).collect();
        println!(
            "pass {:>2}: rotated {{{}}} -> length {}{}",
            rec.pass,
            names.join(", "),
            rec.length,
            if rec.reverted { " (reverted)" } else { "" }
        );
    }

    println!("\n== retimed graph (delays after compaction) ==");
    for e in result.graph.deps() {
        let (u, v) = result.graph.endpoints(e);
        println!(
            "  {} -> {}  d={}  c={}",
            result.graph.name(u),
            result.graph.name(v),
            result.graph.delay(e),
            result.graph.volume(e)
        );
    }

    // Pipelined execution, visualized: three iterations overlapped
    // (uppercase = even iterations, lowercase = odd).
    println!("\n== pipelined execution (3 iterations) ==");
    let events = cyclosched::sim::trace_static(&result.graph, &result.schedule, 3);
    print!(
        "{}",
        cyclosched::sim::render_gantt(&result.graph, &events, |v| result.graph.name(v).to_string())
    );

    // Double-check with the independent validators.
    validate(&result.graph, &machine, &result.schedule).expect("schedule is valid");
    let replay = replay_static(&result.graph, &machine, &result.schedule, 1000);
    assert!(replay.is_valid());
    println!(
        "\nreplayed 1000 iterations: makespan {} cycles, {} messages, utilization {:.1}%",
        replay.makespan,
        replay.messages,
        replay.utilization() * 100.0
    );
    println!("speedup over start-up schedule: {:.2}x", result.speedup());
}

//! Bring your own loop: parse a CSDFG from the textual format (stdin
//! or a file argument), schedule it on a chosen machine, and print the
//! schedule table plus diagnostics.
//!
//! Run with:
//! `cargo run --example custom_graph -- graph.csdfg mesh:2x4`
//! or pipe a graph in:
//! `echo 'edge A -> B d=0 c=2\nedge B -> A d=1 c=1' | cargo run --example custom_graph -- - ring:6`
//!
//! Machine specs (see `cyclosched::topology::parse_spec`): `linear:N`,
//! `ring:N`, `complete:N`, `mesh:RxC`, `torus:RxC`, `hypercube:D`,
//! `star:N`, `tree:N`, `ideal:N`, `random:N:SEED`.

use cyclosched::model::parser;
use cyclosched::prelude::*;
use cyclosched::topology::parse_spec;
use std::io::Read;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (path, spec) = match args.as_slice() {
        [p, s] => (p.clone(), s.clone()),
        _ => {
            eprintln!("usage: custom_graph <file|-> <machine-spec>");
            eprintln!("falling back to the built-in demo: fig1 on mesh:2x2");
            ("demo".into(), "mesh:2x2".into())
        }
    };

    let graph = match path.as_str() {
        "demo" => cyclosched::workloads::paper::fig1_example(),
        "-" => {
            let mut text = String::new();
            std::io::stdin()
                .read_to_string(&mut text)
                .expect("read stdin");
            parser::parse(&text).unwrap_or_else(|e| panic!("parse error: {e}"))
        }
        file => {
            let text =
                std::fs::read_to_string(file).unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
            parser::parse(&text).unwrap_or_else(|e| panic!("parse error: {e}"))
        }
    };
    graph
        .check_legal()
        .expect("graph must have positive-delay cycles");
    let machine = parse_spec(&spec).unwrap_or_else(|e| panic!("{e}"));

    println!(
        "graph: {} tasks, {} deps",
        graph.task_count(),
        graph.dep_count()
    );
    println!("machine: {machine}\n");

    let result = cyclo_compact(&graph, &machine, CompactConfig::default()).expect("legal");
    println!(
        "start-up {} steps -> compacted {} steps ({:.2}x)",
        result.initial_length,
        result.best_length,
        result.speedup()
    );
    println!(
        "\n{}",
        result.schedule.render(|v| result.graph.name(v).to_string())
    );

    if let Some(b) = iteration_bound(&graph) {
        println!(
            "iteration bound {} => gap to optimum: {:.2}x",
            b,
            f64::from(result.best_length) / b.as_f64()
        );
    }
    let retiming = &result.retiming;
    let moved: Vec<String> = graph
        .tasks()
        .filter(|&v| retiming.get(v) != 0)
        .map(|v| format!("{}:{}", graph.name(v), retiming.get(v)))
        .collect();
    println!(
        "retiming (prologue copies per task): {}",
        if moved.is_empty() {
            "none".into()
        } else {
            moved.join(" ")
        }
    );
}

//! What the paper's contention-free assumption hides: run one
//! compacted schedule self-timed under (a) the paper's model — every
//! message independently costs `hops x volume` — and (b) a contended
//! model where each physical link carries one message at a time, and
//! compare.
//!
//! Run with: `cargo run --release --example contention_study [workload]`
//! (default `volterra`, whose volume-2 quadratic terms stress links).

use cyclosched::prelude::*;
use cyclosched::sim::run_contended;

fn main() {
    let which = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "volterra".to_string());
    let workload = cyclosched::workloads::workload_by_name(&which)
        .unwrap_or_else(|| panic!("unknown workload {which:?}"));
    let graph = workload.build();
    println!("workload: {} — {}\n", workload.name, workload.description);

    println!(
        "{:<22} {:>9} {:>9} {:>12} {:>12} {:>10}",
        "machine", "schedule", "free II", "contended II", "inflation", "link util"
    );
    for machine in [
        Machine::linear_array(8),
        Machine::ring(8),
        Machine::mesh(4, 2),
        Machine::hypercube(3),
        Machine::star(8),
    ] {
        let r = cyclo_compact(&graph, &machine, CompactConfig::default()).expect("legal");
        let free = run_self_timed(&r.graph, &machine, &r.schedule, 100);
        let contended = run_contended(&r.graph, &machine, &r.schedule, 100);
        let inflation = if free.initiation_interval > 0.0 {
            contended.base.initiation_interval / free.initiation_interval
        } else {
            1.0
        };
        println!(
            "{:<22} {:>9} {:>9.2} {:>12.2} {:>11.2}x {:>9.0}%",
            machine.name(),
            r.best_length,
            free.initiation_interval,
            contended.base.initiation_interval,
            inflation,
            contended
                .links
                .mean_utilization(contended.base.makespan, machine.links().len())
                * 100.0,
        );
        if let Some(((a, b), cycles)) = contended.links.hottest() {
            println!(
                "{:<22} hottest link pe{}-pe{}: {} busy cycles",
                "",
                a + 1,
                b + 1,
                cycles
            );
        }
    }
    println!("\nStar machines funnel everything through the hub — watch their");
    println!("inflation vs the mesh. An inflation of 1.00x means the paper's");
    println!("no-congestion assumption was harmless for that schedule.");
}

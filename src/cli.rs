//! Command-line interface of the `cyclosched` binary.
//!
//! Hand-rolled argument handling (no CLI dependency): every subcommand
//! parses its flags into a typed request struct here, where the logic
//! is unit-testable; `src/main.rs` only does I/O.

use crate::core::{CompactConfig, RemapConfig, RemapMode, ScanPolicy};
use std::collections::VecDeque;
use std::fmt;

/// A parsed invocation.
#[derive(Clone, Debug, PartialEq)]
pub enum Command {
    /// `cyclosched schedule <graph> --machine SPEC [...]`
    /// (boxed: the schedule request is by far the largest variant).
    Schedule(Box<ScheduleArgs>),
    /// `cyclosched compile <kernel> [...]`
    Compile(CompileArgs),
    /// `cyclosched bound <graph>`
    Bound {
        /// Graph path or `-` for stdin.
        input: String,
    },
    /// `cyclosched simulate <graph> --machine SPEC [...]`
    Simulate(SimulateArgs),
    /// `cyclosched machines [SPEC]`
    Machines {
        /// Optional spec to describe in detail (DOT output).
        spec: Option<String>,
    },
    /// `cyclosched workloads [NAME]`
    Workloads {
        /// Optional workload to dump in the textual graph format.
        name: Option<String>,
    },
    /// `cyclosched help` or `--help`.
    Help,
}

/// Arguments of the `schedule` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleArgs {
    /// Graph path or `-`.
    pub input: String,
    /// Machine spec (see `ccs-topology::parse_spec`).
    pub machine: String,
    /// Compaction configuration.
    pub passes: usize,
    /// Relaxation mode.
    pub strict: bool,
    /// Rows rotated per pass.
    pub rows: u32,
    /// Emit the schedule as CSV instead of a table.
    pub csv: bool,
    /// Render a Gantt chart over this many iterations (0 = none).
    pub gantt: u32,
    /// Write an SVG rendering of the schedule to this path.
    pub svg: Option<String>,
    /// Run the processor-binding refinement post-pass.
    pub refine: bool,
    /// Write a Chrome-trace JSON of the scheduler's decision stream to
    /// this path.
    pub trace: Option<String>,
    /// Trace timestamp domain (`logical` is deterministic; `wall` uses
    /// real time).
    pub trace_clock: TraceClock,
    /// Print the per-node decision narrative.
    pub explain: bool,
    /// Write the communication profile (`CommProfile` JSON) to this
    /// path.
    pub profile: Option<String>,
    /// Print the ASCII link-load heatmap of the profile.
    pub heatmap: bool,
    /// Certify the final period against the static lower bounds and
    /// print the optimality report.
    pub certify: bool,
    /// Write the optimality report as JSON to this path (implies the
    /// certification run).
    pub certify_json: Option<String>,
    /// Write the self-contained HTML flight-recorder report to this
    /// path.
    pub report: Option<String>,
    /// Write the standalone SVG link-load heatmap to this path.
    pub heatmap_svg: Option<String>,
    /// Write the two-run HTML diff report to this path (requires
    /// `--diff-machine` and/or `--diff-policy` to define side B).
    pub report_diff: Option<String>,
    /// Machine spec of the comparison run (side B of the diff report).
    pub diff_machine: Option<String>,
    /// Scheduler policy of the comparison run (side B).
    pub diff_policy: Option<DiffPolicy>,
}

/// Scheduler policy for the `--report-diff` comparison run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffPolicy {
    /// Remap without relaxation (`RemapMode::WithoutRelaxation`).
    Strict,
    /// Remap with relaxation (the default scheduler behavior).
    Relaxed,
    /// The reference candidate scan (`ScanPolicy::Reference`) — the
    /// unpruned sequential oracle.
    Reference,
}

impl DiffPolicy {
    /// The CLI spelling, used in report labels.
    pub fn name(self) -> &'static str {
        match self {
            DiffPolicy::Strict => "strict",
            DiffPolicy::Relaxed => "relaxed",
            DiffPolicy::Reference => "reference",
        }
    }
}

/// Timestamp domain for `--trace` output.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum TraceClock {
    /// Event-index timestamps: byte-identical output across runs and
    /// thread counts.
    #[default]
    Logical,
    /// Recorded wall-clock timestamps.
    Wall,
}

impl ScheduleArgs {
    /// Converts to the library configuration.
    pub fn compact_config(&self) -> CompactConfig {
        CompactConfig {
            passes: self.passes,
            remap: RemapConfig {
                mode: if self.strict {
                    RemapMode::WithoutRelaxation
                } else {
                    RemapMode::WithRelaxation
                },
                rows_per_pass: self.rows,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    /// The configuration of the `--report-diff` comparison run: the
    /// same passes/rows as side A, with `--diff-policy` applied on
    /// top.  Without a policy override, side B reuses side A's config
    /// (a pure machine comparison).
    pub fn diff_config(&self) -> CompactConfig {
        let mut cfg = self.compact_config();
        match self.diff_policy {
            None => {}
            Some(DiffPolicy::Strict) => cfg.remap.mode = RemapMode::WithoutRelaxation,
            Some(DiffPolicy::Relaxed) => cfg.remap.mode = RemapMode::WithRelaxation,
            Some(DiffPolicy::Reference) => cfg.remap.scan = ScanPolicy::Reference,
        }
        cfg
    }
}

/// Arguments of the `compile` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct CompileArgs {
    /// Kernel path or `-`.
    pub input: String,
    /// Additive latency.
    pub add: u32,
    /// Multiplicative latency.
    pub mul: u32,
    /// Edge volume.
    pub volume: u32,
}

/// Arguments of the `simulate` subcommand.
#[derive(Clone, Debug, PartialEq)]
pub struct SimulateArgs {
    /// Graph path or `-`.
    pub input: String,
    /// Machine spec.
    pub machine: String,
    /// Iterations to execute.
    pub iterations: u32,
    /// Use the link-contended network model.
    pub contended: bool,
}

/// CLI parse error.
#[derive(Clone, Debug, PartialEq)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn fail(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The usage text shown by `help`.
pub const USAGE: &str = "\
cyclosched — architecture-dependent loop scheduling (ICPP'95 cyclo-compaction)

USAGE:
  cyclosched schedule <graph.csdfg|-> --machine SPEC [--passes N]
                      [--strict] [--rows N] [--refine] [--csv]
                      [--gantt N] [--svg FILE]
                      [--trace FILE [--trace-clock logical|wall]] [--explain]
                      [--profile FILE] [--heatmap] [--heatmap-svg FILE]
                      [--certify] [--certify-json FILE] [--report FILE]
                      [--report-diff FILE (--diff-machine SPEC | --diff-policy P)]
  cyclosched compile  <kernel.loop|-> [--add N] [--mul N] [--volume N]
  cyclosched bound    <graph.csdfg|->
  cyclosched simulate <graph.csdfg|-> --machine SPEC [--iterations N] [--contended]
  cyclosched machines [SPEC]
  cyclosched workloads [NAME]

MACHINE SPECS:
  linear:N ring:N complete:N mesh:RxC torus:RxC hypercube:D
  star:N tree:N ideal:N random:N:SEED

Graphs use the textual format: `node A t=1` / `edge A -> B d=0 c=1`.
Kernels use the loop language: `y = y[i-1]*k + x;` (see `compile`).

OBSERVABILITY:
  --trace FILE   export the scheduler's decision stream as Chrome-trace
                 JSON (open in chrome://tracing or ui.perfetto.dev);
                 deterministic with the default `--trace-clock logical`
  --explain      narrate, per node, the chosen (PE, step), the
                 runner-up slot, and every rejected candidate
  --profile FILE write the communication profile (per-edge traffic
                 ledger, link loads, per-PE and per-pass balance) as
                 deterministic JSON; validate with `profile-check`
  --heatmap      print the ASCII PE-to-PE traffic matrix and per-link
                 load bars of the communication profile
  --heatmap-svg FILE
                 write the same heatmap as a standalone SVG file
  --certify      compute the static lower bounds (cycle ratio, resource,
                 critical path, communication) and print an optimality
                 certificate for the achieved period, with witnesses
  --certify-json FILE
                 write the optimality certificate as deterministic JSON
  --report FILE  write a self-contained deterministic HTML report: the
                 start-up Gantt and per-pass placement strips with
                 AN-window hover verdicts, per-pass link-load heatmaps,
                 the pass trajectory with ledger diffs, and the
                 optimality certificate; validate with `report-check`
  --report-diff FILE
                 schedule the same graph twice — side A as configured
                 above, side B on `--diff-machine SPEC` and/or with
                 `--diff-policy strict|relaxed|reference` — and write a
                 comparison page: side-by-side start-up Gantts with the
                 first diverging rotation pass highlighted, the
                 edge-ledger delta table, paired link-load heatmaps
                 with a signed delta heatmap, and both optimality
                 certificates; validate with `report-check`
";

/// Parses raw arguments (without the program name).
pub fn parse_args<I: IntoIterator<Item = String>>(args: I) -> Result<Command, CliError> {
    let mut args: VecDeque<String> = args.into_iter().collect();
    let Some(cmd) = args.pop_front() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "schedule" => parse_schedule(args),
        "compile" => parse_compile(args),
        "bound" => {
            let input = positional(&mut args, "graph")?;
            no_more(args)?;
            Ok(Command::Bound { input })
        }
        "simulate" => parse_simulate(args),
        "machines" => {
            let spec = args.pop_front();
            no_more(args)?;
            Ok(Command::Machines { spec })
        }
        "workloads" => {
            let name = args.pop_front();
            no_more(args)?;
            Ok(Command::Workloads { name })
        }
        other => Err(fail(format!(
            "unknown command {other:?}; try `cyclosched help`"
        ))),
    }
}

fn positional(args: &mut VecDeque<String>, what: &str) -> Result<String, CliError> {
    args.pop_front()
        .ok_or_else(|| fail(format!("missing <{what}> argument")))
}

fn no_more(args: VecDeque<String>) -> Result<(), CliError> {
    if let Some(extra) = args.front() {
        Err(fail(format!("unexpected argument {extra:?}")))
    } else {
        Ok(())
    }
}

fn take_value(args: &mut VecDeque<String>, flag: &str) -> Result<String, CliError> {
    args.pop_front()
        .ok_or_else(|| fail(format!("{flag} needs a value")))
}

fn parse_num<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, CliError> {
    v.parse()
        .map_err(|_| fail(format!("{flag}: bad number {v:?}")))
}

fn parse_schedule(mut args: VecDeque<String>) -> Result<Command, CliError> {
    let input = positional(&mut args, "graph")?;
    let mut out = ScheduleArgs {
        input,
        machine: String::new(),
        passes: 64,
        strict: false,
        rows: 1,
        csv: false,
        gantt: 0,
        svg: None,
        refine: false,
        trace: None,
        trace_clock: TraceClock::default(),
        explain: false,
        profile: None,
        heatmap: false,
        certify: false,
        certify_json: None,
        report: None,
        heatmap_svg: None,
        report_diff: None,
        diff_machine: None,
        diff_policy: None,
    };
    while let Some(flag) = args.pop_front() {
        match flag.as_str() {
            "--machine" => out.machine = take_value(&mut args, "--machine")?,
            "--passes" => out.passes = parse_num(&take_value(&mut args, "--passes")?, "--passes")?,
            "--rows" => out.rows = parse_num(&take_value(&mut args, "--rows")?, "--rows")?,
            "--gantt" => out.gantt = parse_num(&take_value(&mut args, "--gantt")?, "--gantt")?,
            "--svg" => out.svg = Some(take_value(&mut args, "--svg")?),
            "--trace" => out.trace = Some(take_value(&mut args, "--trace")?),
            "--profile" => out.profile = Some(take_value(&mut args, "--profile")?),
            "--heatmap" => out.heatmap = true,
            "--heatmap-svg" => out.heatmap_svg = Some(take_value(&mut args, "--heatmap-svg")?),
            "--report" => out.report = Some(take_value(&mut args, "--report")?),
            "--report-diff" => out.report_diff = Some(take_value(&mut args, "--report-diff")?),
            "--diff-machine" => out.diff_machine = Some(take_value(&mut args, "--diff-machine")?),
            "--diff-policy" => {
                out.diff_policy = Some(match take_value(&mut args, "--diff-policy")?.as_str() {
                    "strict" => DiffPolicy::Strict,
                    "relaxed" => DiffPolicy::Relaxed,
                    "reference" => DiffPolicy::Reference,
                    other => {
                        return Err(fail(format!(
                            "--diff-policy: expected `strict`, `relaxed` or `reference`, \
                             got {other:?}"
                        )))
                    }
                })
            }
            "--certify" => out.certify = true,
            "--certify-json" => {
                out.certify_json = Some(take_value(&mut args, "--certify-json")?);
                out.certify = true;
            }
            "--trace-clock" => {
                out.trace_clock = match take_value(&mut args, "--trace-clock")?.as_str() {
                    "logical" => TraceClock::Logical,
                    "wall" => TraceClock::Wall,
                    other => {
                        return Err(fail(format!(
                            "--trace-clock: expected `logical` or `wall`, got {other:?}"
                        )))
                    }
                }
            }
            "--strict" => out.strict = true,
            "--refine" => out.refine = true,
            "--explain" => out.explain = true,
            "--csv" => out.csv = true,
            other => return Err(fail(format!("schedule: unknown flag {other:?}"))),
        }
    }
    if out.machine.is_empty() {
        return Err(fail("schedule: --machine SPEC is required"));
    }
    let defines_side_b = out.diff_machine.is_some() || out.diff_policy.is_some();
    if out.report_diff.is_some() && !defines_side_b {
        return Err(fail(
            "schedule: --report-diff needs --diff-machine SPEC and/or --diff-policy POLICY \
             to define the comparison run",
        ));
    }
    if out.report_diff.is_none() && defines_side_b {
        return Err(fail(
            "schedule: --diff-machine/--diff-policy only make sense with --report-diff FILE",
        ));
    }
    Ok(Command::Schedule(Box::new(out)))
}

fn parse_compile(mut args: VecDeque<String>) -> Result<Command, CliError> {
    let input = positional(&mut args, "kernel")?;
    let mut out = CompileArgs {
        input,
        add: 1,
        mul: 2,
        volume: 1,
    };
    while let Some(flag) = args.pop_front() {
        match flag.as_str() {
            "--add" => out.add = parse_num(&take_value(&mut args, "--add")?, "--add")?,
            "--mul" => out.mul = parse_num(&take_value(&mut args, "--mul")?, "--mul")?,
            "--volume" => out.volume = parse_num(&take_value(&mut args, "--volume")?, "--volume")?,
            other => return Err(fail(format!("compile: unknown flag {other:?}"))),
        }
    }
    if out.add == 0 || out.mul == 0 || out.volume == 0 {
        return Err(fail("compile: latencies and volume must be >= 1"));
    }
    Ok(Command::Compile(out))
}

fn parse_simulate(mut args: VecDeque<String>) -> Result<Command, CliError> {
    let input = positional(&mut args, "graph")?;
    let mut out = SimulateArgs {
        input,
        machine: String::new(),
        iterations: 100,
        contended: false,
    };
    while let Some(flag) = args.pop_front() {
        match flag.as_str() {
            "--machine" => out.machine = take_value(&mut args, "--machine")?,
            "--iterations" => {
                out.iterations = parse_num(&take_value(&mut args, "--iterations")?, "--iterations")?
            }
            "--contended" => out.contended = true,
            other => return Err(fail(format!("simulate: unknown flag {other:?}"))),
        }
    }
    if out.machine.is_empty() {
        return Err(fail("simulate: --machine SPEC is required"));
    }
    if out.iterations == 0 {
        return Err(fail("simulate: --iterations must be >= 1"));
    }
    Ok(Command::Simulate(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(line: &str) -> Result<Command, CliError> {
        parse_args(line.split_whitespace().map(String::from))
    }

    #[test]
    fn empty_and_help() {
        assert_eq!(parse("").unwrap(), Command::Help);
        assert_eq!(parse("help").unwrap(), Command::Help);
        assert_eq!(parse("--help").unwrap(), Command::Help);
    }

    #[test]
    fn schedule_defaults_and_flags() {
        let Command::Schedule(a) = parse(
            "schedule g.csdfg --machine mesh:4x2 --strict --rows 2 --gantt 3 --refine --svg out.svg",
        )
        .unwrap() else {
            panic!()
        };
        assert!(a.refine);
        assert_eq!(a.svg.as_deref(), Some("out.svg"));
        assert_eq!(a.input, "g.csdfg");
        assert_eq!(a.machine, "mesh:4x2");
        assert!(a.strict);
        assert_eq!(a.rows, 2);
        assert_eq!(a.gantt, 3);
        assert_eq!(a.passes, 64);
        let cfg = a.compact_config();
        assert_eq!(cfg.remap.mode, RemapMode::WithoutRelaxation);
        assert_eq!(cfg.remap.rows_per_pass, 2);
    }

    #[test]
    fn schedule_trace_flags() {
        let Command::Schedule(a) =
            parse("schedule g.csdfg --machine mesh:2x2 --trace out.json --explain").unwrap()
        else {
            panic!()
        };
        assert_eq!(a.trace.as_deref(), Some("out.json"));
        assert_eq!(a.trace_clock, TraceClock::Logical);
        assert!(a.explain);

        let Command::Schedule(a) =
            parse("schedule g --machine mesh:2x2 --trace t.json --trace-clock wall").unwrap()
        else {
            panic!()
        };
        assert_eq!(a.trace_clock, TraceClock::Wall);
        assert!(parse("schedule g --machine m --trace-clock sundial").is_err());
        assert!(parse("schedule g --machine m --trace").is_err());
    }

    #[test]
    fn schedule_profile_flags() {
        let Command::Schedule(a) =
            parse("schedule g --machine mesh:2x2 --profile p.json --heatmap").unwrap()
        else {
            panic!()
        };
        assert_eq!(a.profile.as_deref(), Some("p.json"));
        assert!(a.heatmap);

        let Command::Schedule(a) = parse("schedule g --machine ring:4 --heatmap").unwrap() else {
            panic!()
        };
        assert_eq!(a.profile, None);
        assert!(a.heatmap);
        assert!(parse("schedule g --machine m --profile").is_err());
    }

    #[test]
    fn schedule_certify_flags() {
        let Command::Schedule(a) = parse("schedule g --machine ring:4 --certify").unwrap() else {
            panic!()
        };
        assert!(a.certify);
        assert_eq!(a.certify_json, None);

        let Command::Schedule(a) =
            parse("schedule g --machine ring:4 --certify-json cert.json").unwrap()
        else {
            panic!()
        };
        assert!(a.certify, "--certify-json implies the certification run");
        assert_eq!(a.certify_json.as_deref(), Some("cert.json"));
        assert!(parse("schedule g --machine m --certify-json").is_err());
    }

    #[test]
    fn schedule_report_flags() {
        let Command::Schedule(a) =
            parse("schedule g --machine mesh:2x2 --report out.html --heatmap-svg hm.svg").unwrap()
        else {
            panic!()
        };
        assert_eq!(a.report.as_deref(), Some("out.html"));
        assert_eq!(a.heatmap_svg.as_deref(), Some("hm.svg"));
        assert!(!a.heatmap, "--heatmap-svg does not imply the ASCII heatmap");
        assert!(parse("schedule g --machine m --report").is_err());
        assert!(parse("schedule g --machine m --heatmap-svg").is_err());
    }

    #[test]
    fn schedule_diff_flags() {
        let Command::Schedule(a) =
            parse("schedule g --machine mesh:2x2 --report-diff d.html --diff-machine complete:4")
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(a.report_diff.as_deref(), Some("d.html"));
        assert_eq!(a.diff_machine.as_deref(), Some("complete:4"));
        assert_eq!(a.diff_policy, None);
        let (da, db) = (a.compact_config(), a.diff_config());
        assert_eq!(
            db.remap.mode, da.remap.mode,
            "machine-only diff keeps the config"
        );
        assert_eq!(db.remap.scan, da.remap.scan);
        assert_eq!(db.passes, da.passes);

        let Command::Schedule(a) =
            parse("schedule g --machine ring:4 --report-diff d.html --diff-policy reference")
                .unwrap()
        else {
            panic!()
        };
        assert_eq!(a.diff_policy, Some(DiffPolicy::Reference));
        assert_eq!(a.diff_config().remap.scan, ScanPolicy::Reference);

        let Command::Schedule(a) = parse(
            "schedule g --machine ring:4 --strict --report-diff d.html --diff-policy relaxed",
        )
        .unwrap() else {
            panic!()
        };
        assert_eq!(a.compact_config().remap.mode, RemapMode::WithoutRelaxation);
        assert_eq!(a.diff_config().remap.mode, RemapMode::WithRelaxation);

        let Command::Schedule(a) =
            parse("schedule g --machine ring:4 --report-diff d.html --diff-policy strict").unwrap()
        else {
            panic!()
        };
        assert_eq!(a.diff_config().remap.mode, RemapMode::WithoutRelaxation);
    }

    #[test]
    fn schedule_diff_flag_validation() {
        // --report-diff without a side-B definition.
        assert!(parse("schedule g --machine m --report-diff d.html").is_err());
        // side-B definitions without --report-diff.
        assert!(parse("schedule g --machine m --diff-machine ring:4").is_err());
        assert!(parse("schedule g --machine m --diff-policy strict").is_err());
        // bad policy spelling and missing values.
        assert!(parse("schedule g --machine m --report-diff d --diff-policy greedy").is_err());
        assert!(parse("schedule g --machine m --report-diff").is_err());
        assert!(parse("schedule g --machine m --report-diff d --diff-machine").is_err());
    }

    #[test]
    fn schedule_requires_machine() {
        let err = parse("schedule g.csdfg").unwrap_err();
        assert!(err.to_string().contains("--machine"));
    }

    #[test]
    fn compile_flags() {
        let Command::Compile(a) = parse("compile k.loop --add 3 --mul 7").unwrap() else {
            panic!()
        };
        assert_eq!((a.add, a.mul, a.volume), (3, 7, 1));
        assert!(parse("compile k.loop --mul 0").is_err());
    }

    #[test]
    fn simulate_flags() {
        let Command::Simulate(a) =
            parse("simulate - --machine ring:8 --iterations 50 --contended").unwrap()
        else {
            panic!()
        };
        assert_eq!(a.input, "-");
        assert!(a.contended);
        assert_eq!(a.iterations, 50);
        assert!(parse("simulate - --machine ring:8 --iterations 0").is_err());
    }

    #[test]
    fn bound_and_listing_commands() {
        assert_eq!(
            parse("bound g.csdfg").unwrap(),
            Command::Bound {
                input: "g.csdfg".into()
            }
        );
        assert_eq!(parse("machines").unwrap(), Command::Machines { spec: None });
        assert_eq!(
            parse("machines mesh:3x3").unwrap(),
            Command::Machines {
                spec: Some("mesh:3x3".into())
            }
        );
        assert_eq!(
            parse("workloads elliptic").unwrap(),
            Command::Workloads {
                name: Some("elliptic".into())
            }
        );
    }

    #[test]
    fn unknown_bits_rejected() {
        assert!(parse("frobnicate").is_err());
        assert!(parse("schedule g --machine m --wat").is_err());
        assert!(parse("bound a b").is_err());
        assert!(parse("schedule").is_err());
        assert!(parse("schedule g --machine").is_err());
        assert!(parse("schedule g --machine m --passes many").is_err());
    }
}

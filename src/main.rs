//! The `cyclosched` command-line tool: schedule, compile, analyze and
//! simulate cyclic loop kernels on parallel machines.
//!
//! See `cyclosched help` (or [`cyclosched::cli::USAGE`]) for usage.

use cyclosched::cli::{
    parse_args, Command, CompileArgs, ScheduleArgs, SimulateArgs, TraceClock, USAGE,
};
use cyclosched::lang::{compile as lang_compile, LowerConfig};
use cyclosched::model::parser as graph_parser;
use cyclosched::prelude::*;
use cyclosched::topology::parse_spec;
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let cmd = match parse_args(std::env::args().skip(1)) {
        Ok(cmd) => cmd,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(cmd) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_input(path: &str) -> Result<String, String> {
    if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        Ok(s)
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    }
}

fn load_graph(path: &str) -> Result<Csdfg, String> {
    let text = read_input(path)?;
    let g = graph_parser::parse(&text).map_err(|e| format!("parse error: {e}"))?;
    // Pass A: full input diagnostics. Errors abort (with the same
    // stable CCS0xx codes `ccsc-check` prints); warnings go to stderr
    // but do not stop the run.
    let report = cyclosched::analyze::analyze_graph(&g);
    report_or_abort(path, &report)?;
    g.check_legal().map_err(|e| format!("illegal graph: {e}"))?;
    Ok(g)
}

/// Loads a machine spec and runs the analyzer's machine + cross checks
/// against `g`, reporting like [`load_graph`] does for graph checks.
fn load_machine(spec: &str, g: &Csdfg) -> Result<Machine, String> {
    let machine = parse_spec(spec).map_err(|e| e.to_string())?;
    let mut report = cyclosched::analyze::analyze_machine(&machine);
    report.merge(cyclosched::analyze::analyze_cross(g, &machine));
    report_or_abort(machine.name(), &report)?;
    Ok(machine)
}

/// Prints warnings of `report` to stderr; turns errors into `Err`.
fn report_or_abort(subject: &str, report: &cyclosched::analyze::Report) -> Result<(), String> {
    if report.has_errors() {
        return Err(format!(
            "{subject}: analysis found {} error(s):\n{}",
            report.errors().count(),
            report.render_human()
        ));
    }
    for d in report.diagnostics() {
        eprintln!("{subject}: {d}");
    }
    Ok(())
}

fn run(cmd: Command) -> Result<(), String> {
    match cmd {
        Command::Help => {
            print!("{USAGE}");
            Ok(())
        }
        Command::Bound { input } => {
            let g = load_graph(&input)?;
            let stats = cyclosched::model::analysis::stats(&g);
            println!(
                "{} tasks, {} deps ({} zero-delay), total work {}, {} recurrences",
                stats.tasks, stats.deps, stats.zero_delay_deps, stats.total_time, stats.recurrences
            );
            match iteration_bound(&g) {
                Some(b) => println!(
                    "iteration bound: {b} ({:.3} control steps/iteration, floor {})",
                    b.as_f64(),
                    b.ceil()
                ),
                None => println!("iteration bound: none (acyclic graph)"),
            }
            let (phi, _) = cyclosched::retiming::clock_period::min_clock_period(&g);
            println!("minimum clock period under retiming (no resources): {phi}");
            Ok(())
        }
        Command::Machines { spec } => {
            match spec {
                Some(s) => {
                    let m = parse_spec(&s).map_err(|e| e.to_string())?;
                    println!("{m}");
                    print!("{}", m.to_dot());
                }
                None => {
                    println!("built-in machine specs:");
                    for s in [
                        "linear:N",
                        "ring:N",
                        "complete:N",
                        "mesh:RxC",
                        "torus:RxC",
                        "hypercube:D",
                        "star:N",
                        "tree:N",
                        "ideal:N",
                        "random:N:SEED",
                    ] {
                        println!("  {s}");
                    }
                    println!("\nthe paper's 8-PE suite:");
                    for m in Machine::paper_suite() {
                        println!("  {m}");
                    }
                }
            }
            Ok(())
        }
        Command::Workloads { name } => {
            match name {
                None => {
                    println!("built-in workloads:");
                    for w in cyclosched::workloads::all_workloads() {
                        println!("  {:<12} {}", w.name, w.description);
                    }
                }
                Some(n) => {
                    let w = cyclosched::workloads::workload_by_name(&n)
                        .ok_or_else(|| format!("unknown workload {n:?}"))?;
                    print!("{}", graph_parser::write(&w.build()));
                }
            }
            Ok(())
        }
        Command::Compile(args) => run_compile(args),
        Command::Schedule(args) => run_schedule(*args),
        Command::Simulate(args) => run_simulate(args),
    }
}

fn run_compile(args: CompileArgs) -> Result<(), String> {
    let source = read_input(&args.input)?;
    let config = LowerConfig {
        add_time: args.add,
        mul_time: args.mul,
        input_time: 1,
        volume: args.volume,
    };
    let lowered = lang_compile(&source, config).map_err(|e| format!("compile error: {e}"))?;
    print!("{}", graph_parser::write(&lowered.graph));
    Ok(())
}

fn run_schedule(args: ScheduleArgs) -> Result<(), String> {
    let g = load_graph(&args.input)?;
    let machine = load_machine(&args.machine, &g)?;
    // Record the decision stream only when a consumer asked for it;
    // otherwise the scheduler runs the exact uninstrumented path.
    let diffing = args.report_diff.is_some();
    let traced = args.trace.is_some()
        || args.explain
        || args.profile.is_some()
        || args.heatmap
        || args.heatmap_svg.is_some()
        || args.report.is_some()
        || diffing;
    // The `--report-diff` comparison run (side B): same graph on the
    // `--diff-machine` spec (or side A's machine) under the
    // `--diff-policy` configuration.  Recorded back-to-back with side
    // A via `record_pair`, so the two streams never interleave.
    let mut side_b = None;
    let (outcome, events) = if diffing {
        let machine_b = match &args.diff_machine {
            Some(spec) => load_machine(spec, &g)?,
            None => machine.clone(),
        };
        let (run_a, (outcome_b, events_b)) = cyclosched::trace::record_pair(
            || cyclo_compact(&g, &machine, args.compact_config()),
            || cyclo_compact(&g, &machine_b, args.diff_config()),
        );
        side_b = Some((outcome_b, events_b, machine_b));
        run_a
    } else if traced {
        cyclosched::trace::record(|| cyclo_compact(&g, &machine, args.compact_config()))
    } else {
        (
            cyclo_compact(&g, &machine, args.compact_config()),
            Vec::new(),
        )
    };
    let mut result = outcome.map_err(|e| format!("scheduling failed: {e}"))?;
    if args.refine {
        let refined =
            cyclosched::core::refine::refine_binding(&result.graph, &machine, &result.schedule, 16);
        if refined.moves > 0 {
            eprintln!(
                "refinement: {} moves, (length, traffic) {:?} -> {:?}",
                refined.moves, refined.before, refined.after
            );
        }
        result.schedule = refined.schedule;
        result.best_length = result.schedule.length();
    }
    validate(&result.graph, &machine, &result.schedule)
        .map_err(|v| format!("internal error: invalid schedule: {v:?}"))?;

    eprintln!(
        "{}: start-up {} -> compacted {} control steps ({:.2}x)",
        machine.name(),
        result.initial_length,
        result.best_length,
        result.speedup()
    );
    if !result.history.is_empty() {
        let accepted = result.history.iter().filter(|r| !r.reverted).count();
        let total_ms: f64 = result.history.iter().map(|r| r.wall_ms).sum();
        eprintln!(
            "passes: {} run ({} accepted, {} reverted) in {:.2} ms ({:.3} ms/pass)",
            result.history.len(),
            accepted,
            result.history.len() - accepted,
            total_ms,
            total_ms / result.history.len() as f64
        );
    }
    if args.csv {
        print!(
            "{}",
            cyclosched::schedule::to_csv(&result.graph, &result.schedule)
        );
    } else {
        print!(
            "{}",
            result.schedule.render(|v| result.graph.name(v).to_string())
        );
    }
    if let Some(path) = &args.svg {
        let svg = cyclosched::schedule::to_svg(
            &result.graph,
            &result.schedule,
            cyclosched::schedule::SvgOptions::default(),
        );
        std::fs::write(path, svg).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    if args.gantt > 0 {
        let gantt_events =
            cyclosched::sim::trace_static(&result.graph, &result.schedule, args.gantt);
        eprintln!();
        eprint!(
            "{}",
            cyclosched::sim::render_gantt(&result.graph, &gantt_events, |v| result
                .graph
                .name(v)
                .to_string())
        );
    }
    // Build the profile once for every consumer that reads it: the
    // JSON export, the heatmaps, the explainer's ledger diffs, and the
    // HTML report.  It describes the scheduler's own placement, so it
    // is built from the recorded stream (pre-refinement): the trace,
    // the profile, and the report always agree with each other.
    let needs_profile = args.profile.is_some()
        || args.heatmap
        || args.heatmap_svg.is_some()
        || args.report.is_some()
        || args.explain
        || diffing;
    let profile = needs_profile.then(|| cyclosched::profile::build(&events, &machine));
    let name = |n: u32| {
        result
            .graph
            .name(NodeId::from_index(n as usize))
            .to_string()
    };
    if args.explain {
        let p = profile.as_ref().expect("explain builds the profile");
        let notes = cyclosched::profile::pass_diff_notes(p, &machine, 5, name);
        print!(
            "{}",
            cyclosched::trace::explain::explain_with(&events, name, |pass| {
                notes
                    .iter()
                    .find(|(p, _)| *p == pass)
                    .map(|(_, note)| note.clone())
            })
        );
    }
    if let Some(path) = &args.trace {
        let clock = match args.trace_clock {
            TraceClock::Logical => cyclosched::trace::chrome::Clock::Logical,
            TraceClock::Wall => cyclosched::trace::chrome::Clock::Wall,
        };
        let json = cyclosched::trace::chrome::to_chrome(&events, clock);
        std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path} ({} trace events)", events.len());
    }
    if let Some(profile) = &profile {
        if let Some(path) = &args.profile {
            let mut json = profile.to_json_pretty();
            json.push('\n');
            std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!(
                "wrote {path} (comm profile, {} ledger rows)",
                profile.edges.len()
            );
        }
        if args.heatmap {
            print!("{}", cyclosched::profile::render::heatmap(profile));
        }
        if let Some(path) = &args.heatmap_svg {
            let can_route = cyclosched::profile::routable(&machine);
            let svg = cyclosched::profile::render::heatmap_svg(profile, can_route);
            std::fs::write(path, svg).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path} (link-load heatmap SVG)");
        }
    }
    // Bounds are proven over the *input* graph and all its legal
    // retimings, so the certificate is stated against `g`, not the
    // rotated `result.graph` the schedule was validated with.  The
    // report always grades the schedule, even without `--certify`.
    let certificate = (args.certify || args.report.is_some() || diffing)
        .then(|| cyclosched::bounds::certify_period(&g, &machine, result.best_length));
    if args.certify {
        let report = certificate.as_ref().expect("certify builds the report");
        print!("{}", report.render_human());
        for d in cyclosched::analyze::certify_report(report).diagnostics() {
            eprintln!("{}: {d}", machine.name());
        }
        if let Some(path) = &args.certify_json {
            let mut json = report.to_json_pretty();
            json.push('\n');
            std::fs::write(path, json).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {path} (optimality certificate)");
        }
    }
    if let Some(path) = &args.report {
        let p = profile.as_ref().expect("the report builds the profile");
        let html = cyclosched::report::render_report(
            &cyclosched::report::ReportInput {
                title: &format!("{} on {}", args.input, machine.name()),
                events: &events,
                machine: &machine,
                profile: p,
                certificate: certificate.as_ref(),
            },
            name,
        );
        std::fs::write(path, html).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("wrote {path} (HTML report; validate with report-check)");
    }
    if let Some(path) = &args.report_diff {
        let (outcome_b, events_b, machine_b) = side_b.expect("diffing recorded side B");
        let result_b = outcome_b.map_err(|e| format!("scheduling (diff side B) failed: {e}"))?;
        validate(&result_b.graph, &machine_b, &result_b.schedule)
            .map_err(|v| format!("internal error: invalid side-B schedule: {v:?}"))?;
        let profile_b = cyclosched::profile::build(&events_b, &machine_b);
        let certificate_b =
            cyclosched::bounds::certify_period(&g, &machine_b, result_b.best_length);
        let label_a = machine.name().to_string();
        let label_b = match args.diff_policy {
            Some(p) => format!("{} ({} policy)", machine_b.name(), p.name()),
            None => machine_b.name().to_string(),
        };
        let html = cyclosched::report::diff::render_diff_report(
            &cyclosched::report::diff::DiffInput {
                title: &format!("{}: {} vs {}", args.input, label_a, label_b),
                a: cyclosched::report::diff::DiffSide {
                    label: &label_a,
                    events: &events,
                    machine: &machine,
                    profile: profile.as_ref().expect("diffing builds the profile"),
                    certificate: certificate.as_ref(),
                },
                b: cyclosched::report::diff::DiffSide {
                    label: &label_b,
                    events: &events_b,
                    machine: &machine_b,
                    profile: &profile_b,
                    certificate: Some(&certificate_b),
                },
            },
            name,
        );
        std::fs::write(path, html).map_err(|e| format!("{path}: {e}"))?;
        eprintln!(
            "wrote {path} (HTML diff report, A best {} vs B best {}; validate with report-check)",
            result.best_length, result_b.best_length
        );
    }
    Ok(())
}

fn run_simulate(args: SimulateArgs) -> Result<(), String> {
    let g = load_graph(&args.input)?;
    let machine = load_machine(&args.machine, &g)?;
    let result = cyclo_compact(&g, &machine, Default::default())
        .map_err(|e| format!("scheduling failed: {e}"))?;
    println!(
        "schedule: {} control steps on {}",
        result.best_length,
        machine.name()
    );
    let replay = replay_static(&result.graph, &machine, &result.schedule, args.iterations);
    println!(
        "static replay: makespan {} cycles, {} messages, traffic {}, utilization {:.1}%, valid: {}",
        replay.makespan,
        replay.messages,
        replay.traffic,
        replay.utilization() * 100.0,
        replay.is_valid()
    );
    let st = run_self_timed(&result.graph, &machine, &result.schedule, args.iterations);
    println!(
        "self-timed: II {:.2} cycles/iteration",
        st.initiation_interval
    );
    if args.contended {
        let c = cyclosched::sim::run_contended(
            &result.graph,
            &machine,
            &result.schedule,
            args.iterations,
        );
        println!(
            "contended:  II {:.2} cycles/iteration ({} messages), mean link utilization {:.1}%",
            c.base.initiation_interval,
            c.base.messages,
            c.links
                .mean_utilization(c.base.makespan, machine.links().len())
                * 100.0
        );
        if let Some(((a, b), cycles)) = c.links.hottest() {
            println!(
                "hottest link: pe{}-pe{} with {} busy cycles",
                a + 1,
                b + 1,
                cycles
            );
        }
    }
    Ok(())
}

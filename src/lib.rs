//! # cyclosched
//!
//! A from-scratch Rust implementation of **cyclo-compaction
//! scheduling** from:
//!
//! > Sissades Tongsima, Nelson L. Passos, Edwin H.-M. Sha.
//! > *Architecture-Dependent Loop Scheduling via
//! > Communication-Sensitive Remapping.* ICPP 1995.
//!
//! Cyclic loop bodies are modelled as communication-sensitive
//! data-flow graphs ([`Csdfg`]): tasks with integer execution times,
//! dependencies with loop-carried delay counts and data volumes.  The
//! target machine ([`Machine`]) supplies store-and-forward hop
//! distances; moving the data of an edge between processors costs
//! `hops * volume` control steps.  The scheduler builds a
//! communication-aware list schedule and then iteratively *rotates*
//! (retimes) the first schedule row and *remaps* the rotated tasks to
//! better processors, shrinking the static schedule length — loop
//! pipelining with the interconnect in the loop.
//!
//! ## Quickstart
//!
//! ```
//! use cyclosched::prelude::*;
//!
//! // The paper's running example on its 2x2 mesh.
//! let graph = cyclosched::workloads::paper::fig1_example();
//! let machine = Machine::mesh(2, 2);
//!
//! let result = cyclo_compact(&graph, &machine, CompactConfig::default()).unwrap();
//! assert_eq!(result.initial_length, 7); // paper Figure 2(a)
//! assert!(result.best_length <= 5);     // paper Figure 3(b)
//!
//! // Independent validation: algebraic checker + cycle-accurate replay.
//! assert!(validate(&result.graph, &machine, &result.schedule).is_ok());
//! let replay = replay_static(&result.graph, &machine, &result.schedule, 100);
//! assert!(replay.is_valid());
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`graph`] | `ccs-graph` | directed multigraph substrate + algorithms |
//! | [`model`] | `ccs-model` | the CSDFG model, timing analysis, transforms, parser |
//! | [`topology`] | `ccs-topology` | linear array, ring, mesh, hypercube, ... |
//! | [`retiming`] | `ccs-retiming` | retiming, rotation, iteration bound, min clock period |
//! | [`schedule`] | `ccs-schedule` | schedule tables, `PSL`, validity checking |
//! | [`core`] | `ccs-core` | start-up scheduling, rotate-remap, cyclo-compaction, baselines |
//! | [`sim`] | `ccs-sim` | cycle-accurate replay + self-timed execution |
//! | [`workloads`] | `ccs-workloads` | paper examples, DSP filters, random graphs |
//! | [`lang`] | `ccs-lang` | loop-kernel language compiling to CSDFGs |
//! | [`analyze`] | `ccs-analyze` | static diagnostics (`CCS0xx`/`CCSWxx`), `ccsc-check` |
//! | [`profile`] | `ccs-profile` | communication profiles: traffic ledger, link loads, heatmaps |

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cli;

pub use ccs_analyze as analyze;
pub use ccs_bounds as bounds;
pub use ccs_core as core;
pub use ccs_graph as graph;
pub use ccs_lang as lang;
pub use ccs_model as model;
pub use ccs_profile as profile;
pub use ccs_report as report;
pub use ccs_retiming as retiming;
pub use ccs_schedule as schedule;
pub use ccs_sim as sim;
pub use ccs_topology as topology;
pub use ccs_trace as trace;
pub use ccs_workloads as workloads;

pub use ccs_core::{
    cyclo_compact, startup_schedule, CompactConfig, Compaction, Priority, RemapConfig, RemapMode,
    StartupConfig,
};
pub use ccs_model::{Csdfg, ModelError};
pub use ccs_schedule::{validate, Schedule};
pub use ccs_topology::{Machine, Pe};

/// One-stop imports for typical use.
pub mod prelude {
    pub use crate::core::baselines::{oblivious_list_scheduling, oblivious_rotation_scheduling};
    pub use crate::core::{
        cyclo_compact, startup_schedule, CompactConfig, Compaction, Priority, RemapConfig,
        RemapMode, StartupConfig,
    };
    pub use crate::model::{timing, transform, Csdfg, ModelError, NodeId};
    pub use crate::retiming::{iteration_bound, Ratio, Retiming};
    pub use crate::schedule::{psl, required_length, validate, Schedule, Slot};
    pub use crate::sim::{replay_static, run_self_timed};
    pub use crate::topology::{Machine, Pe};
}

//! Offline stand-in for the `rand` crate (0.8-style API subset).
//!
//! Implements a deterministic xoshiro256++ generator behind the
//! `rand 0.8` surface this workspace uses: `SeedableRng::seed_from_u64`,
//! `Rng::gen_range` over (inclusive) integer ranges, and
//! `Rng::gen_bool`.  The streams differ from upstream `rand`, but every
//! use in this workspace only relies on determinism, not on specific
//! values.

use std::ops::{Range, RangeInclusive};

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (via splitmix64
    /// expansion, so nearby seeds give unrelated streams).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Random number generator interface.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        // 53 uniform mantissa bits, as rand does.
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Types samplable from a range.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

fn next_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is negligible and
    // determinism is what matters here.
    let x = rng.next_u64();
    ((u128::from(x) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + next_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range in gen_range");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + next_below(rng, span + 1) as i128) as $t
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1u32..=4);
            assert!((1..=4).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }
}

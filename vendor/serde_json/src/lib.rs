//! Offline stand-in for `serde_json`: serializes the vendored `serde`
//! [`Value`] data model to JSON text and parses it back.

pub use serde::Value;

use std::fmt;

/// JSON (de)serialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Converts any serializable value into a dynamic [`Value`].
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Builds `T` from a dynamic [`Value`].
pub fn from_value<T: serde::Deserialize>(value: &Value) -> Result<T, Error> {
    Ok(T::from_value(value)?)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, level: usize) {
    use std::fmt::Write as _;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => {
            if f.is_finite() {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    let _ = write!(out, "{f:.1}");
                } else {
                    let _ = write!(out, "{f}");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => write_seq(
            out,
            indent,
            level,
            items.iter(),
            '[',
            ']',
            |item, out, ind, lvl| {
                write_value(item, out, ind, lvl);
            },
        ),
        Value::Object(fields) => write_seq(
            out,
            indent,
            level,
            fields.iter(),
            '{',
            '}',
            |(k, v), out, ind, lvl| {
                write_string(k, out);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(v, out, ind, lvl);
            },
        ),
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    indent: Option<usize>,
    level: usize,
    items: I,
    open: char,
    close: char,
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(open);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * (level + 1)));
        }
        write_item(item, out, indent, level + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(w * level));
        }
    }
    out.push(close);
}

fn write_string(s: &str, out: &mut String) {
    use std::fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `]` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => {
                            return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos)))
                        }
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".into())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            out.push(
                                char::from_u32(cp)
                                    .ok_or_else(|| Error("bad \\u code point".into()))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error(format!("bad escape {:?}", other.map(|b| b as char))))
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| Error("invalid utf-8".into()))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("bad number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_compact() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::UInt(1), Value::Int(-2), Value::Float(1.5)]),
            ),
            ("s".into(), Value::String("x\n\"y\"".into())),
            ("n".into(), Value::Null),
            ("b".into(), Value::Bool(true)),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn pretty_has_indentation() {
        let v = Value::Object(vec![("k".into(), Value::UInt(3))]);
        let text = to_string_pretty(&v).unwrap();
        assert_eq!(text, "{\n  \"k\": 3\n}");
    }

    #[test]
    fn floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn parse_errors_reported() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
    }
}

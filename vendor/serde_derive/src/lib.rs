//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the vendored `serde` data model without depending on `syn`/`quote`
//! (unavailable offline).  Supports exactly what this workspace uses:
//!
//! * named-field structs (no generics),
//! * newtype tuple structs (serialized transparently),
//! * `#[serde(default)]` and `#[serde(default = "path")]` on fields.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field default policy parsed from `#[serde(...)]`.
#[derive(Clone, Debug, PartialEq)]
enum FieldDefault {
    /// Field is required.
    None,
    /// `#[serde(default)]` — use `Default::default()`.
    Trait,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

struct Field {
    name: String,
    default: FieldDefault,
}

enum Shape {
    Named(Vec<Field>),
    /// Newtype struct: exactly one unnamed field.
    Newtype,
}

struct Input {
    name: String,
    shape: Shape,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let body = match &parsed.shape {
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_owned(),
        Shape::Named(fields) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push((::std::string::String::from(\"{n}\"), \
                     ::serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}::serde::Value::Object(__fields)"
            )
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n",
        name = parsed.name
    )
    .parse()
    .expect("derive(Serialize): generated code parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse(input);
    let name = &parsed.name;
    let body = match &parsed.shape {
        Shape::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::Named(fields) => {
            let mut inits = String::new();
            for f in fields {
                let missing = match &f.default {
                    FieldDefault::None => format!(
                        "return ::std::result::Result::Err(::serde::DeError::msg(\
                         \"missing field `{n}` in {name}\"))",
                        n = f.name
                    ),
                    FieldDefault::Trait => "::std::default::Default::default()".to_owned(),
                    FieldDefault::Path(p) => format!("{p}()"),
                };
                inits.push_str(&format!(
                    "{n}: match ::serde::__field(__obj, \"{n}\") {{\n\
                     ::std::option::Option::Some(__x) => ::serde::Deserialize::from_value(__x)?,\n\
                     ::std::option::Option::None => {missing},\n}},\n",
                    n = f.name
                ));
            }
            format!(
                "let __obj = __v.as_object().ok_or_else(|| \
                 ::serde::DeError::msg(\"expected object for {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
    .parse()
    .expect("derive(Deserialize): generated code parses")
}

fn parse(input: TokenStream) -> Input {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    // Skip outer attributes and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }
    match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => i += 1,
        other => panic!("serde stand-in derive supports only structs, found {other:?}"),
    }
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, found {other:?}"),
    };
    i += 1;
    match tokens.get(i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            panic!("serde stand-in derive does not support generic structs ({name})")
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input {
            name,
            shape: Shape::Named(parse_named_fields(g.stream())),
        },
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let n = count_tuple_fields(g.stream());
            assert!(
                n == 1,
                "serde stand-in derive supports only 1-field tuple structs ({name})"
            );
            Input {
                name,
                shape: Shape::Newtype,
            }
        }
        other => panic!("unsupported struct body for {name}: {other:?}"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        // Field attributes.
        let mut default = FieldDefault::None;
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                        if let Some(d) = parse_serde_attr(g.stream()) {
                            default = d;
                        }
                    }
                    i += 2;
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break; // trailing comma / end of stream
        };
        let name = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a comma at angle-bracket depth 0.
        let mut depth = 0i32;
        while let Some(t) = tokens.get(i) {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field { name, default });
    }
    fields
}

/// Parses the inside of a `[...]` attribute group; returns the default
/// policy if it is a `serde(...)` attribute carrying one.
fn parse_serde_attr(stream: TokenStream) -> Option<FieldDefault> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return None,
    }
    let Some(TokenTree::Group(g)) = tokens.get(1) else {
        return None;
    };
    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
    match inner.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "default" => {}
        _ => return None,
    }
    match inner.get(1) {
        Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
            let Some(TokenTree::Literal(lit)) = inner.get(2) else {
                panic!("expected string literal in #[serde(default = ...)]");
            };
            let s = lit.to_string();
            let path = s.trim_matches('"').to_owned();
            Some(FieldDefault::Path(path))
        }
        None => Some(FieldDefault::Trait),
        other => panic!("unsupported #[serde(default ...)] form: {other:?}"),
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut count = 1usize;
    let mut trailing_comma = false;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                trailing_comma = true;
                continue;
            }
            _ => {}
        }
        trailing_comma = false;
    }
    if trailing_comma {
        count -= 1;
    }
    count
}

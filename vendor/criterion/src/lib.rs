//! Offline stand-in for `criterion` (0.5-style API subset).
//!
//! Provides `Criterion::benchmark_group`, `BenchmarkGroup::{bench_function,
//! bench_with_input, sample_size, finish}`, `BenchmarkId`, `Bencher::iter`,
//! and the `criterion_group!` / `criterion_main!` macros.  Timing is a
//! simple warmup-then-median loop — adequate for the relative comparisons
//! this workspace records, not a statistics engine.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so existing `use criterion::black_box` call sites work.
pub use std::hint::black_box;

/// Benchmark identifier: `group/function/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter.
    pub fn new<F: fmt::Display, P: fmt::Display>(function: F, parameter: P) -> Self {
        BenchmarkId {
            function: Some(function.to_string()),
            parameter: Some(parameter.to_string()),
        }
    }

    /// Id with a parameter only (`group/parameter`).
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            function: None,
            parameter: Some(parameter.to_string()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: Some(name.to_owned()),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            function: Some(name),
            parameter: None,
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function, &self.parameter) {
            (Some(func), Some(p)) => write!(f, "{func}/{p}"),
            (Some(func), None) => write!(f, "{func}"),
            (None, Some(p)) => write!(f, "{p}"),
            (None, None) => write!(f, "?"),
        }
    }
}

/// Per-iteration timer handed to the closure under test.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
    target_samples: usize,
}

impl Bencher {
    /// Times `routine`, recording `target_samples` samples of
    /// `iters_per_sample` iterations each (after one warmup sample).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup & calibration: grow the batch until one sample takes
        // at least ~1ms so Instant overhead stays negligible.
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let dt = t0.elapsed();
            if dt >= Duration::from_millis(1) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t0.elapsed());
        }
    }

    fn median_per_iter(&self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        let mut s = self.samples.clone();
        s.sort();
        Some(s[s.len() / 2] / u32::try_from(self.iters_per_sample).unwrap_or(u32::MAX))
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs `routine` as a benchmark named `id` within this group.
    pub fn bench_function<I: Into<BenchmarkId>, R: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: self.sample_count,
        };
        routine(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs `routine` with a borrowed `input` as a benchmark named `id`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, R: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut routine: R,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            iters_per_sample: 1,
            target_samples: self.sample_count,
        };
        routine(&mut b, input);
        self.report(&id, &b);
        self
    }

    /// Marks the group as complete (prints nothing extra; exists for
    /// API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, id: &BenchmarkId, b: &Bencher) {
        match b.median_per_iter() {
            Some(t) => println!("{}/{:<40} {:>14.3?}/iter", self.name, id.to_string(), t),
            None => println!("{}/{} no samples", self.name, id),
        }
    }
}

/// Top-level benchmark harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Creates a fresh harness with default settings.
    pub fn new() -> Self {
        Criterion {}
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_count: 10,
            _criterion: self,
        }
    }

    /// Config hook kept for compatibility; returns self unchanged.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::new().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("p").to_string(), "p");
        assert_eq!(BenchmarkId::from("plain").to_string(), "plain");
    }

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::new();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| std::hint::black_box(1 + 1));
            ran = true;
        });
        g.finish();
        assert!(ran);
    }
}

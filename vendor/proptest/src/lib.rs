//! Offline stand-in for `proptest`.
//!
//! Provides deterministic random-case property testing with the subset
//! of the proptest API this workspace uses: the [`Strategy`] trait with
//! `prop_map` / `prop_flat_map` / `boxed`, range and tuple and `Vec`
//! strategies, [`collection::vec`], [`strategy::Just`], `prop_oneof!`,
//! and the `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics
//! with the generated inputs left to the assertion message.  Cases are
//! generated from a per-test deterministic seed, so failures reproduce.

pub mod test_runner {
    //! Deterministic case generation: configuration and RNG.

    use rand::rngs::StdRng;
    use rand::{Rng as _, SeedableRng as _};

    /// Test-runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Copy, Debug)]
    pub struct Config {
        /// Number of random cases per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies.
    #[derive(Clone, Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// RNG for one `(test name, case index)` pair.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng(StdRng::seed_from_u64(
                h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }

        /// Uniform draw in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            self.0.gen_range(0..bound.max(1))
        }

        /// Uniform `u64` draw in `[lo, hi]`.
        pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
            self.0.gen_range(lo..=hi)
        }

        /// Uniform `i64` draw in `[lo, hi]`.
        pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
            self.0.gen_range(lo..=hi)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// Generated value type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> BoxedStrategy<U>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            let inner = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| f(inner.generate(rng))))
        }

        /// Generates an intermediate value, then generates from the
        /// strategy `f` builds from it.
        fn prop_flat_map<S2, F>(self, f: F) -> BoxedStrategy<S2::Value>
        where
            Self: Sized + 'static,
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            let inner = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| f(inner.generate(rng)).generate(rng)))
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| inner.generate(rng)))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Strategy that always yields a clone of its value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between equally typed strategies
    /// (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let ix = rng.below(self.arms.len());
            self.arms[ix].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.range_i64(self.start as i64, self.end as i64 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    rng.range_i64(*self.start() as i64, *self.end() as i64) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, usize, i8, i16, i32, i64);

    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident : $ix:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$ix.generate(rng),)+)
                }
            }
        )+};
    }
    impl_tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    );
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s with element strategy `S`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.range_u64(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec` strategy with the given element strategy and size spec.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each contained `#[test]` function over deterministic random
/// cases drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])+
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let __cfg: $crate::test_runner::Config = $cfg;
            for __case in 0..u64::from(__cfg.cases) {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                let ($($pat,)+) = ($(
                    $crate::strategy::Strategy::generate(&($strat), &mut __rng),
                )+);
                $body
            }
        }
    )*};
}

/// Asserts a property; on failure panics with the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Uniform choice among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_per_test_and_case() {
        let mut a = crate::test_runner::TestRng::for_case("t", 3);
        let mut b = crate::test_runner::TestRng::for_case("t", 3);
        assert_eq!(a.below(1_000_000), b.below(1_000_000));
        let mut c = crate::test_runner::TestRng::for_case("t", 4);
        let mut d = crate::test_runner::TestRng::for_case("u", 3);
        // Different case index / test name: overwhelmingly likely to
        // diverge from the ("t", 3) stream within a few draws.
        let first = a.below(1_000_000);
        assert!(
            (0..4).any(|_| c.below(1_000_000) != first)
                || (0..4).any(|_| d.below(1_000_000) != first)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3usize..9, y in 1u32..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y), "y = {}", y);
        }

        #[test]
        fn vec_and_tuple_strategies(v in crate::collection::vec((0u32..5, 1u32..3), 0..6)) {
            prop_assert!(v.len() < 6);
            for (a, b) in v {
                prop_assert!(a < 5);
                prop_assert!((1..3).contains(&b));
            }
        }

        #[test]
        fn map_flat_map_oneof(
            n in (1usize..4).prop_flat_map(|n| crate::collection::vec(0usize..n, n)),
            pick in prop_oneof![Just(1u32), 5u32..7, 9u32..=9],
        ) {
            prop_assert!(!n.is_empty());
            prop_assert!(pick == 1 || pick == 5 || pick == 6 || pick == 9);
        }
    }
}

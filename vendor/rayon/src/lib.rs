//! Offline stand-in for `rayon` (prelude subset).
//!
//! `into_par_iter()/par_iter()` + `map` + `collect::<Vec<_>>()` backed by
//! `std::thread::scope`: the input is split into one ordered chunk per
//! thread, each chunk is mapped on its own thread, and the per-chunk
//! outputs are concatenated in order.  Result ordering is therefore
//! identical to the sequential `iter().map().collect()` regardless of
//! thread count — the property the workspace's determinism tests rely on.
//!
//! Honors `RAYON_NUM_THREADS` (like upstream rayon) so tests can force
//! specific thread counts, including 1.

use std::num::NonZeroUsize;

/// Number of worker threads the pool would use.
pub fn current_num_threads() -> usize {
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Maps `items` to outputs in parallel, preserving input order.
fn ordered_par_map<T, U, F>(items: Vec<T>, f: &F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Split into `threads` contiguous chunks, sized as evenly as possible.
    let base = n / threads;
    let extra = n % threads;
    let mut chunks: Vec<Vec<T>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    for i in 0..threads {
        let len = base + usize::from(i < extra);
        chunks.push(it.by_ref().take(len).collect());
    }
    let mut out: Vec<Vec<U>> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| scope.spawn(move || chunk.into_iter().map(f).collect::<Vec<U>>()))
            .collect();
        for h in handles {
            out.push(h.join().expect("rayon stand-in worker panicked"));
        }
    });
    out.into_iter().flatten().collect()
}

/// Parallel iterator over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

/// Parallel iterator produced by [`ParIter::map`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send> ParIter<T> {
    /// Maps each item through `f` (runs when collected).
    pub fn map<U, F>(self, f: F) -> ParMap<T, F>
    where
        U: Send,
        F: Fn(T) -> U + Sync + Send,
    {
        ParMap {
            items: self.items,
            f,
        }
    }

    /// Collects the items unchanged.
    pub fn collect<C: FromParallelIterator<T>>(self) -> C {
        C::from_ordered_vec(ordered_par_map(self.items, &|x| x))
    }
}

impl<T, U, F> ParMap<T, F>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync + Send,
{
    /// Runs the map in parallel and collects outputs in input order.
    pub fn collect<C: FromParallelIterator<U>>(self) -> C {
        C::from_ordered_vec(ordered_par_map(self.items, &self.f))
    }
}

/// Collection types constructible from an ordered parallel result.
pub trait FromParallelIterator<T> {
    /// Builds the collection from items already in input order.
    fn from_ordered_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_ordered_vec(items: Vec<T>) -> Self {
        items
    }
}

/// Types convertible into a parallel iterator by value.
pub trait IntoParallelIterator {
    /// Item type produced.
    type Item: Send;
    /// Converts into a parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

/// Reference-based entry points (`par_iter`), as in rayon's prelude.
pub trait IntoParallelRefIterator<'a> {
    /// Item type produced (a shared reference).
    type Item: Send;
    /// Parallel iterator over `&self`'s items.
    fn par_iter(&'a self) -> ParIter<Self::Item>;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    fn par_iter(&'a self) -> ParIter<&'a T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// Glob-import surface mirroring `rayon::prelude::*`.
pub mod prelude {
    pub use super::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 2).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_iter_by_reference() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.par_iter().map(|s| s.len()).collect();
        let expected: Vec<usize> = input.iter().map(|s| s.len()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn range_and_small_inputs() {
        let out: Vec<usize> = (0..3usize).into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![1, 2, 3]);
        let empty: Vec<usize> = Vec::<usize>::new().into_par_iter().map(|x| x).collect();
        assert!(empty.is_empty());
        let one: Vec<usize> = vec![7].into_par_iter().map(|x| x).collect();
        assert_eq!(one, vec![7]);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}

//! Offline stand-in for the `serde` crate.
//!
//! The real `serde` is unavailable in this build environment (no
//! network access to a registry), so this crate provides the small
//! subset the workspace actually uses: a JSON-like [`Value`] data
//! model, [`Serialize`] / [`Deserialize`] traits expressed in terms of
//! it, and `#[derive(Serialize, Deserialize)]` macros (re-exported from
//! the companion `serde_derive` proc-macro crate) that understand
//! `#[serde(default)]` and `#[serde(default = "path")]`.
//!
//! The JSON text layer lives in the companion `serde_json` stand-in.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-like dynamically typed value.
///
/// Object keys preserve insertion order so struct round-trips are
/// byte-stable.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integer (always `< 0`).
    Int(i64),
    /// Non-negative integer.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// Borrow as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as an object (ordered key/value pairs).
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Convert to `u64` if losslessly possible.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(u) => Some(u),
            Value::Int(i) => u64::try_from(i).ok(),
            _ => None,
        }
    }

    /// Convert to `i64` if losslessly possible.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(i) => Some(i),
            Value::UInt(u) => i64::try_from(u).ok(),
            _ => None,
        }
    }

    /// Convert to `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(f) => Some(f),
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            _ => None,
        }
    }

    /// Borrow as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| __field(o, key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, ix: usize) -> &Value {
        self.as_array().and_then(|a| a.get(ix)).unwrap_or(&NULL)
    }
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from a message.
    pub fn msg(m: impl Into<String>) -> Self {
        DeError(m.into())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialize error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Convert `self` into the dynamic data model.
    fn to_value(&self) -> Value;
}

/// Types constructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Build `Self` from the dynamic data model.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

/// Field lookup helper used by the derive macro.
pub fn __field<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::msg("expected string"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::msg("expected bool"))
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(u64::from(*self)) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let u = v.as_u64().ok_or_else(|| DeError::msg("expected unsigned integer"))?;
                <$t>::try_from(u).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        Value::UInt(*self as u64)
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let u = v
            .as_u64()
            .ok_or_else(|| DeError::msg("expected unsigned integer"))?;
        usize::try_from(u).map_err(|_| DeError::msg("integer out of range"))
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let i = i64::from(*self);
                if i < 0 { Value::Int(i) } else { Value::UInt(i as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let i = v.as_i64().ok_or_else(|| DeError::msg("expected integer"))?;
                <$t>::try_from(i).map_err(|_| DeError::msg("integer out of range"))
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64);

impl Serialize for isize {
    fn to_value(&self) -> Value {
        let i = *self as i64;
        if i < 0 {
            Value::Int(i)
        } else {
            Value::UInt(i as u64)
        }
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let i = v.as_i64().ok_or_else(|| DeError::msg("expected integer"))?;
        isize::try_from(i).map_err(|_| DeError::msg("integer out of range"))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::msg("expected number"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::msg("expected number"))
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::msg("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|_| DeError::msg("wrong array length"))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(t) => t.to_value(),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $ix:tt),+ ; $n:expr)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$ix.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let a = v.as_array().ok_or_else(|| DeError::msg("expected array"))?;
                if a.len() != $n {
                    return Err(DeError::msg("wrong tuple length"));
                }
                Ok(($($t::from_value(&a[$ix])?,)+))
            }
        }
    )+};
}
impl_tuple!(
    (A: 0; 1),
    (A: 0, B: 1; 2),
    (A: 0, B: 1, C: 2; 3),
    (A: 0, B: 1, C: 2, D: 3; 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4; 5)
);

/// Types usable as JSON object keys (serialized as strings, the way
/// `serde_json` renders integer-keyed maps).
pub trait MapKey: Ord + Sized {
    /// Render the key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parse the key back.
    fn from_key(s: &str) -> Result<Self, DeError>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, DeError> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_int_key {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String { self.to_string() }
            fn from_key(s: &str) -> Result<Self, DeError> {
                s.parse().map_err(|_| DeError::msg("bad integer map key"))
            }
        }
    )*};
}
impl_int_key!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::msg("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let v = Value::Object(vec![("xs".into(), Value::Array(vec![Value::UInt(3)]))]);
        assert_eq!(v["xs"][0].as_u64(), Some(3));
        assert_eq!(v["missing"], Value::Null);
    }

    #[test]
    fn primitive_round_trips() {
        assert_eq!(u32::from_value(&42u32.to_value()), Ok(42));
        assert_eq!(i32::from_value(&(-7i32).to_value()), Ok(-7));
        assert_eq!(String::from_value(&"hi".to_value()), Ok("hi".to_owned()));
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(<[u32; 2]>::from_value(&[1u32, 2].to_value()), Ok([1, 2]));
        let t = (1u32, "x".to_owned(), 2.5f64);
        assert_eq!(<(u32, String, f64)>::from_value(&t.to_value()), Ok(t));
    }

    #[test]
    fn map_keys_stringify() {
        let mut m = BTreeMap::new();
        m.insert(3usize, 9u32);
        let v = m.to_value();
        assert_eq!(v["3"].as_u64(), Some(9));
        assert_eq!(BTreeMap::<usize, u32>::from_value(&v), Ok(m));
    }
}

//! Bound soundness: on random CSDFG × machine pairs, every certificate
//! produced by the static bound engine must lower-bound the period the
//! real scheduler actually achieves.  A single counterexample means a
//! bound "proof" overcharges some legal schedule — exactly the bug
//! class the paranoid oracle aborts on in production.
//!
//! This is deliberately a test of *every* certificate, not just the
//! strongest one: a weaker family member with an unsound refinement
//! would otherwise hide behind a binding stronger bound.

use ccs_bounds::{certify, compute_bounds, Verdict};
use ccs_core::{cyclo_compact, CompactConfig};
use ccs_model::Csdfg;
use ccs_topology::Machine;
use proptest::prelude::*;

fn arb_csdfg() -> impl Strategy<Value = Csdfg> {
    (2usize..9).prop_flat_map(|n| {
        let times = proptest::collection::vec(1u32..4, n);
        let edges = proptest::collection::vec((0..n, 0..n, 0u32..3, 1u32..4), 1..n * 2);
        (times, edges).prop_map(move |(times, edges)| {
            let mut g = Csdfg::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| g.add_task(format!("v{i}"), t).unwrap())
                .collect();
            for (a, b, d, c) in edges {
                let delay = if a < b { d } else { d.max(1) };
                g.add_dep(ids[a], ids[b], delay, c).unwrap();
            }
            g
        })
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        (2usize..6).prop_map(Machine::linear_array),
        (3usize..7).prop_map(Machine::ring),
        (2usize..6).prop_map(Machine::complete),
        Just(Machine::mesh(2, 2)),
        Just(Machine::hypercube(2)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every computed bound is <= the period cyclo-compaction achieves.
    #[test]
    fn every_bound_is_sound_against_the_scheduler(g in arb_csdfg(), m in arb_machine()) {
        let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        let bounds = compute_bounds(&g, &m);
        for cert in bounds.certificates() {
            prop_assert!(
                cert.value <= u64::from(r.best_length),
                "unsound `{}` bound {} > achieved period {} (witness {:?})",
                cert.kind, cert.value, r.best_length, cert.witness
            );
        }
        // And the certifier agrees: a real schedule never "beats" a bound.
        let report = certify(&g, &m, &r.schedule);
        prop_assert!(report.verdict != Verdict::BoundExceeded);
    }

    /// The startup schedule (pass 0, unrotated graph) is also covered:
    /// bounds must hold for every validated schedule, not just the
    /// compacted best.
    #[test]
    fn bounds_hold_for_startup_schedules(g in arb_csdfg(), m in arb_machine()) {
        let s = ccs_core::startup_schedule(&g, &m, ccs_core::StartupConfig::default()).unwrap();
        let report = certify(&g, &m, &s);
        prop_assert!(
            report.verdict != Verdict::BoundExceeded,
            "startup period {} beats proven bound {}",
            s.length(),
            report.bounds.best_value()
        );
    }
}

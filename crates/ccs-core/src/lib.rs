//! # ccs-core
//!
//! The primary contribution of Tongsima, Passos & Sha (ICPP 1995):
//! **cyclo-compaction scheduling** — architecture-dependent loop
//! scheduling of cyclic, communication-sensitive data-flow graphs via
//! communication-sensitive remapping.
//!
//! Pipeline:
//!
//! 1. [`startup::startup_schedule`] — the modified list scheduler of
//!    §3: priority function [`priority::evaluate`] (`PF`,
//!    Definition 3.6), processor choice by the `cm < cs` rule;
//! 2. [`remap::rotate_remap`] — one pass of §4: rotate the first
//!    schedule row (implicit retiming), remap each rotated node using
//!    the anticipation function `AN` (Lemma 4.2), repair inter-
//!    iteration slack via the projected schedule length (Lemma 4.3);
//! 3. [`compact::cyclo_compact`] — the driver that iterates passes and
//!    keeps the best schedule (`Q`), with per-pass telemetry;
//! 4. [`baselines`] — the communication-oblivious comparators (classic
//!    list scheduling, Chao–LaPaugh–Sha rotation scheduling).
//!
//! ```
//! use ccs_core::compact::{cyclo_compact, CompactConfig};
//! use ccs_model::Csdfg;
//! use ccs_topology::Machine;
//!
//! let mut g = Csdfg::new();
//! let a = g.add_task("A", 1).unwrap();
//! let b = g.add_task("B", 2).unwrap();
//! g.add_dep(a, b, 0, 1).unwrap();
//! g.add_dep(b, a, 2, 1).unwrap();
//!
//! let machine = Machine::mesh(2, 2);
//! let result = cyclo_compact(&g, &machine, CompactConfig::default()).unwrap();
//! assert!(result.best_length <= result.initial_length);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baselines;
pub mod compact;
pub mod optimal;
pub mod oracle;
pub mod presets;
pub mod priority;
pub mod refine;
pub mod remap;
pub mod startup;
mod traffic;

pub use compact::{cyclo_compact, CompactConfig, Compaction};
pub use priority::Priority;
pub use remap::{
    rotate_remap, rotate_remap_in_place, InPlaceOutcome, RemapConfig, RemapMode, ScanPolicy,
};
pub use startup::{startup_schedule, StartupConfig};

#[cfg(test)]
mod proptests {
    use super::*;
    use ccs_model::Csdfg;
    use ccs_schedule::validate;
    use ccs_topology::Machine;
    use proptest::prelude::*;

    fn arb_csdfg() -> impl Strategy<Value = Csdfg> {
        (2usize..9).prop_flat_map(|n| {
            let times = proptest::collection::vec(1u32..4, n);
            let edges = proptest::collection::vec((0..n, 0..n, 0u32..3, 1u32..4), 1..n * 2);
            (times, edges).prop_map(move |(times, edges)| {
                let mut g = Csdfg::new();
                let ids: Vec<_> = times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| g.add_task(format!("v{i}"), t).unwrap())
                    .collect();
                for (a, b, d, c) in edges {
                    let delay = if a < b { d } else { d.max(1) };
                    g.add_dep(ids[a], ids[b], delay, c).unwrap();
                }
                g
            })
        })
    }

    fn arb_machine() -> impl Strategy<Value = Machine> {
        prop_oneof![
            (2usize..6).prop_map(Machine::linear_array),
            (3usize..7).prop_map(Machine::ring),
            (2usize..6).prop_map(Machine::complete),
            Just(Machine::mesh(2, 2)),
            Just(Machine::hypercube(2)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn startup_schedules_are_always_valid(g in arb_csdfg(), m in arb_machine()) {
            let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
            prop_assert!(validate(&g, &m, &s).is_ok());
            prop_assert_eq!(s.placed_count(), g.task_count());
        }

        #[test]
        fn compaction_output_is_valid_and_no_longer(g in arb_csdfg(), m in arb_machine()) {
            let cfg = CompactConfig { passes: 12, ..Default::default() };
            let r = cyclo_compact(&g, &m, cfg).unwrap();
            prop_assert!(validate(&r.graph, &m, &r.schedule).is_ok());
            prop_assert!(r.best_length <= r.initial_length);
        }

        #[test]
        fn theorem_4_4_without_relaxation_is_monotone(g in arb_csdfg(), m in arb_machine()) {
            let cfg = CompactConfig {
                passes: 12,
                remap: RemapConfig {
                    mode: RemapMode::WithoutRelaxation,
                    max_growth: 0,
                    rows_per_pass: 1,
                    ..Default::default()
                },
                ..Default::default()
            };
            let r = cyclo_compact(&g, &m, cfg).unwrap();
            let mut prev = r.initial_length;
            for rec in &r.history {
                if !rec.reverted {
                    prop_assert!(rec.length <= prev);
                    prev = rec.length;
                }
            }
        }

        #[test]
        fn best_length_never_beats_iteration_bound(g in arb_csdfg(), m in arb_machine()) {
            let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
            if let Some(b) = ccs_retiming::iteration_bound(&g) {
                prop_assert!(u64::from(r.best_length) >= b.ceil(),
                    "length {} below iteration bound {}", r.best_length, b);
            }
        }

        #[test]
        fn retiming_reconstructs_best_graph(g in arb_csdfg(), m in arb_machine()) {
            let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
            prop_assert!(r.retiming.is_legal(&g));
            let reapplied = r.retiming.apply(&g);
            for e in g.deps() {
                prop_assert_eq!(reapplied.delay(e), r.graph.delay(e));
            }
        }

        #[test]
        fn pruned_scan_matches_reference_scan(g in arb_csdfg(), m in arb_machine()) {
            // Pruning soundness: the candidate-scan engine (sequential
            // and forced-parallel) must reproduce the reference full
            // sweep bit-for-bit — schedules, lengths, and the entire
            // pass history.
            let run = |scan: ScanPolicy, parallel_pes: u32| {
                let cfg = CompactConfig {
                    passes: 8,
                    remap: RemapConfig { scan, parallel_pes, ..Default::default() },
                    ..Default::default()
                };
                cyclo_compact(&g, &m, cfg).unwrap()
            };
            let reference = run(ScanPolicy::Reference, u32::MAX);
            let engine = run(ScanPolicy::Engine, u32::MAX);
            let parallel = run(ScanPolicy::Engine, 1);
            for (label, r) in [("engine", &engine), ("parallel", &parallel)] {
                prop_assert_eq!(&r.schedule, &reference.schedule, "{} schedule diverged", label);
                prop_assert_eq!(r.best_length, reference.best_length, "{} best length", label);
                prop_assert_eq!(r.initial_length, reference.initial_length, "{} initial", label);
                prop_assert_eq!(r.history.len(), reference.history.len(), "{} passes", label);
                for (a, b) in r.history.iter().zip(&reference.history) {
                    prop_assert_eq!(a.length, b.length, "{} pass length", label);
                    prop_assert_eq!(a.reverted, b.reverted, "{} pass verdict", label);
                    prop_assert_eq!(&a.rotated, &b.rotated, "{} rotation set", label);
                }
            }
        }

        #[test]
        fn baselines_are_valid(g in arb_csdfg(), m in arb_machine()) {
            let bl = baselines::oblivious_list_scheduling(&g, &m).unwrap();
            prop_assert!(validate(&g, &m, &bl.schedule).is_ok());
            let (br, retimed) = baselines::oblivious_rotation_scheduling(&g, &m, 8).unwrap();
            prop_assert!(validate(&retimed, &m, &br.schedule).is_ok());
        }
    }
}

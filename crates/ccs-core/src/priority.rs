//! The start-up priority function `PF` (Definition 3.6).

use ccs_model::{timing::Timing, Csdfg, NodeId};
use ccs_schedule::Schedule;

/// Priority policies for the start-up list scheduler.
///
/// [`Priority::CommunicationSensitive`] is the paper's `PF`; the other
/// two are ablation baselines (experiment E11).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Priority {
    /// The paper's `PF(v) = max_i { m_i - (cs - (CE(u_i)+1)) - MB(v) }`:
    /// large pending data volumes raise priority, time already spent
    /// waiting discounts them, and mobility lowers priority.
    #[default]
    CommunicationSensitive,
    /// Classic list scheduling: priority is `-MB(v)` (critical-path
    /// first), ignoring data volumes.
    MobilityOnly,
    /// First-in-first-out: ready nodes keep insertion order.
    Fifo,
}

/// Evaluates the priority of ready node `v` at control step `cs`.
///
/// `sched` supplies `CE` of the already-scheduled predecessors; only
/// zero-delay (intra-iteration) predecessors participate, matching the
/// start-up scheduler's feedback-free input graph.
///
/// Higher values mean "schedule earlier".  For [`Priority::Fifo`] the
/// value is constant (callers keep insertion order on ties).
pub fn evaluate(
    policy: Priority,
    g: &Csdfg,
    timing: &Timing,
    sched: &Schedule,
    v: NodeId,
    cs: u32,
) -> i64 {
    match policy {
        Priority::Fifo => 0,
        Priority::MobilityOnly => -i64::from(timing.mobility_at(v, cs)),
        Priority::CommunicationSensitive => {
            let mb = i64::from(timing.mobility_at(v, cs));
            let mut best: Option<i64> = None;
            for e in g.intra_iter_in_deps(v) {
                let (u, _) = g.endpoints(e);
                let Some(ce_u) = sched.ce(u) else { continue };
                let m = i64::from(g.volume(e));
                let waited = i64::from(cs) - (i64::from(ce_u) + 1);
                let score = m - waited - mb;
                best = Some(best.map_or(score, |b: i64| b.max(score)));
            }
            // Roots (no intra-iteration predecessors): volume and wait
            // terms vanish; mobility alone orders them.
            best.unwrap_or(-mb)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_model::timing;
    use ccs_topology::Pe;

    fn fork() -> (Csdfg, [NodeId; 3]) {
        // A -> B (volume 5), A -> C (volume 1); C has higher mobility.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 3).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 5).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        (g, [a, b, c])
    }

    #[test]
    fn volume_raises_priority() {
        let (g, [a, b, c]) = fork();
        let t = timing::analyze(&g).unwrap();
        let mut s = Schedule::new(1);
        s.place(a, Pe(0), 1, 1).unwrap();
        let pb = evaluate(Priority::CommunicationSensitive, &g, &t, &s, b, 2);
        let pc = evaluate(Priority::CommunicationSensitive, &g, &t, &s, c, 2);
        // B: m=5, waited 0, MB(B)=0 -> 5. C: m=1, waited 0, MB(C)=2 -> -1.
        assert_eq!(pb, 5);
        assert_eq!(pc, -1);
        assert!(pb > pc);
    }

    #[test]
    fn waiting_discounts_volume() {
        let (g, [a, b, _c]) = fork();
        let t = timing::analyze(&g).unwrap();
        let mut s = Schedule::new(1);
        s.place(a, Pe(0), 1, 1).unwrap();
        let at2 = evaluate(Priority::CommunicationSensitive, &g, &t, &s, b, 2);
        let at4 = evaluate(Priority::CommunicationSensitive, &g, &t, &s, b, 4);
        assert_eq!(at2 - at4, 2);
    }

    #[test]
    fn mobility_only_ignores_volume() {
        let (g, [a, b, c]) = fork();
        let t = timing::analyze(&g).unwrap();
        let mut s = Schedule::new(1);
        s.place(a, Pe(0), 1, 1).unwrap();
        let pb = evaluate(Priority::MobilityOnly, &g, &t, &s, b, 2);
        let pc = evaluate(Priority::MobilityOnly, &g, &t, &s, c, 2);
        assert_eq!(pb, 0);
        assert_eq!(pc, -2);
    }

    #[test]
    fn fifo_is_flat() {
        let (g, [_, b, c]) = fork();
        let t = timing::analyze(&g).unwrap();
        let s = Schedule::new(1);
        assert_eq!(evaluate(Priority::Fifo, &g, &t, &s, b, 1), 0);
        assert_eq!(evaluate(Priority::Fifo, &g, &t, &s, c, 1), 0);
    }

    #[test]
    fn roots_ordered_by_mobility() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 3).unwrap(); // long: critical
        let b = g.add_task("B", 1).unwrap(); // slack 2
        let t = timing::analyze(&g).unwrap();
        let s = Schedule::new(1);
        let pa = evaluate(Priority::CommunicationSensitive, &g, &t, &s, a, 1);
        let pb = evaluate(Priority::CommunicationSensitive, &g, &t, &s, b, 1);
        assert!(pa > pb);
    }
}

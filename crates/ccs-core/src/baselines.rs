//! Communication-oblivious baselines the paper argues against.
//!
//! Both baselines make their decisions against an *ideal* machine
//! (free communication — see [`Machine::ideal`]) and are then made to
//! run on the real machine by [`crate::startup::legalize`]:
//! processor assignments and per-PE execution order are kept, start
//! times are re-derived with real communication costs, and the table is
//! padded to cover all projected schedule lengths.  The gap between the
//! oblivious length and cyclo-compaction's length is what the paper's
//! communication-sensitivity buys.

use crate::compact::{cyclo_compact, CompactConfig};
use crate::startup::{legalize, startup_schedule, StartupConfig};
use ccs_model::{Csdfg, ModelError};
use ccs_schedule::{required_length, Schedule};
use ccs_topology::Machine;

/// Result of running a communication-oblivious baseline.
#[derive(Clone, Debug)]
pub struct BaselineResult {
    /// Schedule length the baseline *believed* it achieved (on the
    /// ideal machine).
    pub believed_length: u32,
    /// The schedule after legalization on the real machine.
    pub schedule: Schedule,
    /// Actual schedule length on the real machine.
    pub actual_length: u32,
}

/// Classic list scheduling (mobility priority, no communication in the
/// placement decisions), legalized on `machine`.
pub fn oblivious_list_scheduling(
    g: &Csdfg,
    machine: &Machine,
) -> Result<BaselineResult, ModelError> {
    let ideal = Machine::ideal(machine.num_pes());
    let cfg = StartupConfig {
        ignore_communication: true,
        ..Default::default()
    };
    let believed = startup_schedule(g, &ideal, cfg)?;
    let believed_length = believed.length();
    let mut schedule = legalize(g, machine, &believed);
    schedule.pad_to(required_length(g, machine, &schedule));
    let actual_length = schedule.length();
    Ok(BaselineResult {
        believed_length,
        schedule,
        actual_length,
    })
}

/// Rotation scheduling in the style of Chao–LaPaugh–Sha (DAC'93):
/// loop pipelining by rotation, but with all scheduling decisions made
/// against the ideal machine.  The final (retimed) schedule is
/// legalized on the real machine.
///
/// Returns the baseline result plus the retimed graph it applies to.
pub fn oblivious_rotation_scheduling(
    g: &Csdfg,
    machine: &Machine,
    passes: usize,
) -> Result<(BaselineResult, Csdfg), ModelError> {
    let ideal = Machine::ideal(machine.num_pes());
    let cfg = CompactConfig {
        passes,
        ..Default::default()
    };
    let result = cyclo_compact(g, &ideal, cfg)?;
    let believed_length = result.best_length;
    let mut schedule = legalize(&result.graph, machine, &result.schedule);
    schedule.pad_to(required_length(&result.graph, machine, &schedule));
    let actual_length = schedule.length();
    Ok((
        BaselineResult {
            believed_length,
            schedule,
            actual_length,
        },
        result.graph,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_schedule::validate;

    fn fig1() -> Csdfg {
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        g
    }

    #[test]
    fn oblivious_list_is_valid_after_legalization() {
        let g = fig1();
        for m in Machine::paper_suite() {
            let r = oblivious_list_scheduling(&g, &m).unwrap();
            assert!(validate(&g, &m, &r.schedule).is_ok(), "{}", m.name());
            assert!(r.actual_length >= r.believed_length);
        }
    }

    #[test]
    fn oblivious_rotation_is_valid_after_legalization() {
        let g = fig1();
        for m in Machine::paper_suite() {
            let (r, retimed) = oblivious_rotation_scheduling(&g, &m, 16).unwrap();
            assert!(validate(&retimed, &m, &r.schedule).is_ok(), "{}", m.name());
            assert!(r.actual_length >= r.believed_length);
        }
    }

    #[test]
    fn ideal_machine_makes_believed_equal_actual() {
        let g = fig1();
        let m = Machine::ideal(4);
        let r = oblivious_list_scheduling(&g, &m).unwrap();
        assert_eq!(r.believed_length, r.actual_length);
    }

    #[test]
    fn communication_sensitivity_pays_off_on_sparse_machines() {
        // On a linear array the communication-aware pipeline should be
        // at least as short as the oblivious one.
        let g = fig1();
        let m = Machine::linear_array(4);
        let aware = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        let (oblivious, _) = oblivious_rotation_scheduling(&g, &m, 64).unwrap();
        assert!(
            aware.best_length <= oblivious.actual_length,
            "aware {} vs oblivious {}",
            aware.best_length,
            oblivious.actual_length
        );
    }
}

//! Pass B: the invariant oracle.
//!
//! Every mutation of the `(graph, schedule)` pair on the compaction
//! hot path — a rotate-remap apply, a rollback, an accepted driver
//! pass — is re-validated through the independent `ccs-schedule`
//! checker.  A failed validation aborts immediately with the stage
//! name and every violation's stable `CCS02x` code, so a scheduler bug
//! surfaces at the mutation that introduced it instead of as a wrong
//! number three layers later.
//!
//! The oracle is compiled in whenever `debug_assertions` are on (so
//! every `cargo test` exercises it for free) or the `paranoid` cargo
//! feature is enabled (so release binaries can opt in:
//! `cargo test --release --features paranoid`).  In plain release
//! builds [`verify`] is an empty inline function and costs nothing —
//! the bench fingerprints and timings are identical with the oracle
//! compiled out.

use ccs_model::Csdfg;
use ccs_schedule::{validate, Schedule, Violation};
use ccs_topology::Machine;

/// `true` when the oracle is compiled in: debug/test builds, or any
/// build with the `paranoid` feature.
pub const ENABLED: bool = cfg!(any(debug_assertions, feature = "paranoid"));

/// Non-panicking probe: re-runs the full schedule validator and
/// returns its violations.  Always available (independent of the
/// `paranoid` gate); used by tests and by callers that want to handle
/// corruption themselves.
pub fn check(g: &Csdfg, machine: &Machine, sched: &Schedule) -> Result<(), Vec<Violation>> {
    validate(g, machine, sched)
}

/// Re-validates `sched` against `(g, machine)` and panics with the
/// stage name and every violation (each carrying its `CCS02x` code)
/// if the schedule is invalid.  Compiled to a no-op unless
/// [`ENABLED`].
#[inline]
pub fn verify(stage: &str, g: &Csdfg, machine: &Machine, sched: &Schedule) {
    #[cfg(any(debug_assertions, feature = "paranoid"))]
    {
        if let Err(violations) = validate(g, machine, sched) {
            use std::fmt::Write as _;
            let mut msg = format!(
                "invariant oracle tripped at `{stage}`: {} violation(s)",
                violations.len()
            );
            for v in &violations {
                let _ = write!(msg, "\n  {v}");
            }
            panic!("{msg}");
        }
    }
    #[cfg(not(any(debug_assertions, feature = "paranoid")))]
    {
        let _ = (stage, g, machine, sched);
    }
}

/// Cross-checks a *validated* schedule against the static bound
/// engine: no legal schedule can beat a proven lower bound, so a
/// period below `ccs_bounds::compute_bounds(g0, machine).best_value()`
/// means either a bound proof or the schedule validator is wrong —
/// both are internal bugs, and the oracle fails loudly naming the
/// offending certificate.  `g0` must be the *input* graph of the
/// compaction run (bounds are proven over all its legal retimings).
/// Compiled to a no-op unless [`ENABLED`].
#[inline]
pub fn verify_bounds(stage: &str, g0: &Csdfg, machine: &Machine, sched: &Schedule) {
    #[cfg(any(debug_assertions, feature = "paranoid"))]
    {
        let report = ccs_bounds::certify(g0, machine, sched);
        if report.verdict == ccs_bounds::Verdict::BoundExceeded {
            // INVARIANT: BoundExceeded means period < best bound, which
            // requires at least one certificate to exist.
            let best = report.best().expect("exceeded verdict implies a bound");
            panic!(
                "bound oracle tripped at `{stage}`: period {} beats the proven \
                 `{}` lower bound {} — the bound proof or the validator is wrong\n{}",
                sched.length(),
                best.kind,
                best.value,
                report.render_human()
            );
        }
    }
    #[cfg(not(any(debug_assertions, feature = "paranoid")))]
    {
        let _ = (stage, g0, machine, sched);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::startup::{startup_schedule, StartupConfig};
    use ccs_schedule::Slot;
    use ccs_topology::Pe;

    fn setup() -> (Csdfg, Machine, Schedule) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 2, 1).unwrap();
        let m = Machine::mesh(2, 2);
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        (g, m, s)
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn oracle_enabled_in_test_builds() {
        // Tests run with debug_assertions on, so the gate must be open
        // (and the mutation tests below actually exercise the oracle).
        // The assertion is deliberately on the compile-time constant:
        // it documents and enforces the build configuration.
        assert!(ENABLED);
    }

    #[test]
    fn clean_schedule_passes() {
        let (g, m, s) = setup();
        assert!(check(&g, &m, &s).is_ok());
        verify("unit test", &g, &m, &s); // must not panic
    }

    /// Mutation smoke test: seed one illegal placement through the
    /// fault-injection hook and assert the oracle reports it with the
    /// right stable code (`CCS024` = task on nonexistent PE).
    #[test]
    fn seeded_bad_pe_is_reported_as_ccs024() {
        let (g, m, mut s) = setup();
        let a = g.task_by_name("A").unwrap();
        let slot = s.slot(a).unwrap();
        s.fault_force_slot(a, Slot { pe: Pe(99), ..slot });
        let violations = check(&g, &m, &s).unwrap_err();
        assert!(
            violations.iter().any(|v| v.code() == "CCS024"),
            "expected CCS024, got {violations:?}"
        );
    }

    #[test]
    #[should_panic(expected = "CCS024")]
    fn verify_panics_with_stage_and_code() {
        let (g, m, mut s) = setup();
        let a = g.task_by_name("A").unwrap();
        let slot = s.slot(a).unwrap();
        s.fault_force_slot(a, Slot { pe: Pe(99), ..slot });
        verify("mutation smoke test", &g, &m, &s);
    }

    #[test]
    fn bound_oracle_accepts_valid_schedules() {
        let (g, m, s) = setup();
        verify_bounds("unit test", &g, &m, &s); // must not panic
    }

    /// An impossibly short schedule (here: an empty table of length 0
    /// against a graph whose resource bound is positive) must trip the
    /// bound oracle loudly.
    #[test]
    #[should_panic(expected = "bound oracle tripped")]
    fn bound_oracle_trips_on_impossible_period() {
        let (g, m, _) = setup();
        let impossible = Schedule::new(m.num_pes());
        verify_bounds("mutation smoke test", &g, &m, &impossible);
    }

    /// Occupancy-index corruption (a phantom cell nobody owns) is the
    /// other fault class; it must surface as a duplicate placement.
    #[test]
    fn seeded_phantom_cell_is_reported_as_ccs026() {
        let (g, m, mut s) = setup();
        let a = g.task_by_name("A").unwrap();
        let free = (1..64)
            .find(|&cs| s.at(Pe(1), cs).is_none())
            .expect("some free cell");
        s.fault_force_occupy(Pe(1), free, a);
        let violations = check(&g, &m, &s).unwrap_err();
        assert!(
            violations.iter().any(|v| v.code() == "CCS026"),
            "expected CCS026, got {violations:?}"
        );
    }
}

//! The cyclo-compaction driver (paper §4, `Algorithm Cyclo-Compact`).

use crate::remap::{nid, remap_probed, RemapConfig, RemapMode};
use crate::startup::{startup_probed, StartupConfig};
use ccs_model::{Csdfg, ModelError, NodeId};
use ccs_retiming::Retiming;
use ccs_schedule::Schedule;
use ccs_topology::Machine;
use ccs_trace::{Event, Off, Probe, Tls};
use serde::{DeError, Deserialize, Serialize, Value};
use std::time::Instant;

/// Options for [`cyclo_compact`].
#[derive(Clone, Copy, Debug)]
pub struct CompactConfig {
    /// Maximum number of rotate-remap passes (the paper's `z`).
    pub passes: usize,
    /// Start-up scheduler options.
    pub startup: StartupConfig,
    /// Remapping options (relaxation policy, growth budget).
    pub remap: RemapConfig,
    /// Stop as soon as a pass is reverted (the search has stalled).
    /// With relaxation this is rare; without relaxation it is the
    /// natural fixpoint.
    pub stop_on_revert: bool,
}

impl Default for CompactConfig {
    fn default() -> Self {
        CompactConfig {
            passes: 64,
            startup: StartupConfig::default(),
            remap: RemapConfig::default(),
            stop_on_revert: true,
        }
    }
}

impl CompactConfig {
    /// Convenience: default configuration with the given relaxation
    /// mode.
    pub fn with_mode(mode: RemapMode) -> Self {
        CompactConfig {
            remap: RemapConfig {
                mode,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Telemetry for one pass of the driver.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// 1-based pass number.
    pub pass: usize,
    /// Nodes rotated in this pass.
    pub rotated: Vec<NodeId>,
    /// Schedule length after the pass.
    pub length: u32,
    /// Whether the pass was rolled back.
    pub reverted: bool,
    /// Wall-clock milliseconds the pass took.  Observability only —
    /// excluded from every determinism fingerprint (the schedule and
    /// the decision sequence stay a pure function of the inputs).
    pub wall_ms: f64,
}

impl PassRecord {
    /// Serializes the record, including the non-deterministic
    /// `wall_ms` field only when `wall_clock` is `true`.
    ///
    /// Default artifacts (`Serialize`, which delegates here with
    /// `wall_clock = false`) stay byte-identical across runs and
    /// machines so they can be diffed and golden-pinned; consumers that
    /// explicitly opt into wall time (`--trace-clock wall`) get the
    /// extra field.
    pub fn to_value_with_clock(&self, wall_clock: bool) -> Value {
        let mut fields = vec![
            ("pass".to_string(), Value::UInt(self.pass as u64)),
            (
                "rotated".to_string(),
                Value::Array(
                    self.rotated
                        .iter()
                        .map(|&v| Value::UInt(u64::from(nid(v))))
                        .collect(),
                ),
            ),
            ("length".to_string(), Value::UInt(u64::from(self.length))),
            ("reverted".to_string(), Value::Bool(self.reverted)),
        ];
        if wall_clock {
            fields.push(("wall_ms".to_string(), Value::Float(self.wall_ms)));
        }
        Value::Object(fields)
    }
}

// Manual impls: the vendored serde derive handles named-field structs
// only via `Serialize`/`Deserialize` on every field, and `NodeId`
// deliberately has no serde surface (schedules serialize raw indices).
//
// `Serialize` deliberately omits `wall_ms`: every default export stays
// deterministic (see `to_value_with_clock`); `Deserialize` tolerates
// both shapes.
impl Serialize for PassRecord {
    fn to_value(&self) -> Value {
        self.to_value_with_clock(false)
    }
}

impl Deserialize for PassRecord {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let pass = v
            .get("pass")
            .and_then(Value::as_u64)
            .ok_or_else(|| DeError::msg("PassRecord: missing `pass`"))?;
        let rotated = v
            .get("rotated")
            .and_then(Value::as_array)
            .ok_or_else(|| DeError::msg("PassRecord: missing `rotated`"))?
            .iter()
            .map(|x| {
                x.as_u64()
                    .and_then(|i| usize::try_from(i).ok())
                    .map(NodeId::from_index)
                    .ok_or_else(|| DeError::msg("PassRecord: bad node index"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let length = v
            .get("length")
            .and_then(Value::as_u64)
            .and_then(|x| u32::try_from(x).ok())
            .ok_or_else(|| DeError::msg("PassRecord: missing `length`"))?;
        let reverted = v
            .get("reverted")
            .and_then(Value::as_bool)
            .ok_or_else(|| DeError::msg("PassRecord: missing `reverted`"))?;
        let wall_ms = v.get("wall_ms").and_then(Value::as_f64).unwrap_or(0.0);
        Ok(PassRecord {
            pass: usize::try_from(pass).map_err(|_| DeError::msg("PassRecord: pass overflow"))?,
            rotated,
            length,
            reverted,
            wall_ms,
        })
    }
}

/// Result of [`cyclo_compact`].
#[derive(Clone, Debug)]
pub struct Compaction {
    /// The best (shortest) schedule observed, the paper's `Q`.
    pub schedule: Schedule,
    /// The retimed graph matching [`Compaction::schedule`].
    pub graph: Csdfg,
    /// Cumulative retiming from the input graph to
    /// [`Compaction::graph`].
    pub retiming: Retiming,
    /// The start-up schedule the search began from.
    pub initial: Schedule,
    /// Length of the start-up schedule.
    pub initial_length: u32,
    /// Length of the best schedule.
    pub best_length: u32,
    /// Per-pass telemetry.
    pub history: Vec<PassRecord>,
}

impl Compaction {
    /// Relative improvement `initial / best` (>= 1).
    pub fn speedup(&self) -> f64 {
        f64::from(self.initial_length) / f64::from(self.best_length)
    }
}

/// Runs start-up scheduling followed by up to `config.passes`
/// rotate-remap passes, returning the best schedule seen (paper's
/// `Cyclo-Compact(G, z)`).
///
/// # Errors
///
/// Returns an error if `g` is not a legal CSDFG.
pub fn cyclo_compact(
    g: &Csdfg,
    machine: &Machine,
    config: CompactConfig,
) -> Result<Compaction, ModelError> {
    // One dispatch per run; the probe is threaded through startup and
    // every pass, so the uninstrumented path never re-checks the sink.
    if ccs_trace::installed() {
        compact_probed(g, machine, config, &mut Tls)
    } else {
        compact_probed(g, machine, config, &mut Off)
    }
}

/// [`cyclo_compact`] instrumented against probe `P`.
pub(crate) fn compact_probed<P: Probe>(
    g: &Csdfg,
    machine: &Machine,
    config: CompactConfig,
    probe: &mut P,
) -> Result<Compaction, ModelError> {
    if P::ACTIVE {
        probe.emit(Event::CompactBegin {
            tasks: u32::try_from(g.task_count()).unwrap_or(u32::MAX),
            pes: u32::try_from(machine.num_pes()).unwrap_or(u32::MAX),
            max_passes: u32::try_from(config.passes).unwrap_or(u32::MAX),
        });
    }
    let initial = startup_probed(g, machine, config.startup, probe)?;
    let initial_length = initial.length();

    let mut cur_sched = initial.clone();
    let mut cur_graph = g.clone();
    let mut retiming = Retiming::zero_for(g);
    let mut best_sched = initial.clone();
    let mut best_graph = g.clone();
    let mut best_retiming = retiming.clone();
    let mut history = Vec::with_capacity(config.passes);

    let mut passes_run: u32 = 0;
    for pass in 1..=config.passes {
        let prev_len = cur_sched.length();
        if P::ACTIVE {
            probe.emit(Event::PassBegin {
                pass: u32::try_from(pass).unwrap_or(u32::MAX),
                prev_len,
                rows: config.remap.rows_per_pass.clamp(1, prev_len.max(1)),
            });
        }
        // CLOCK: feeds PassRecord::wall_ms, the one sanctioned timing
        // field — excluded from fingerprints and ledger diffs.
        let t0 = Instant::now();
        // The pass mutates the working pair in place; a reverted pass
        // restores it, so nothing is cloned on the per-pass hot path.
        let out = remap_probed(&mut cur_graph, machine, &mut cur_sched, config.remap, probe);
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        passes_run += 1;
        if !out.reverted {
            for &v in &out.rotated {
                retiming.bump(v, 1);
            }
        }
        let reverted = out.reverted;
        if P::ACTIVE {
            probe.emit(Event::PassEnd {
                pass: u32::try_from(pass).unwrap_or(u32::MAX),
                accepted: !reverted,
                length: cur_sched.length(),
            });
        }
        history.push(PassRecord {
            pass,
            rotated: out.rotated,
            length: cur_sched.length(),
            reverted,
            wall_ms,
        });
        if reverted {
            if config.stop_on_revert {
                break;
            }
            continue;
        }
        // Pass B oracle: an accepted pass must leave a valid pair
        // (no-op unless debug assertions or the `paranoid` feature).
        crate::oracle::verify(
            "cyclo_compact: accepted pass",
            &cur_graph,
            machine,
            &cur_sched,
        );
        if P::ACTIVE {
            let occ = cur_sched.occupancy();
            probe.emit(Event::OccupancySnapshot {
                pass: u32::try_from(pass).unwrap_or(u32::MAX),
                busy_cells: occ.busy_cells,
                holes: occ.holes,
                used_pes: occ.used_pes,
                length: occ.length,
            });
        }
        // Snapshot only on improvement — the single remaining clone.
        if cur_sched.length() < best_sched.length() {
            best_sched = cur_sched.clone();
            best_graph = cur_graph.clone();
            best_retiming = retiming.clone();
            if P::ACTIVE {
                probe.emit(Event::BestSnapshot {
                    pass: u32::try_from(pass).unwrap_or(u32::MAX),
                    length: best_sched.length(),
                });
            }
        }
    }

    let best_length = best_sched.length();
    // Bound oracle (paranoid/debug builds): the best validated
    // schedule must never beat a statically proven lower bound of the
    // *input* graph — the bounds are retiming-invariant, so every
    // rotation the loop performed is covered.  A trip means the bound
    // engine or the validator is wrong; fail loudly either way.
    crate::oracle::verify_bounds("cyclo_compact: end", g, machine, &best_sched);
    // Authoritative final ledger: traffic attribution and per-PE loads
    // of the *best* schedule (which may predate the last accepted pass
    // under relaxation).  `ccs-profile` folds exactly this section.
    crate::traffic::emit_edge_traffic(&best_graph, machine, &best_sched, probe);
    crate::traffic::emit_pe_loads(&best_sched, probe);
    if P::ACTIVE {
        probe.emit(Event::CompactEnd {
            initial: initial_length,
            best: best_length,
            passes: passes_run,
        });
    }
    Ok(Compaction {
        schedule: best_sched,
        graph: best_graph,
        retiming: best_retiming,
        initial,
        initial_length,
        best_length,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_schedule::validate;

    fn fig1() -> (Csdfg, Vec<NodeId>, Machine) {
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        (g, ids, Machine::mesh(2, 2))
    }

    #[test]
    fn paper_example_compacts_from_seven_to_five() {
        let (g, _, m) = fig1();
        let result = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        assert_eq!(result.initial_length, 7);
        assert!(result.best_length <= 5, "got {}", result.best_length);
        assert!(validate(&result.graph, &m, &result.schedule).is_ok());
        assert!(result.speedup() >= 1.4 - 1e-9);
    }

    #[test]
    fn best_schedule_matches_retimed_graph() {
        let (g, _, m) = fig1();
        let result = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        // The recorded retiming applied to the input graph must equal
        // the returned graph.
        assert!(result.retiming.is_legal(&g));
        let reapplied = result.retiming.apply(&g);
        for e in g.deps() {
            assert_eq!(reapplied.delay(e), result.graph.delay(e));
        }
    }

    #[test]
    fn without_relaxation_lengths_monotone() {
        let (g, _, m) = fig1();
        let result = cyclo_compact(
            &g,
            &m,
            CompactConfig::with_mode(RemapMode::WithoutRelaxation),
        )
        .unwrap();
        let mut prev = result.initial_length;
        for rec in &result.history {
            if !rec.reverted {
                assert!(
                    rec.length <= prev,
                    "pass {} grew {} -> {}",
                    rec.pass,
                    prev,
                    rec.length
                );
                prev = rec.length;
            }
        }
    }

    #[test]
    fn both_modes_valid_on_all_paper_machines() {
        let (g, _, _) = fig1();
        for machine in Machine::paper_suite() {
            for mode in [RemapMode::WithoutRelaxation, RemapMode::WithRelaxation] {
                let result = cyclo_compact(&g, &machine, CompactConfig::with_mode(mode)).unwrap();
                assert!(
                    validate(&result.graph, &machine, &result.schedule).is_ok(),
                    "{mode:?} on {}",
                    machine.name()
                );
                assert!(result.best_length <= result.initial_length);
            }
        }
    }

    #[test]
    fn zero_passes_returns_startup() {
        let (g, _, m) = fig1();
        let cfg = CompactConfig {
            passes: 0,
            ..Default::default()
        };
        let result = cyclo_compact(&g, &m, cfg).unwrap();
        assert_eq!(result.best_length, result.initial_length);
        assert!(result.history.is_empty());
    }

    #[test]
    fn history_records_every_pass() {
        let (g, _, m) = fig1();
        let cfg = CompactConfig {
            passes: 5,
            stop_on_revert: false,
            ..Default::default()
        };
        let result = cyclo_compact(&g, &m, cfg).unwrap();
        assert_eq!(result.history.len(), 5);
        for (i, rec) in result.history.iter().enumerate() {
            assert_eq!(rec.pass, i + 1);
        }
    }

    #[test]
    fn pass_records_have_wall_time_and_round_trip_serde() {
        let (g, _, m) = fig1();
        let result = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        assert!(!result.history.is_empty());
        for rec in &result.history {
            assert!(rec.wall_ms >= 0.0);
            // Default serialization omits the non-deterministic clock.
            let v = rec.to_value();
            assert!(v.get("wall_ms").is_none(), "wall_ms leaked: {v:?}");
            let back = PassRecord::from_value(&v).unwrap();
            assert_eq!(back.pass, rec.pass);
            assert_eq!(back.rotated, rec.rotated);
            assert_eq!(back.length, rec.length);
            assert_eq!(back.reverted, rec.reverted);
            assert_eq!(back.wall_ms, 0.0);
            // Explicit wall-clock opt-in round-trips the field.
            let vw = rec.to_value_with_clock(true);
            let backw = PassRecord::from_value(&vw).unwrap();
            assert!((backw.wall_ms - rec.wall_ms).abs() < 1e-9);
        }
        // Older serialized records without `wall_ms` still load.
        let v = Value::Object(vec![
            ("pass".to_string(), Value::UInt(1)),
            ("rotated".to_string(), Value::Array(vec![Value::UInt(0)])),
            ("length".to_string(), Value::UInt(5)),
            ("reverted".to_string(), Value::Bool(false)),
        ]);
        let rec = PassRecord::from_value(&v).unwrap();
        assert_eq!(rec.wall_ms, 0.0);
    }

    #[test]
    fn traced_run_matches_untraced_run() {
        let (g, _, m) = fig1();
        let plain = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        let (traced, events) =
            ccs_trace::record(|| cyclo_compact(&g, &m, CompactConfig::default()).unwrap());
        assert_eq!(traced.best_length, plain.best_length);
        assert_eq!(traced.initial_length, plain.initial_length);
        let a: Vec<_> = traced.schedule.placements().collect();
        let b: Vec<_> = plain.schedule.placements().collect();
        assert_eq!(a, b, "tracing must not perturb the schedule");
        assert!(!events.is_empty());
        // Every remapped node names its chosen slot; the stream starts
        // with the compact span and ends with its close.
        assert!(matches!(
            events.first().map(|t| &t.event),
            Some(ccs_trace::Event::CompactBegin { .. })
        ));
        assert!(matches!(
            events.last().map(|t| &t.event),
            Some(ccs_trace::Event::CompactEnd { .. })
        ));
        let places = events
            .iter()
            .filter(|t| matches!(t.event, ccs_trace::Event::Placed { .. }))
            .count();
        let rotated: usize = traced
            .history
            .iter()
            .filter(|r| !r.reverted)
            .map(|r| r.rotated.len())
            .sum();
        assert!(places >= rotated, "placed {places} < rotated {rotated}");
    }

    #[test]
    fn single_node_graph() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        g.add_dep(a, a, 1, 1).unwrap();
        let m = Machine::complete(2);
        let result = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        assert_eq!(result.best_length, 2);
        assert!(validate(&result.graph, &m, &result.schedule).is_ok());
    }
}

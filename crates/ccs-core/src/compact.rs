//! The cyclo-compaction driver (paper §4, `Algorithm Cyclo-Compact`).

use crate::remap::{rotate_remap_in_place, RemapConfig, RemapMode};
use crate::startup::{startup_schedule, StartupConfig};
use ccs_model::{Csdfg, ModelError, NodeId};
use ccs_retiming::Retiming;
use ccs_schedule::Schedule;
use ccs_topology::Machine;

/// Options for [`cyclo_compact`].
#[derive(Clone, Copy, Debug)]
pub struct CompactConfig {
    /// Maximum number of rotate-remap passes (the paper's `z`).
    pub passes: usize,
    /// Start-up scheduler options.
    pub startup: StartupConfig,
    /// Remapping options (relaxation policy, growth budget).
    pub remap: RemapConfig,
    /// Stop as soon as a pass is reverted (the search has stalled).
    /// With relaxation this is rare; without relaxation it is the
    /// natural fixpoint.
    pub stop_on_revert: bool,
}

impl Default for CompactConfig {
    fn default() -> Self {
        CompactConfig {
            passes: 64,
            startup: StartupConfig::default(),
            remap: RemapConfig::default(),
            stop_on_revert: true,
        }
    }
}

impl CompactConfig {
    /// Convenience: default configuration with the given relaxation
    /// mode.
    pub fn with_mode(mode: RemapMode) -> Self {
        CompactConfig {
            remap: RemapConfig {
                mode,
                ..Default::default()
            },
            ..Default::default()
        }
    }
}

/// Telemetry for one pass of the driver.
#[derive(Clone, Debug)]
pub struct PassRecord {
    /// 1-based pass number.
    pub pass: usize,
    /// Nodes rotated in this pass.
    pub rotated: Vec<NodeId>,
    /// Schedule length after the pass.
    pub length: u32,
    /// Whether the pass was rolled back.
    pub reverted: bool,
}

/// Result of [`cyclo_compact`].
#[derive(Clone, Debug)]
pub struct Compaction {
    /// The best (shortest) schedule observed, the paper's `Q`.
    pub schedule: Schedule,
    /// The retimed graph matching [`Compaction::schedule`].
    pub graph: Csdfg,
    /// Cumulative retiming from the input graph to
    /// [`Compaction::graph`].
    pub retiming: Retiming,
    /// The start-up schedule the search began from.
    pub initial: Schedule,
    /// Length of the start-up schedule.
    pub initial_length: u32,
    /// Length of the best schedule.
    pub best_length: u32,
    /// Per-pass telemetry.
    pub history: Vec<PassRecord>,
}

impl Compaction {
    /// Relative improvement `initial / best` (>= 1).
    pub fn speedup(&self) -> f64 {
        f64::from(self.initial_length) / f64::from(self.best_length)
    }
}

/// Runs start-up scheduling followed by up to `config.passes`
/// rotate-remap passes, returning the best schedule seen (paper's
/// `Cyclo-Compact(G, z)`).
///
/// # Errors
///
/// Returns an error if `g` is not a legal CSDFG.
pub fn cyclo_compact(
    g: &Csdfg,
    machine: &Machine,
    config: CompactConfig,
) -> Result<Compaction, ModelError> {
    let initial = startup_schedule(g, machine, config.startup)?;
    let initial_length = initial.length();

    let mut cur_sched = initial.clone();
    let mut cur_graph = g.clone();
    let mut retiming = Retiming::zero_for(g);
    let mut best_sched = initial.clone();
    let mut best_graph = g.clone();
    let mut best_retiming = retiming.clone();
    let mut history = Vec::with_capacity(config.passes);

    for pass in 1..=config.passes {
        // The pass mutates the working pair in place; a reverted pass
        // restores it, so nothing is cloned on the per-pass hot path.
        let out = rotate_remap_in_place(&mut cur_graph, machine, &mut cur_sched, config.remap);
        if !out.reverted {
            for &v in &out.rotated {
                retiming.bump(v, 1);
            }
        }
        let reverted = out.reverted;
        history.push(PassRecord {
            pass,
            rotated: out.rotated,
            length: cur_sched.length(),
            reverted,
        });
        if reverted {
            if config.stop_on_revert {
                break;
            }
            continue;
        }
        // Pass B oracle: an accepted pass must leave a valid pair
        // (no-op unless debug assertions or the `paranoid` feature).
        crate::oracle::verify(
            "cyclo_compact: accepted pass",
            &cur_graph,
            machine,
            &cur_sched,
        );
        // Snapshot only on improvement — the single remaining clone.
        if cur_sched.length() < best_sched.length() {
            best_sched = cur_sched.clone();
            best_graph = cur_graph.clone();
            best_retiming = retiming.clone();
        }
    }

    let best_length = best_sched.length();
    Ok(Compaction {
        schedule: best_sched,
        graph: best_graph,
        retiming: best_retiming,
        initial,
        initial_length,
        best_length,
        history,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_schedule::validate;

    fn fig1() -> (Csdfg, Vec<NodeId>, Machine) {
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        (g, ids, Machine::mesh(2, 2))
    }

    #[test]
    fn paper_example_compacts_from_seven_to_five() {
        let (g, _, m) = fig1();
        let result = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        assert_eq!(result.initial_length, 7);
        assert!(result.best_length <= 5, "got {}", result.best_length);
        assert!(validate(&result.graph, &m, &result.schedule).is_ok());
        assert!(result.speedup() >= 1.4 - 1e-9);
    }

    #[test]
    fn best_schedule_matches_retimed_graph() {
        let (g, _, m) = fig1();
        let result = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        // The recorded retiming applied to the input graph must equal
        // the returned graph.
        assert!(result.retiming.is_legal(&g));
        let reapplied = result.retiming.apply(&g);
        for e in g.deps() {
            assert_eq!(reapplied.delay(e), result.graph.delay(e));
        }
    }

    #[test]
    fn without_relaxation_lengths_monotone() {
        let (g, _, m) = fig1();
        let result = cyclo_compact(
            &g,
            &m,
            CompactConfig::with_mode(RemapMode::WithoutRelaxation),
        )
        .unwrap();
        let mut prev = result.initial_length;
        for rec in &result.history {
            if !rec.reverted {
                assert!(
                    rec.length <= prev,
                    "pass {} grew {} -> {}",
                    rec.pass,
                    prev,
                    rec.length
                );
                prev = rec.length;
            }
        }
    }

    #[test]
    fn both_modes_valid_on_all_paper_machines() {
        let (g, _, _) = fig1();
        for machine in Machine::paper_suite() {
            for mode in [RemapMode::WithoutRelaxation, RemapMode::WithRelaxation] {
                let result = cyclo_compact(&g, &machine, CompactConfig::with_mode(mode)).unwrap();
                assert!(
                    validate(&result.graph, &machine, &result.schedule).is_ok(),
                    "{mode:?} on {}",
                    machine.name()
                );
                assert!(result.best_length <= result.initial_length);
            }
        }
    }

    #[test]
    fn zero_passes_returns_startup() {
        let (g, _, m) = fig1();
        let cfg = CompactConfig {
            passes: 0,
            ..Default::default()
        };
        let result = cyclo_compact(&g, &m, cfg).unwrap();
        assert_eq!(result.best_length, result.initial_length);
        assert!(result.history.is_empty());
    }

    #[test]
    fn history_records_every_pass() {
        let (g, _, m) = fig1();
        let cfg = CompactConfig {
            passes: 5,
            stop_on_revert: false,
            ..Default::default()
        };
        let result = cyclo_compact(&g, &m, cfg).unwrap();
        assert_eq!(result.history.len(), 5);
        for (i, rec) in result.history.iter().enumerate() {
            assert_eq!(rec.pass, i + 1);
        }
    }

    #[test]
    fn single_node_graph() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        g.add_dep(a, a, 1, 1).unwrap();
        let m = Machine::complete(2);
        let result = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        assert_eq!(result.best_length, 2);
        assert!(validate(&result.graph, &m, &result.schedule).is_ok());
    }
}

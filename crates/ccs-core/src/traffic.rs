//! Per-edge traffic attribution snapshots.
//!
//! The paper's cost model charges every dependence edge `e = (u, v)`
//! a communication cost `M(PE(u), PE(v)) = hops · c(e)`.  The trace
//! layer makes that charge *observable*: [`emit_edge_traffic`] walks
//! the graph in deterministic edge order and emits one
//! [`Event::EdgeTraffic`] per edge whose endpoints are both placed,
//! recording where the edge's communication lands on the machine under
//! the current placement.  Snapshots are emitted
//!
//! * after start-up placement (the initial traffic picture),
//! * after every **accepted** rotate-remap pass (how remapping moved
//!   traffic), and
//! * once for the final best schedule (the authoritative ledger the
//!   `ccs-profile` crate folds into a `CommProfile`), followed by
//!   [`emit_pe_loads`] per-PE load summaries.
//!
//! Both helpers gate all work on `P::ACTIVE`, so the `Off` probe
//! compiles them away entirely — the uninstrumented hot path never
//! iterates edges for tracing.

use crate::remap::nid;
use ccs_model::Csdfg;
use ccs_schedule::Schedule;
use ccs_topology::Machine;
use ccs_trace::{Event, Probe};

/// Emits one [`Event::EdgeTraffic`] per dependence edge of `g` whose
/// endpoints are both placed in `sched`, in `g.deps()` order.
///
/// `hops` is the machine distance between the hosting PEs
/// (`u32::MAX` when the machine is disconnected between them — the
/// validator rejects such placements, so this is a sentinel, not a
/// cost).
pub(crate) fn emit_edge_traffic<P: Probe>(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    probe: &mut P,
) {
    if P::ACTIVE {
        for e in g.deps() {
            let (u, v) = g.endpoints(e);
            let (Some(su), Some(sv)) = (sched.slot(u), sched.slot(v)) else {
                continue;
            };
            let hops = machine.try_distance(su.pe, sv.pe).unwrap_or(u32::MAX);
            probe.emit(Event::EdgeTraffic {
                edge: u32::try_from(e.index()).unwrap_or(u32::MAX),
                src: nid(u),
                dst: nid(v),
                src_pe: su.pe.0,
                dst_pe: sv.pe.0,
                hops,
                volume: g.volume(e),
            });
        }
    }
}

/// Emits one [`Event::PeLoad`] per processor of `sched`, in PE order,
/// summarizing how many tasks it hosts and how many control-step cells
/// they occupy.
pub(crate) fn emit_pe_loads<P: Probe>(sched: &Schedule, probe: &mut P) {
    if P::ACTIVE {
        let n = sched.num_pes();
        let mut tasks = vec![0u32; n];
        let mut busy = vec![0u32; n];
        for (_, slot) in sched.placements() {
            let p = slot.pe.index();
            tasks[p] = tasks[p].saturating_add(1);
            busy[p] = busy[p].saturating_add(slot.duration);
        }
        for p in 0..n {
            probe.emit(Event::PeLoad {
                pe: u32::try_from(p).unwrap_or(u32::MAX),
                tasks: tasks[p],
                busy: busy[p],
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{startup_schedule, StartupConfig};
    use ccs_trace::{Recorder, Sink};

    /// A probe that forwards to an owned recorder (test-only).
    struct Rec<'a>(&'a mut Recorder);

    impl Probe for Rec<'_> {
        const ACTIVE: bool = true;
        fn emit(&mut self, ev: Event) {
            self.0.event(ev);
        }
    }

    fn fig1() -> Csdfg {
        // Small cyclic graph: a -> b -> c with a loop-carried edge back.
        let mut g = Csdfg::new();
        let a = g.add_task("a", 1).unwrap();
        let b = g.add_task("b", 2).unwrap();
        let c = g.add_task("c", 1).unwrap();
        g.add_dep(a, b, 0, 2).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        g.add_dep(c, a, 1, 3).unwrap();
        g
    }

    #[test]
    fn edge_traffic_covers_every_edge_and_costs_match_distance() {
        let g = fig1();
        let m = Machine::linear_array(3);
        let sched = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let mut rec = Recorder::new();
        emit_edge_traffic(&g, &m, &sched, &mut Rec(&mut rec));
        assert_eq!(rec.events.len(), g.deps().count());
        for te in &rec.events {
            let Event::EdgeTraffic {
                src_pe,
                dst_pe,
                hops,
                ..
            } = te.event
            else {
                panic!("unexpected event kind");
            };
            let expect = m.distance(
                ccs_topology::Pe::from_index(src_pe as usize),
                ccs_topology::Pe::from_index(dst_pe as usize),
            );
            assert_eq!(hops, expect);
            assert_eq!((hops == 0), (src_pe == dst_pe));
        }
    }

    #[test]
    fn pe_loads_sum_to_task_count_and_busy_cells() {
        let g = fig1();
        let m = Machine::mesh(2, 2);
        let sched = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let mut rec = Recorder::new();
        emit_pe_loads(&sched, &mut Rec(&mut rec));
        assert_eq!(rec.events.len(), m.num_pes());
        let (mut tasks, mut busy) = (0u32, 0u32);
        for te in &rec.events {
            let Event::PeLoad {
                tasks: t, busy: b, ..
            } = te.event
            else {
                panic!("unexpected event kind");
            };
            tasks += t;
            busy += b;
        }
        assert_eq!(tasks as usize, g.task_count());
        let total_dur: u32 = g.tasks().map(|v| g.time(v)).sum();
        assert_eq!(busy, total_dur);
    }
}

//! Named configurations, including the historical special case the
//! paper grew out of.
//!
//! The authors' earlier algorithm (Tongsima/Passos/Sha, ICCD'94,
//! reference \[13\] of the paper) handled *unit-time* data-flow graphs on
//! *completely connected* architectures; cyclo-compaction generalizes
//! it to general-time graphs and arbitrary topologies.  [`iccd94`]
//! reconstructs that special case as a configuration of the general
//! algorithm.

use crate::compact::{cyclo_compact, CompactConfig, Compaction};
use crate::remap::{RemapConfig, RemapMode};
use ccs_model::{Csdfg, ModelError};
use ccs_topology::Machine;

/// The paper's default setup: remapping with relaxation, single-row
/// rotation, a generous pass budget.
pub fn paper_default() -> CompactConfig {
    CompactConfig::default()
}

/// Strict Theorem-4.4 mode: remapping without relaxation (lengths are
/// monotone non-increasing; search stops at the first stall).
pub fn strict() -> CompactConfig {
    CompactConfig {
        remap: RemapConfig {
            mode: RemapMode::WithoutRelaxation,
            max_growth: 0,
            rows_per_pass: 1,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// `true` when every task of `g` takes exactly one control step — the
/// unit-time restriction of the ICCD'94 predecessor.
pub fn is_unit_time(g: &Csdfg) -> bool {
    g.tasks().all(|v| g.time(v) == 1)
}

/// The ICCD'94 special case: schedules a *unit-time* graph on a
/// completely connected machine of `pes` processors using the general
/// cyclo-compaction algorithm.
///
/// # Errors
///
/// Returns `ModelError::ZeroTime` with the offending task's name when
/// the graph is not unit-time (the historical algorithm does not apply),
/// or the underlying scheduling error.
pub fn iccd94(g: &Csdfg, pes: usize) -> Result<Compaction, ModelError> {
    if let Some(bad) = g.tasks().find(|&v| g.time(v) != 1) {
        // Reuse the closest existing error kind; the name pinpoints the
        // non-unit-time task.
        return Err(ModelError::ZeroTime(format!(
            "{} (t={}): ICCD'94 mode requires unit-time tasks",
            g.name(bad),
            g.time(bad)
        )));
    }
    let machine = Machine::complete(pes);
    cyclo_compact(g, &machine, paper_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_loop() -> Csdfg {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 2).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        g.add_dep(c, a, 2, 1).unwrap();
        g
    }

    #[test]
    fn unit_time_detection() {
        let g = unit_loop();
        assert!(is_unit_time(&g));
        let mut g2 = Csdfg::new();
        g2.add_task("X", 2).unwrap();
        assert!(!is_unit_time(&g2));
    }

    #[test]
    fn iccd94_schedules_unit_graphs() {
        let g = unit_loop();
        let r = iccd94(&g, 3).unwrap();
        // Iteration bound 3/2 -> floor 2.
        assert!(r.best_length >= 2);
        assert!(r.best_length <= r.initial_length);
        let m = Machine::complete(3);
        assert!(ccs_schedule::validate(&r.graph, &m, &r.schedule).is_ok());
    }

    #[test]
    fn iccd94_rejects_general_time() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("Big", 3).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        let err = iccd94(&g, 2).unwrap_err();
        assert!(err.to_string().contains("Big"));
        assert!(err.to_string().contains("unit-time"));
    }

    #[test]
    fn strict_preset_is_monotone() {
        let g = unit_loop();
        let m = Machine::linear_array(3);
        let r = cyclo_compact(&g, &m, strict()).unwrap();
        let mut prev = r.initial_length;
        for rec in &r.history {
            if !rec.reverted {
                assert!(rec.length <= prev);
                prev = rec.length;
            }
        }
    }

    #[test]
    fn presets_differ_only_in_remap_policy() {
        let p = paper_default();
        let s = strict();
        assert_eq!(p.passes, s.passes);
        assert_ne!(p.remap.mode, s.remap.mode);
    }
}

//! One rotate-and-remap pass (paper §4: `Rotate-Remap` and
//! `Remapping`).
//!
//! Rotation deallocates the first row of the schedule table and retimes
//! those nodes by `+1` (always legal: a node at control step 1 cannot
//! have a zero-delay incoming edge).  Remapping then re-places each
//! rotated node at the best `(processor, control step)` permitted by
//! the anticipation function `AN` (Lemma 4.2) for a *target* schedule
//! length, preferring one control step shorter than before.

use ccs_model::{Csdfg, NodeId};
use ccs_retiming::rotate;
use ccs_schedule::{required_length, Schedule};
use ccs_topology::{Machine, Pe};

/// Remapping policy (Definition 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RemapMode {
    /// Never allow the schedule to grow: if the rotated nodes cannot be
    /// re-placed within the previous length, the pass is abandoned and
    /// the previous schedule kept (this is what makes Theorem 4.4 —
    /// monotone non-increase — hold).
    WithoutRelaxation,
    /// Allow intermediate growth (bounded by
    /// [`RemapConfig::max_growth`]); the driver keeps the best schedule
    /// seen, so temporary growth can unlock shorter schedules later.
    #[default]
    WithRelaxation,
}

/// Options for a rotate-remap pass.
#[derive(Clone, Copy, Debug)]
pub struct RemapConfig {
    /// Relaxation policy.
    pub mode: RemapMode,
    /// With relaxation: how many control steps beyond the previous
    /// length the intermediate schedule may grow.
    pub max_growth: u32,
    /// How many leading schedule rows to rotate per pass (the paper
    /// rotates one; larger values are the multi-row extension — bigger
    /// moves per pass, coarser search).  Clamped to the current
    /// schedule length.
    pub rows_per_pass: u32,
}

impl Default for RemapConfig {
    fn default() -> Self {
        RemapConfig { mode: RemapMode::default(), max_growth: 8, rows_per_pass: 1 }
    }
}

/// Result of one rotate-remap pass.
#[derive(Clone, Debug)]
pub struct PassOutcome {
    /// The schedule after the pass (equal to the input when `reverted`).
    pub schedule: Schedule,
    /// The (retimed) graph after the pass.
    pub graph: Csdfg,
    /// Nodes that were rotated this pass.
    pub rotated: Vec<NodeId>,
    /// `true` when the pass could not re-place the rotated nodes within
    /// the mode's length budget and was rolled back.
    pub reverted: bool,
}

/// Performs one rotation + remapping pass on `(g, sched)`.
///
/// `sched` must be a valid schedule of `g` on `machine` (callers in
/// this crate always pass validated schedules; debug builds re-assert).
pub fn rotate_remap(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    config: RemapConfig,
) -> PassOutcome {
    debug_assert!(ccs_schedule::validate(g, machine, sched).is_ok());
    let prev_len = sched.length();
    let rows = config.rows_per_pass.clamp(1, prev_len.max(1));
    let mut rotated = sched.rows_upto(rows);
    rotated.sort_by_key(|&v| {
        (
            sched.cb(v).unwrap_or(0),
            sched.pe(v).map(|p| p.index()).unwrap_or(0),
            v.index(),
        )
    });

    // Rotation (Definition 4.1). Legal by construction: a node in the
    // first `rows` rows can only have zero-delay in-edges from other
    // nodes in those rows (their producers finish even earlier), so
    // every in-edge from outside the set carries a delay.
    let g_rot = match rotate(g, &rotated) {
        Ok(gr) => gr,
        Err(_) => {
            // Unreachable for valid schedules; treat as a no-op pass.
            return PassOutcome {
                schedule: sched.clone(),
                graph: g.clone(),
                rotated,
                reverted: true,
            };
        }
    };

    let mut table = sched.clone();
    table.drop_and_shift_by(&rotated, rows);

    // Targets to try, in order of preference: one step shorter first.
    let targets: Vec<u32> = match config.mode {
        RemapMode::WithoutRelaxation => vec![prev_len.saturating_sub(1).max(1), prev_len],
        RemapMode::WithRelaxation => (0..=config.max_growth + 1)
            .map(|d| (prev_len.saturating_sub(1).max(1)) + d)
            .collect(),
    };

    for &v in &rotated {
        let mut placed = false;
        for &target in &targets {
            if let Some((cs, pe)) = best_position(&g_rot, machine, &table, v, target) {
                table.place(v, pe, cs, g_rot.time(v)).expect("position checked free");
                placed = true;
                break;
            }
        }
        if !placed {
            return PassOutcome {
                schedule: sched.clone(),
                graph: g.clone(),
                rotated,
                reverted: true,
            };
        }
    }

    // Cover the projected schedule lengths by appending empty steps.
    let required = required_length(&g_rot, machine, &table);
    if config.mode == RemapMode::WithoutRelaxation && required > prev_len {
        return PassOutcome { schedule: sched.clone(), graph: g.clone(), rotated, reverted: true };
    }
    table.pad_to(required);
    debug_assert!(
        ccs_schedule::validate(&g_rot, machine, &table).is_ok(),
        "remap produced an invalid schedule: {:?}",
        ccs_schedule::validate(&g_rot, machine, &table)
    );
    PassOutcome { schedule: table, graph: g_rot, rotated, reverted: false }
}

/// Finds the cheapest feasible `(control step, processor)` for `v`
/// under final-schedule-length `target`, or `None`.
///
/// For every processor the anticipation function gives the first
/// control step that satisfies all *placed* predecessors:
///
/// `AN(v, p) = max_e { M(PE(u), p) + CE(u) + 1 - d_r(e) * target }`
///
/// (Lemma 4.2 with `L - 1` generalized to `target`; a zero-delay edge
/// contributes plain precedence `CE(u) + M + 1`).  Placed successors
/// bound `CE(v)` from above through their own projected schedule
/// lengths.  Among feasible placements the earliest control step wins,
/// ties to the lowest processor index.
fn best_position(
    g: &Csdfg,
    machine: &Machine,
    table: &Schedule,
    v: NodeId,
    target: u32,
) -> Option<(u32, Pe)> {
    let duration = g.time(v);
    let target = i64::from(target);
    // Candidates are ranked by (length impact, cs, traffic, pe index).
    // The driving objective is the schedule length the placement forces
    // — the max of the node's own end step and the projected schedule
    // lengths (Lemma 4.3) of its loop-carried edges to placed
    // neighbours.  Control step breaks ties (earlier leaves room for
    // later rotations), then total data movement, then processor
    // index.  Ranking by length impact rather than raw `cs` stops the
    // greedy from scattering tasks across dense machines: a remote slot
    // one step earlier is worthless if its communication inflates a
    // projected schedule length.
    let mut best: Option<(u32, u32, u32, Pe)> = None;
    for pe in machine.pes() {
        // Lower bound on CB(v) from placed predecessors.
        let mut lb: i64 = 1;
        for e in g.in_deps(v) {
            let (u, _) = g.endpoints(e);
            if u == v {
                continue; // self loops constrain via PSL only
            }
            let (Some(ce_u), Some(pu)) = (table.ce(u), table.pe(u)) else { continue };
            let m = i64::from(machine.comm_cost(pu, pe, g.volume(e)));
            let k = i64::from(g.delay(e));
            lb = lb.max(m + i64::from(ce_u) + 1 - k * target);
        }
        // Upper bound on CE(v) from placed successors and the target.
        let mut ub: i64 = target;
        for e in g.out_deps(v) {
            let (_, w) = g.endpoints(e);
            if w == v {
                continue;
            }
            let (Some(cb_w), Some(pw)) = (table.cb(w), table.pe(w)) else { continue };
            let m = i64::from(machine.comm_cost(pe, pw, g.volume(e)));
            let k = i64::from(g.delay(e));
            ub = ub.min(k * target + i64::from(cb_w) - m - 1);
        }
        if lb > ub {
            continue;
        }
        let from = u32::try_from(lb.max(1)).expect("clamped positive");
        let cs = table.earliest_free(pe, from, duration);
        if i64::from(cs) + i64::from(duration) - 1 > ub {
            continue;
        }
        let comm = neighbour_traffic(g, machine, table, v, pe);
        let impact = length_impact(g, machine, table, v, pe, cs);
        let key = (impact, cs, comm, pe.index());
        if best.is_none_or(|(bi, bcs, bcomm, bpe)| key < (bi, bcs, bcomm, bpe.index())) {
            best = Some((impact, cs, comm, pe));
        }
    }
    best.map(|(_, cs, _, pe)| (cs, pe))
}

/// Minimum schedule length forced by placing `v` at `(cs, pe)`: its own
/// end step, and the projected schedule length of every loop-carried
/// edge between `v` and an already-placed neighbour.
fn length_impact(
    g: &Csdfg,
    machine: &Machine,
    table: &Schedule,
    v: NodeId,
    pe: Pe,
    cs: u32,
) -> u32 {
    let ce_v = i64::from(cs) + i64::from(g.time(v)) - 1;
    let mut needed = ce_v;
    let psl = |m: i64, ce: i64, cb: i64, k: i64| -> i64 {
        let num = m + ce - cb + 1;
        num.div_euclid(k) + i64::from(num.rem_euclid(k) != 0)
    };
    for e in g.in_deps(v) {
        let (u, _) = g.endpoints(e);
        let k = i64::from(g.delay(e));
        if u == v || k == 0 {
            continue;
        }
        let (Some(ce_u), Some(pu)) = (table.ce(u), table.pe(u)) else { continue };
        let m = i64::from(machine.comm_cost(pu, pe, g.volume(e)));
        needed = needed.max(psl(m, i64::from(ce_u), i64::from(cs), k));
    }
    for e in g.out_deps(v) {
        let (_, w) = g.endpoints(e);
        let k = i64::from(g.delay(e));
        if w == v || k == 0 {
            continue;
        }
        let (Some(cb_w), Some(pw)) = (table.cb(w), table.pe(w)) else { continue };
        let m = i64::from(machine.comm_cost(pe, pw, g.volume(e)));
        needed = needed.max(psl(m, ce_v, i64::from(cb_w), k));
    }
    u32::try_from(needed.max(0)).expect("length impact fits u32")
}

/// Total `hops * volume` cost of `v`'s edges to already-placed
/// neighbours if `v` ran on `pe`.
fn neighbour_traffic(g: &Csdfg, machine: &Machine, table: &Schedule, v: NodeId, pe: Pe) -> u32 {
    let mut total = 0;
    for e in g.in_deps(v) {
        let (u, _) = g.endpoints(e);
        if u != v {
            if let Some(pu) = table.pe(u) {
                total += machine.comm_cost(pu, pe, g.volume(e));
            }
        }
    }
    for e in g.out_deps(v) {
        let (_, w) = g.endpoints(e);
        if w != v {
            if let Some(pw) = table.pe(w) {
                total += machine.comm_cost(pe, pw, g.volume(e));
            }
        }
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::startup::{startup_schedule, StartupConfig};
    use ccs_schedule::validate;

    fn fig1() -> (Csdfg, Vec<NodeId>, Machine) {
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        (g, ids, Machine::mesh(2, 2))
    }

    #[test]
    fn first_pass_rotates_a_and_shrinks() {
        let (g, n, m) = fig1();
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        assert_eq!(s.length(), 7);
        let out = rotate_remap(&g, &m, &s, RemapConfig::default());
        assert!(!out.reverted);
        assert_eq!(out.rotated, vec![n[0]]); // A was the only cs1 node
        // The paper's first pass lands at 6 control steps.
        assert_eq!(out.schedule.length(), 6);
        assert!(validate(&out.graph, &m, &out.schedule).is_ok());
        // Figure 1(c): D->A now carries 2 delays, A->B/C/E carry 1.
        let da = out.graph.graph().find_edge(n[3], n[0]).unwrap();
        assert_eq!(out.graph.delay(da), 2);
    }

    #[test]
    fn without_relaxation_never_grows() {
        let (g, _, m) = fig1();
        let mut s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let mut graph = g;
        let cfg = RemapConfig { mode: RemapMode::WithoutRelaxation, max_growth: 0, rows_per_pass: 1 };
        for _ in 0..10 {
            let prev = s.length();
            let out = rotate_remap(&graph, &m, &s, cfg);
            assert!(out.schedule.length() <= prev, "grew from {prev}");
            assert!(validate(&out.graph, &m, &out.schedule).is_ok());
            if out.reverted {
                break;
            }
            s = out.schedule;
            graph = out.graph;
        }
    }

    #[test]
    fn repeated_passes_reach_paper_length_five() {
        // Figure 3(b): after three passes the example reaches 5 control
        // steps on the 2x2 mesh.
        let (g, _, m) = fig1();
        let mut s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let mut graph = g;
        let mut best = s.length();
        for _ in 0..8 {
            let out = rotate_remap(&graph, &m, &s, RemapConfig::default());
            if out.reverted {
                break;
            }
            s = out.schedule;
            graph = out.graph;
            best = best.min(s.length());
        }
        assert!(best <= 5, "expected <= 5 control steps, got {best}");
    }

    #[test]
    fn pass_preserves_task_count() {
        let (g, _, m) = fig1();
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let out = rotate_remap(&g, &m, &s, RemapConfig::default());
        assert_eq!(out.schedule.placed_count(), g.task_count());
    }

    #[test]
    fn multi_row_rotation_is_valid_and_competitive() {
        let (g, _, m) = fig1();
        for rows in 1..=3u32 {
            let cfg = RemapConfig { rows_per_pass: rows, ..Default::default() };
            let mut graph = g.clone();
            let mut s = startup_schedule(&graph, &m, StartupConfig::default()).unwrap();
            let mut best = s.length();
            for _ in 0..12 {
                let out = rotate_remap(&graph, &m, &s, cfg);
                assert!(
                    validate(&out.graph, &m, &out.schedule).is_ok(),
                    "rows={rows}: invalid schedule"
                );
                if out.reverted {
                    break;
                }
                graph = out.graph;
                s = out.schedule;
                best = best.min(s.length());
            }
            assert!(best <= 6, "rows={rows}: best {best}");
        }
    }

    #[test]
    fn rotating_more_rows_than_length_rotates_everything() {
        let (g, _, m) = fig1();
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let cfg = RemapConfig { rows_per_pass: 99, ..Default::default() };
        let out = rotate_remap(&g, &m, &s, cfg);
        if !out.reverted {
            assert_eq!(out.rotated.len(), g.task_count());
            assert!(validate(&out.graph, &m, &out.schedule).is_ok());
        }
    }

    #[test]
    fn empty_first_row_pass_compresses() {
        // Hand-build a schedule whose first row is empty: the pass
        // shifts everything up for free.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 2, 1).unwrap();
        let m = Machine::complete(2);
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 2, 1).unwrap();
        s.place(b, Pe(0), 3, 1).unwrap();
        assert!(validate(&g, &m, &s).is_ok());
        let out = rotate_remap(&g, &m, &s, RemapConfig::default());
        assert!(!out.reverted);
        assert!(out.rotated.is_empty());
        assert_eq!(out.schedule.cb(a), Some(1));
        assert_eq!(out.schedule.length(), 2);
    }
}

//! One rotate-and-remap pass (paper §4: `Rotate-Remap` and
//! `Remapping`).
//!
//! Rotation deallocates the first row of the schedule table and retimes
//! those nodes by `+1` (always legal: a node at control step 1 cannot
//! have a zero-delay incoming edge).  Remapping then re-places each
//! rotated node at the best `(processor, control step)` permitted by
//! the anticipation function `AN` (Lemma 4.2) for a *target* schedule
//! length, preferring one control step shorter than before.

use ccs_model::{Csdfg, NodeId};
use ccs_retiming::{rotate_in_place, unrotate_in_place};
use ccs_schedule::{required_length, Schedule, Slot};
use ccs_topology::{Machine, Pe};
use ccs_trace::{Event, Off, Probe, RunnerUp, Tls, Verdict};
use rayon::prelude::*;

/// Raw `u32` index of a node, for event payloads.  (Node indices are
/// backed by `u32` so the fallback is unreachable; `try_from` keeps
/// the remap hot path free of `as` casts.)
#[inline]
pub(crate) fn nid(v: NodeId) -> u32 {
    u32::try_from(v.index()).unwrap_or(u32::MAX)
}

/// Per-pass hot-path counters behind [`Event::PassStats`].  Only
/// maintained when the probe is active — every increment is gated on
/// `P::ACTIVE`, so the disabled path carries no bookkeeping.
#[derive(Clone, Copy, Debug, Default)]
pub(crate) struct Counters {
    /// Resolved edges swept in `best_position` (per PE × target).
    pub edges_swept: u64,
    /// Candidate slots probed via `earliest_free`.
    pub slots_probed: u64,
    /// Per-node scratch resolutions reused across targets.
    pub scratch_reuses: u64,
    /// Invariant-oracle invocations (0 unless the oracle is compiled
    /// in; see `oracle::ENABLED`).
    pub oracle_calls: u64,
}

impl Counters {
    /// The corresponding [`Event::PassStats`] payload.
    pub fn stats_event(self) -> Event {
        Event::PassStats {
            edges_swept: self.edges_swept,
            slots_probed: self.slots_probed,
            scratch_reuses: self.scratch_reuses,
            oracle_calls: self.oracle_calls,
        }
    }
}

/// Remapping policy (Definition 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum RemapMode {
    /// Never allow the schedule to grow: if the rotated nodes cannot be
    /// re-placed within the previous length, the pass is abandoned and
    /// the previous schedule kept (this is what makes Theorem 4.4 —
    /// monotone non-increase — hold).
    WithoutRelaxation,
    /// Allow intermediate growth (bounded by
    /// [`RemapConfig::max_growth`]); the driver keeps the best schedule
    /// seen, so temporary growth can unlock shorter schedules later.
    #[default]
    WithRelaxation,
}

/// Candidate-scan strategy of the remapper's `best_position` when no
/// trace sink is installed.  (The probe-active path always runs the
/// full reference sweep, so `Candidate` events, their order, and every
/// counter are unchanged by the engine.)
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// The candidate-scan engine: per-edge volume-scaled cost rows
    /// hoisted once per node ([`Machine::dist_row`]), branch-and-bound
    /// PE pruning on the `(impact, cs, comm, pe)` ranking key, and —
    /// on machines with at least [`RemapConfig::parallel_pes`] PEs — a
    /// deterministic parallel chunk scan.  Pruning is on strict
    /// domination only, so the winner and every tie-break are
    /// bit-identical to [`ScanPolicy::Reference`] (proptested).
    #[default]
    Engine,
    /// The plain full sequential sweep (pre-engine behavior):
    /// recomputes each edge's communication cost per candidate PE and
    /// prunes nothing.  Kept as the oracle for the pruning-soundness
    /// tests and as the baseline of the candidate-scan
    /// microbenchmark.
    Reference,
}

/// Options for a rotate-remap pass.
#[derive(Clone, Copy, Debug)]
pub struct RemapConfig {
    /// Relaxation policy.
    pub mode: RemapMode,
    /// With relaxation: how many control steps beyond the previous
    /// length the intermediate schedule may grow.
    pub max_growth: u32,
    /// How many leading schedule rows to rotate per pass (the paper
    /// rotates one; larger values are the multi-row extension — bigger
    /// moves per pass, coarser search).  Clamped to the current
    /// schedule length.
    pub rows_per_pass: u32,
    /// Candidate-scan strategy (see [`ScanPolicy`]).
    pub scan: ScanPolicy,
    /// Minimum machine size (in PEs) before the unprobed engine scan
    /// fans the PE range out across rayon workers.  The default is
    /// deliberately above every in-repo machine: the vendored rayon
    /// stand-in spawns a fresh thread scope per call, so fan-out only
    /// pays once a single scan outweighs thread spawn-up — lower it
    /// explicitly for very wide machines (or to exercise the parallel
    /// path in tests; results are byte-identical at any threshold and
    /// thread count).
    pub parallel_pes: u32,
}

impl Default for RemapConfig {
    fn default() -> Self {
        RemapConfig {
            mode: RemapMode::default(),
            max_growth: 8,
            rows_per_pass: 1,
            scan: ScanPolicy::default(),
            parallel_pes: 128,
        }
    }
}

/// Result of one rotate-remap pass.
#[derive(Clone, Debug)]
pub struct PassOutcome {
    /// The schedule after the pass (equal to the input when `reverted`).
    pub schedule: Schedule,
    /// The (retimed) graph after the pass.
    pub graph: Csdfg,
    /// Nodes that were rotated this pass.
    pub rotated: Vec<NodeId>,
    /// `true` when the pass could not re-place the rotated nodes within
    /// the mode's length budget and was rolled back.
    pub reverted: bool,
}

/// Result of one in-place rotate-remap pass
/// ([`rotate_remap_in_place`]).  On revert the borrowed graph and
/// schedule are restored to their pre-pass state, so no cloned copies
/// need to travel back to the caller.
#[derive(Clone, Debug)]
pub struct InPlaceOutcome {
    /// Nodes that were rotated this pass.
    pub rotated: Vec<NodeId>,
    /// `true` when the pass could not re-place the rotated nodes within
    /// the mode's length budget and was rolled back.
    pub reverted: bool,
}

/// Performs one rotation + remapping pass on `(g, sched)`, allocating
/// fresh copies for the outcome.  Thin cloning wrapper around
/// [`rotate_remap_in_place`] for callers that want to keep the inputs.
///
/// `sched` must be a valid schedule of `g` on `machine` (callers in
/// this crate always pass validated schedules; debug builds re-assert).
pub fn rotate_remap(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    config: RemapConfig,
) -> PassOutcome {
    let mut graph = g.clone();
    let mut schedule = sched.clone();
    let out = rotate_remap_in_place(&mut graph, machine, &mut schedule, config);
    PassOutcome {
        schedule,
        graph,
        rotated: out.rotated,
        reverted: out.reverted,
    }
}

/// Performs one rotation + remapping pass directly on `(g, sched)`.
///
/// On success the borrowed graph carries the rotation's retiming delta
/// and the schedule holds the remapped placements.  On revert both are
/// rolled back in place — rotated slots are restored from a saved
/// first-rows snapshot (the only per-pass allocation proportional to
/// the rotation set, not the whole table) and the rotation is undone
/// edge-by-edge, so a failed pass costs no full-graph or full-table
/// clone.
///
/// `sched` must be a valid schedule of `g` on `machine` (callers in
/// this crate always pass validated schedules; debug builds re-assert).
pub fn rotate_remap_in_place(
    g: &mut Csdfg,
    machine: &Machine,
    sched: &mut Schedule,
    config: RemapConfig,
) -> InPlaceOutcome {
    // One dispatch per pass: with no sink installed the `Off` probe
    // monomorphizes every instrumentation site away and this is the
    // exact pre-tracing code path.
    if ccs_trace::installed() {
        remap_probed(g, machine, sched, config, &mut Tls)
    } else {
        remap_probed(g, machine, sched, config, &mut Off)
    }
}

/// [`rotate_remap_in_place`] instrumented against probe `P` (the
/// driver threads one probe through the whole run so dispatch happens
/// once per `cyclo_compact`, not once per pass).
pub(crate) fn remap_probed<P: Probe>(
    g: &mut Csdfg,
    machine: &Machine,
    sched: &mut Schedule,
    config: RemapConfig,
    probe: &mut P,
) -> InPlaceOutcome {
    let mut counters = Counters::default();
    // Connectivity is a construction-time property (cached, O(1));
    // past this point the hot path reads the hop table branch-free.
    debug_assert!(
        machine.is_connected(),
        "cannot remap on disconnected machine {}",
        machine.name()
    );
    crate::oracle::verify("rotate_remap_in_place: entry", g, machine, sched);
    if P::ACTIVE {
        counters.oracle_calls += u64::from(crate::oracle::ENABLED);
    }
    let prev_len = sched.length();
    let rows = config.rows_per_pass.clamp(1, prev_len.max(1));
    let mut rotated = sched.rows_upto(rows);
    rotated.sort_by_key(|&v| {
        (
            sched.cb(v).unwrap_or(0),
            sched.pe(v).map(|p| p.index()).unwrap_or(0),
            v.index(),
        )
    });

    // Rotation (Definition 4.1). Legal by construction: a node in the
    // first `rows` rows can only have zero-delay in-edges from other
    // nodes in those rows (their producers finish even earlier), so
    // every in-edge from outside the set carries a delay.
    if rotate_in_place(g, &rotated).is_err() {
        // Unreachable for valid schedules; treat as a no-op pass
        // (`rotate_in_place` leaves `g` untouched on error).
        return InPlaceOutcome {
            rotated,
            reverted: true,
        };
    }
    if P::ACTIVE {
        probe.emit(Event::Rotate {
            nodes: rotated.iter().map(|&v| nid(v)).collect(),
        });
    }

    // Snapshot the rotated nodes' slots so a revert can restore them
    // without a table clone.
    let saved: Vec<(NodeId, Slot)> = rotated
        .iter()
        // INVARIANT: the rotation set came from rows_upto, which only
        // yields placed nodes, and nothing was removed since.
        .map(|&v| (v, sched.slot(v).expect("rotated nodes are placed")))
        .collect();
    sched.drop_and_shift_by(&rotated, rows);

    // Targets to try, in order of preference: one step shorter first.
    let targets: Vec<u32> = match config.mode {
        RemapMode::WithoutRelaxation => vec![prev_len.saturating_sub(1).max(1), prev_len],
        RemapMode::WithRelaxation => (0..=config.max_growth + 1)
            .map(|d| (prev_len.saturating_sub(1).max(1)) + d)
            .collect(),
    };

    // Hoist each rotated node's adjacency (endpoints, delay, volume)
    // out of the graph once per pass; `best_position` then only touches
    // flat slices instead of re-walking edge lists per (PE, target).
    let adjacency = hoist_adjacency(g, &rotated);
    let mut scratch = Scratch::default();
    // Cost rows only feed the unprobed engine scan; the probed and
    // reference sweeps recompute per-candidate costs instead.
    let cost_rows = !P::ACTIVE && config.scan == ScanPolicy::Engine;
    let mut failed = false;
    'remap: for (&v, adj) in rotated.iter().zip(&adjacency) {
        let duration = g.time(v);
        // Placements only change between nodes, so neighbour slots can
        // be resolved once per node and reused across PEs and targets.
        scratch.resolve(adj, sched, machine, cost_rows);
        let mut attempts: u64 = 0;
        for &target in &targets {
            if P::ACTIVE {
                counters.scratch_reuses += u64::from(attempts > 0);
                attempts += 1;
            }
            if let Some(found) = best_position(
                machine,
                sched,
                duration,
                &mut scratch,
                target,
                nid(v),
                config,
                probe,
                &mut counters,
            ) {
                sched
                    .place(v, found.pe, found.cs, duration)
                    // INVARIANT: best_position only returns slots that
                    // earliest_free reported free for `duration`.
                    .expect("position checked free");
                if P::ACTIVE {
                    probe.emit(Event::Placed {
                        node: nid(v),
                        pe: found.pe.0,
                        cs: found.cs,
                        duration,
                        target,
                        impact: found.impact,
                        comm: found.comm,
                        runner_up: found.runner_up,
                    });
                }
                continue 'remap;
            }
            if P::ACTIVE {
                probe.emit(Event::NoSlot {
                    node: nid(v),
                    target,
                });
            }
        }
        failed = true;
        break;
    }

    if !failed {
        // Cover the projected schedule lengths by appending empty steps.
        let required = required_length(g, machine, sched);
        if config.mode != RemapMode::WithoutRelaxation || required <= prev_len {
            if P::ACTIVE && required > sched.length() {
                probe.emit(Event::SlackRepair {
                    required,
                    occupied: sched.length(),
                });
            }
            sched.pad_to(required);
            crate::oracle::verify("rotate_remap_in_place: accepted remap", g, machine, sched);
            // Attribution snapshot of the accepted placement: where
            // every edge's communication lands after this pass.
            crate::traffic::emit_edge_traffic(g, machine, sched, probe);
            if P::ACTIVE {
                counters.oracle_calls += u64::from(crate::oracle::ENABLED);
                probe.emit(counters.stats_event());
            }
            return InPlaceOutcome {
                rotated,
                reverted: false,
            };
        }
    }

    // Roll back in place: un-place whatever was re-placed so far (some
    // rotated nodes may not have been when the remap failed), undo the
    // renumbering shift, restore the saved first rows and the original
    // padding, and un-rotate the graph.
    for &(v, _) in &saved {
        sched.remove(v);
    }
    sched.shift_later(rows);
    for &(v, s) in &saved {
        sched
            .place(v, s.pe, s.start, s.duration)
            // INVARIANT: these exact cells were freed by the removes
            // above; restoring the pre-pass placement cannot collide.
            .expect("restoring original placement");
    }
    sched.trim_padding();
    sched.pad_to(prev_len);
    unrotate_in_place(g, &rotated);
    crate::oracle::verify("rotate_remap_in_place: rollback", g, machine, sched);
    if P::ACTIVE {
        counters.oracle_calls += u64::from(crate::oracle::ENABLED);
        probe.emit(counters.stats_event());
    }
    InPlaceOutcome {
        rotated,
        reverted: true,
    }
}

/// Adjacency of one rotated node, hoisted out of the graph once per
/// pass: `(neighbour, delay, volume)` for every non-self edge.  Self
/// loops are excluded everywhere the remapper looks (they constrain
/// only via PSL of the node against itself, which the paper folds into
/// `required_length`).
struct NodeAdj {
    /// Incoming non-self edges as `(producer, delay, volume)`.
    ins: Vec<(NodeId, u32, u32)>,
    /// Outgoing non-self edges as `(consumer, delay, volume)`.
    outs: Vec<(NodeId, u32, u32)>,
}

/// Builds the per-node adjacency cache for the rotated set.
fn hoist_adjacency(g: &Csdfg, nodes: &[NodeId]) -> Vec<NodeAdj> {
    nodes
        .iter()
        .map(|&v| {
            let mut ins = Vec::new();
            for e in g.in_deps(v) {
                let (u, _) = g.endpoints(e);
                if u != v {
                    ins.push((u, g.delay(e), g.volume(e)));
                }
            }
            let mut outs = Vec::new();
            for e in g.out_deps(v) {
                let (_, w) = g.endpoints(e);
                if w != v {
                    outs.push((w, g.delay(e), g.volume(e)));
                }
            }
            NodeAdj { ins, outs }
        })
        .collect()
}

/// One edge to an already-placed neighbour, resolved against the
/// current table: `step` is `CE(u)` for in-edges and `CB(w)` for
/// out-edges.
#[derive(Clone, Copy)]
struct PlacedEdge {
    /// Edge delay `d_r(e)`.
    k: i64,
    /// Data volume.
    vol: u32,
    /// The neighbour's processor.
    pe: Pe,
    /// `CE(u)` (in-edge) or `CB(w)` (out-edge).
    step: i64,
}

/// Reusable per-node buffers for [`best_position`]: resolved placed
/// neighbours, per-candidate communication costs for the reference and
/// probed sweeps (written in the bound sweep, reused in the impact
/// sweep), and — for the engine scan — the per-PE total traffic `comm`
/// (the column sums of every edge's volume-scaled hop-distance row),
/// hoisted once per node so it is shared across every target the
/// remapper tries and every per-PE sweep reads it as one indexed add.
#[derive(Default)]
struct Scratch {
    ins: Vec<PlacedEdge>,
    outs: Vec<PlacedEdge>,
    m_ins: Vec<i64>,
    m_outs: Vec<i64>,
    comm: Vec<u32>,
}

impl Scratch {
    /// Resolves `adj` against the current table, keeping only edges
    /// whose neighbour is placed (unplaced neighbours never constrain),
    /// and with `cost_rows` accumulates the per-PE traffic columns from
    /// each edge's volume-scaled hop-distance row
    /// ([`Machine::dist_row`]; distances are symmetric, so one row
    /// serves in- and out-edges alike).  Every buffer is `clear`ed
    /// before refilling, so a node with fewer resolved edges than its
    /// predecessor can never observe stale slots (regression-tested
    /// below).
    fn resolve(&mut self, adj: &NodeAdj, table: &Schedule, machine: &Machine, cost_rows: bool) {
        self.ins.clear();
        for &(u, k, vol) in &adj.ins {
            let (Some(ce_u), Some(pu)) = (table.ce(u), table.pe(u)) else {
                continue;
            };
            self.ins.push(PlacedEdge {
                k: i64::from(k),
                vol,
                pe: pu,
                step: i64::from(ce_u),
            });
        }
        self.outs.clear();
        for &(w, k, vol) in &adj.outs {
            let (Some(cb_w), Some(pw)) = (table.cb(w), table.pe(w)) else {
                continue;
            };
            self.outs.push(PlacedEdge {
                k: i64::from(k),
                vol,
                pe: pw,
                step: i64::from(cb_w),
            });
        }
        self.m_ins.clear();
        self.m_ins.resize(self.ins.len(), 0);
        self.m_outs.clear();
        self.m_outs.resize(self.outs.len(), 0);
        self.comm.clear();
        if cost_rows {
            self.comm.resize(machine.num_pes(), 0);
            for e in self.ins.iter().chain(&self.outs) {
                let vol = e.vol;
                for (sum, &d) in self.comm.iter_mut().zip(machine.dist_row(e.pe)) {
                    *sum += d * vol;
                }
            }
        }
    }
}

/// Projected schedule length of one loop-carried edge (Lemma 4.3):
/// `ceil((M + CE(u) - CB(w) + 1) / k)`.  The single-division fast
/// path is shared with the schedule checker so the scheduler and the
/// validator can never disagree on rounding.
#[inline]
fn psl(m: i64, ce: i64, cb: i64, k: i64) -> i64 {
    ccs_schedule::psl_value(m, ce, cb, k)
}

/// Finds the cheapest feasible `(control step, processor)` for the node
/// whose resolved neighbourhood is in `scratch`, under
/// final-schedule-length `target`, or `None`.
///
/// For every processor the anticipation function gives the first
/// control step that satisfies all *placed* predecessors:
///
/// `AN(v, p) = max_e { M(PE(u), p) + CE(u) + 1 - d_r(e) * target }`
///
/// (Lemma 4.2 with `L - 1` generalized to `target`; a zero-delay edge
/// contributes plain precedence `CE(u) + M + 1`).  Placed successors
/// bound `CE(v)` from above through their own projected schedule
/// lengths.  Among feasible placements the earliest control step wins,
/// ties to the lowest processor index.
///
/// Candidates are ranked by `(length impact, cs, traffic, pe index)`.
/// The driving objective is the schedule length the placement forces —
/// the max of the node's own end step and the projected schedule
/// lengths (Lemma 4.3) of its loop-carried edges to placed neighbours.
/// Control step breaks ties (earlier leaves room for later rotations),
/// then total data movement, then processor index.  Ranking by length
/// impact rather than raw `cs` stops the greedy from scattering tasks
/// across dense machines: a remote slot one step earlier is worthless
/// if its communication inflates a projected schedule length.
///
/// The winning placement found by [`best_position`], with the ranking
/// components the tracing layer reports (`impact`, `comm`) and the
/// second-best candidate for the `--explain` narrative.
struct Placement {
    /// Start control step.
    cs: u32,
    /// Chosen processor.
    pe: Pe,
    /// Schedule length this placement forces (Lemma 4.3).
    impact: u32,
    /// Total communication traffic.
    comm: u32,
    /// Second-best candidate under the same ranking (only tracked when
    /// the probe is active; always `None` otherwise).
    runner_up: Option<RunnerUp>,
}

/// A candidate's full ranking key `(impact, cs, comm, pe index)`;
/// lexicographic minimum wins, and the trailing PE index makes the
/// minimum unique — the property the deterministic parallel reduce
/// relies on.
type CandKey = (u32, u32, u32, u32);

/// Sequential candidate-scan-engine sweep over the PE span
/// `[lo, hi)`, returning the span's best ranking key.
///
/// The `AN` bounds are computed column-major: one tight add-and-
/// accumulate loop per resolved edge over the span's slice of its
/// hoisted cost row (indexed adds, no multiplies, no bounds checks, no
/// hop-matrix branch — the compiler vectorizes these), instead of
/// re-walking the edge list once per PE.  Per-PE traffic comes from
/// the column sums [`Scratch::comm`] hoisted once per *node*, shared
/// across every target.
///
/// Branch-and-bound then decides per PE whether the expensive part —
/// the free-window scan and the PSL sweep — can be skipped: every
/// component of the eventual key is bounded below by what is already
/// fixed (`cs` by the anticipation bound and the PE's free cursor,
/// `impact` by the end step of that earliest window, `comm` and `pe`
/// exactly), and component-wise `>=` implies lexicographic `>=`.  A PE
/// is pruned only when even its floor key fails to *strictly* beat the
/// incumbent — precisely the candidates the reference sweep would
/// discard too — so winner and tie-breaks are bit-identical.
fn scan_span(
    machine: &Machine,
    table: &Schedule,
    duration: u32,
    scratch: &Scratch,
    target: u32,
    lo: usize,
    hi: usize,
) -> Option<CandKey> {
    let target_len = i64::from(target);
    let dur = i64::from(duration);
    let span = hi - lo;
    // Lower bound on CB(v) per PE from placed predecessors (Lemma 4.2)
    // and upper bound on CE(v) from placed successors and the target,
    // accumulated column-major straight off each edge's hop-distance
    // row slice.  Local buffers keep the parallel chunk scan free of
    // shared mutable state.
    let mut lb = vec![1i64; span];
    for e in &scratch.ins {
        let base = e.step + 1 - e.k * target_len;
        let vol = e.vol;
        let row = &machine.dist_row(e.pe)[lo..hi];
        for (l, &d) in lb.iter_mut().zip(row) {
            *l = (*l).max(i64::from(d * vol) + base);
        }
    }
    let mut ub = vec![target_len; span];
    for e in &scratch.outs {
        let base = e.k * target_len + e.step - 1;
        let vol = e.vol;
        let row = &machine.dist_row(e.pe)[lo..hi];
        for (u, &d) in ub.iter_mut().zip(row) {
            *u = (*u).min(base - i64::from(d * vol));
        }
    }
    let mut best: Option<CandKey> = None;
    for (i, (&lb, &ub)) in lb.iter().zip(&ub).enumerate() {
        if lb > ub {
            continue;
        }
        let p = lo + i;
        let pe = Pe::from_index(p);
        let comm = scratch.comm[p];
        // INVARIANT: lb <= ub <= target at this point (checked above)
        // and target is a u32, so the clamped value always fits.
        let from = u32::try_from(lb.max(1)).expect("clamped positive");
        if let Some(incumbent) = best {
            let floor = from.max(table.free_cursor(pe));
            let impact_floor = u32::try_from(i64::from(floor) + dur - 1).unwrap_or(u32::MAX);
            if (impact_floor, floor, comm, pe.0) >= incumbent {
                continue;
            }
        }
        let cs = table.earliest_free(pe, from, duration);
        let ce_v = i64::from(cs) + dur - 1;
        if ce_v > ub {
            continue;
        }
        let mut needed = ce_v;
        for e in &scratch.ins {
            if e.k > 0 {
                let m = i64::from(machine.dist_row(e.pe)[p] * e.vol);
                needed = needed.max(psl(m, e.step, i64::from(cs), e.k));
            }
        }
        for e in &scratch.outs {
            if e.k > 0 {
                let m = i64::from(machine.dist_row(e.pe)[p] * e.vol);
                needed = needed.max(psl(m, ce_v, e.step, e.k));
            }
        }
        // Saturating conversion, matching the reference sweep exactly.
        let impact = u32::try_from(needed.max(0)).unwrap_or(u32::MAX);
        let key = (impact, cs, comm, pe.0);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best
}

/// Deterministic parallel engine scan: the PE range is cut into fixed
/// contiguous chunks (one per rayon worker), each chunk runs
/// [`scan_span`] independently, and the per-chunk minima are reduced
/// in ascending PE order.  Chunk-local pruning never changes a chunk's
/// exact minimum, and the trailing PE index makes the global minimum
/// unique, so the result is byte-identical to the sequential scan at
/// any `RAYON_NUM_THREADS`.
fn parallel_scan(
    machine: &Machine,
    table: &Schedule,
    duration: u32,
    scratch: &Scratch,
    target: u32,
) -> Option<CandKey> {
    let n = machine.num_pes();
    let chunk = n.div_ceil(rayon::current_num_threads().min(n).max(1));
    let spans: Vec<(usize, usize)> = (0..n)
        .step_by(chunk)
        .map(|lo| (lo, (lo + chunk).min(n)))
        .collect();
    let bests: Vec<Option<CandKey>> = spans
        .into_par_iter()
        .map(|(lo, hi)| scan_span(machine, table, duration, scratch, target, lo, hi))
        .collect();
    bests
        .into_iter()
        .flatten()
        .reduce(|a, b| if b < a { b } else { a })
}

/// The pre-engine full sweep ([`ScanPolicy::Reference`]): recomputes
/// each edge's communication cost per candidate PE via
/// [`Machine::comm_cost`] and prunes nothing.  Oracle for the
/// pruning-soundness tests and baseline for the candidate-scan
/// microbenchmark.
fn reference_scan(
    machine: &Machine,
    table: &Schedule,
    duration: u32,
    scratch: &mut Scratch,
    target: u32,
) -> Option<CandKey> {
    let target_len = i64::from(target);
    let Scratch {
        ins,
        outs,
        m_ins,
        m_outs,
        ..
    } = scratch;
    let mut best: Option<CandKey> = None;
    for pe in machine.pes() {
        let mut lb: i64 = 1;
        let mut comm: u32 = 0;
        for (e, m_slot) in ins.iter().zip(m_ins.iter_mut()) {
            let c = machine.comm_cost(e.pe, pe, e.vol);
            let m = i64::from(c);
            *m_slot = m;
            comm += c;
            lb = lb.max(m + e.step + 1 - e.k * target_len);
        }
        let mut ub: i64 = target_len;
        for (e, m_slot) in outs.iter().zip(m_outs.iter_mut()) {
            let c = machine.comm_cost(pe, e.pe, e.vol);
            let m = i64::from(c);
            *m_slot = m;
            comm += c;
            ub = ub.min(e.k * target_len + e.step - m - 1);
        }
        if lb > ub {
            continue;
        }
        // INVARIANT: lb <= ub <= target at this point (checked above)
        // and target is a u32, so the clamped value always fits.
        let from = u32::try_from(lb.max(1)).expect("clamped positive");
        let cs = table.earliest_free(pe, from, duration);
        let ce_v = i64::from(cs) + i64::from(duration) - 1;
        if ce_v > ub {
            continue;
        }
        let mut needed = ce_v;
        for (e, &m) in ins.iter().zip(m_ins.iter()) {
            if e.k > 0 {
                needed = needed.max(psl(m, e.step, i64::from(cs), e.k));
            }
        }
        for (e, &m) in outs.iter().zip(m_outs.iter()) {
            if e.k > 0 {
                needed = needed.max(psl(m, ce_v, e.step, e.k));
            }
        }
        let impact = u32::try_from(needed.max(0)).unwrap_or(u32::MAX);
        let key = (impact, cs, comm, pe.0);
        if best.is_none_or(|b| key < b) {
            best = Some(key);
        }
    }
    best
}

/// The lower/upper-bound sweep, the traffic sum, and the per-edge
/// communication costs of the impact sweep are fused into a single pass
/// over the resolved edges per processor.
///
/// Dispatch: with an active probe every PE is scanned in full and
/// emits an [`Event::Candidate`] carrying the `AN` bounds and the
/// rejection reason, and the second-best feasible slot is tracked for
/// the placement's `runner_up` — the engine never runs, so traces and
/// counters are unchanged by it.  With the no-op probe the scan goes
/// through [`ScanPolicy`]: the candidate-scan engine ([`scan_span`],
/// fanned out via [`parallel_scan`] on machines of at least
/// [`RemapConfig::parallel_pes`] PEs) or the full
/// [`reference_scan`] — all of which return the same winner,
/// bit-identically.
#[allow(clippy::too_many_arguments)]
fn best_position<P: Probe>(
    machine: &Machine,
    table: &Schedule,
    duration: u32,
    scratch: &mut Scratch,
    target: u32,
    node: u32,
    config: RemapConfig,
    probe: &mut P,
    counters: &mut Counters,
) -> Option<Placement> {
    if !P::ACTIVE {
        let best = match config.scan {
            ScanPolicy::Reference => reference_scan(machine, table, duration, scratch, target),
            ScanPolicy::Engine => {
                let n = machine.num_pes();
                if n >= config.parallel_pes as usize && rayon::current_num_threads() > 1 {
                    parallel_scan(machine, table, duration, &*scratch, target)
                } else {
                    scan_span(machine, table, duration, &*scratch, target, 0, n)
                }
            }
        };
        return best.map(|(impact, cs, comm, pe)| Placement {
            cs,
            pe: Pe(pe),
            impact,
            comm,
            runner_up: None,
        });
    }
    let target_len = i64::from(target);
    let Scratch {
        ins,
        outs,
        m_ins,
        m_outs,
        ..
    } = scratch;
    let mut best: Option<(u32, u32, u32, Pe)> = None;
    // Runner-up slot for the explain narrative (probe-gated).
    let mut second: Option<(u32, u32, u32, Pe)> = None;
    for pe in machine.pes() {
        if P::ACTIVE {
            counters.edges_swept += (ins.len() + outs.len()) as u64;
        }
        // Lower bound on CB(v) from placed predecessors; total traffic
        // and per-edge comm costs fall out of the same sweep.
        let mut lb: i64 = 1;
        let mut comm: u32 = 0;
        for (e, m_slot) in ins.iter().zip(m_ins.iter_mut()) {
            let c = machine.comm_cost(e.pe, pe, e.vol);
            let m = i64::from(c);
            *m_slot = m;
            comm += c;
            lb = lb.max(m + e.step + 1 - e.k * target_len);
        }
        // Upper bound on CE(v) from placed successors and the target.
        let mut ub: i64 = target_len;
        for (e, m_slot) in outs.iter().zip(m_outs.iter_mut()) {
            let c = machine.comm_cost(pe, e.pe, e.vol);
            let m = i64::from(c);
            *m_slot = m;
            comm += c;
            ub = ub.min(e.k * target_len + e.step - m - 1);
        }
        if lb > ub {
            if P::ACTIVE {
                probe.emit(Event::Candidate {
                    node,
                    target,
                    pe: pe.0,
                    lb,
                    ub,
                    comm,
                    verdict: Verdict::Infeasible,
                });
            }
            continue;
        }
        // INVARIANT: lb <= ub <= target at this point (checked above)
        // and target is a u32, so the clamped value always fits.
        let from = u32::try_from(lb.max(1)).expect("clamped positive");
        let cs = table.earliest_free(pe, from, duration);
        if P::ACTIVE {
            counters.slots_probed += 1;
        }
        if i64::from(cs) + i64::from(duration) - 1 > ub {
            if P::ACTIVE {
                probe.emit(Event::Candidate {
                    node,
                    target,
                    pe: pe.0,
                    lb,
                    ub,
                    comm,
                    verdict: Verdict::NoFreeSlot,
                });
            }
            continue;
        }
        // Length impact: the node's own end step and the PSL of every
        // loop-carried edge to a placed neighbour, reusing the cached
        // comm costs.
        let ce_v = i64::from(cs) + i64::from(duration) - 1;
        let mut needed = ce_v;
        for (e, &m) in ins.iter().zip(m_ins.iter()) {
            if e.k > 0 {
                needed = needed.max(psl(m, e.step, i64::from(cs), e.k));
            }
        }
        for (e, &m) in outs.iter().zip(m_outs.iter()) {
            if e.k > 0 {
                needed = needed.max(psl(m, ce_v, e.step, e.k));
            }
        }
        // Saturating conversion: PSL terms are sums of u32 quantities
        // and cannot meaningfully exceed u32::MAX; if one ever does,
        // the candidate simply ranks last instead of panicking.
        let impact = u32::try_from(needed.max(0)).unwrap_or(u32::MAX);
        let key = (impact, cs, comm, pe.index());
        let leads = best.is_none_or(|(bi, bcs, bcomm, bpe)| key < (bi, bcs, bcomm, bpe.index()));
        if P::ACTIVE {
            probe.emit(Event::Candidate {
                node,
                target,
                pe: pe.0,
                lb,
                ub,
                comm,
                verdict: if leads {
                    Verdict::Leading { cs, impact }
                } else {
                    Verdict::Feasible { cs, impact }
                },
            });
            // The displaced best (or the losing candidate) competes
            // for the runner-up slot.
            let contender = if leads {
                best
            } else {
                Some((impact, cs, comm, pe))
            };
            if let Some(c) = contender {
                let ckey = (c.0, c.1, c.2, c.3.index());
                if second.is_none_or(|(si, scs, scomm, spe)| ckey < (si, scs, scomm, spe.index())) {
                    second = Some(c);
                }
            }
        }
        if leads {
            best = Some((impact, cs, comm, pe));
        }
    }
    best.map(|(impact, cs, comm, pe)| Placement {
        cs,
        pe,
        impact,
        comm,
        runner_up: second.map(|(si, scs, scomm, spe)| RunnerUp {
            pe: spe.0,
            cs: scs,
            impact: si,
            comm: scomm,
        }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::startup::{startup_schedule, StartupConfig};
    use ccs_schedule::validate;

    fn fig1() -> (Csdfg, Vec<NodeId>, Machine) {
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        (g, ids, Machine::mesh(2, 2))
    }

    #[test]
    fn first_pass_rotates_a_and_shrinks() {
        let (g, n, m) = fig1();
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        assert_eq!(s.length(), 7);
        let out = rotate_remap(&g, &m, &s, RemapConfig::default());
        assert!(!out.reverted);
        assert_eq!(out.rotated, vec![n[0]]); // A was the only cs1 node
                                             // The paper's first pass lands at 6 control steps.
        assert_eq!(out.schedule.length(), 6);
        assert!(validate(&out.graph, &m, &out.schedule).is_ok());
        // Figure 1(c): D->A now carries 2 delays, A->B/C/E carry 1.
        let da = out.graph.graph().find_edge(n[3], n[0]).unwrap();
        assert_eq!(out.graph.delay(da), 2);
    }

    #[test]
    fn without_relaxation_never_grows() {
        let (g, _, m) = fig1();
        let mut s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let mut graph = g;
        let cfg = RemapConfig {
            mode: RemapMode::WithoutRelaxation,
            max_growth: 0,
            rows_per_pass: 1,
            ..Default::default()
        };
        for _ in 0..10 {
            let prev = s.length();
            let out = rotate_remap(&graph, &m, &s, cfg);
            assert!(out.schedule.length() <= prev, "grew from {prev}");
            assert!(validate(&out.graph, &m, &out.schedule).is_ok());
            if out.reverted {
                break;
            }
            s = out.schedule;
            graph = out.graph;
        }
    }

    #[test]
    fn repeated_passes_reach_paper_length_five() {
        // Figure 3(b): after three passes the example reaches 5 control
        // steps on the 2x2 mesh.
        let (g, _, m) = fig1();
        let mut s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let mut graph = g;
        let mut best = s.length();
        for _ in 0..8 {
            let out = rotate_remap(&graph, &m, &s, RemapConfig::default());
            if out.reverted {
                break;
            }
            s = out.schedule;
            graph = out.graph;
            best = best.min(s.length());
        }
        assert!(best <= 5, "expected <= 5 control steps, got {best}");
    }

    #[test]
    fn pass_preserves_task_count() {
        let (g, _, m) = fig1();
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let out = rotate_remap(&g, &m, &s, RemapConfig::default());
        assert_eq!(out.schedule.placed_count(), g.task_count());
    }

    #[test]
    fn multi_row_rotation_is_valid_and_competitive() {
        let (g, _, m) = fig1();
        for rows in 1..=3u32 {
            let cfg = RemapConfig {
                rows_per_pass: rows,
                ..Default::default()
            };
            let mut graph = g.clone();
            let mut s = startup_schedule(&graph, &m, StartupConfig::default()).unwrap();
            let mut best = s.length();
            for _ in 0..12 {
                let out = rotate_remap(&graph, &m, &s, cfg);
                assert!(
                    validate(&out.graph, &m, &out.schedule).is_ok(),
                    "rows={rows}: invalid schedule"
                );
                if out.reverted {
                    break;
                }
                graph = out.graph;
                s = out.schedule;
                best = best.min(s.length());
            }
            assert!(best <= 6, "rows={rows}: best {best}");
        }
    }

    #[test]
    fn rotating_more_rows_than_length_rotates_everything() {
        let (g, _, m) = fig1();
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let cfg = RemapConfig {
            rows_per_pass: 99,
            ..Default::default()
        };
        let out = rotate_remap(&g, &m, &s, cfg);
        if !out.reverted {
            assert_eq!(out.rotated.len(), g.task_count());
            assert!(validate(&out.graph, &m, &out.schedule).is_ok());
        }
    }

    #[test]
    fn scratch_resolve_cannot_leak_stale_slots() {
        // Regression: `resolve` once grew `m_ins`/`m_outs` with a bare
        // `Vec::resize`, which never shrinks — a node with fewer
        // resolved edges than its predecessor would keep the old tail
        // alive and a later exact-length sweep could read stale costs.
        // Resolve a fat node, then a thin one, and check every buffer
        // is exactly sized and freshly filled.
        let mut g = Csdfg::new();
        let hub = g.add_task("hub", 1).unwrap();
        let spokes: Vec<_> = (0..5)
            .map(|i| g.add_task(format!("s{i}"), 1).unwrap())
            .collect();
        for &s in &spokes {
            g.add_dep(s, hub, 1, 7).unwrap();
            g.add_dep(hub, s, 1, 7).unwrap();
        }
        let thin = g.add_task("thin", 1).unwrap();
        g.add_dep(spokes[0], thin, 1, 2).unwrap();
        g.add_dep(thin, spokes[0], 1, 2).unwrap();

        let m = Machine::mesh(2, 2);
        let mut sched = Schedule::new(m.num_pes());
        for (i, &s) in spokes.iter().enumerate() {
            // INVARIANT: distinct (pe, cs) cells by construction.
            sched
                .place(
                    s,
                    Pe::from_index(i % 4),
                    u32::try_from(i / 4 + 1).unwrap(),
                    1,
                )
                .unwrap();
        }

        let adj = hoist_adjacency(&g, &[hub, thin]);
        let mut scratch = Scratch::default();
        scratch.resolve(&adj[0], &sched, &m, true);
        assert_eq!(scratch.ins.len(), 5);
        assert_eq!(scratch.m_ins.len(), 5);
        assert_eq!(scratch.comm.len(), m.num_pes());
        // Poison the reusable buffers, as a real sweep would.
        for s in &mut scratch.m_ins {
            *s = -99;
        }
        for s in &mut scratch.m_outs {
            *s = -99;
        }

        scratch.resolve(&adj[1], &sched, &m, true);
        assert_eq!(scratch.ins.len(), 1, "thin node resolves one in-edge");
        assert_eq!(scratch.outs.len(), 1);
        assert_eq!(scratch.m_ins.len(), 1, "m_ins must shrink with the node");
        assert_eq!(scratch.m_outs.len(), 1);
        assert_eq!(scratch.comm.len(), m.num_pes());
        assert!(
            scratch.m_ins.iter().chain(&scratch.m_outs).all(|&v| v == 0),
            "stale poison leaked into the resolved buffers"
        );
        // The comm column is rebuilt from the thin node's own edges:
        // one in- and one out-edge to spoke0 on PE 0, volume 2 each,
        // so every column is 4 * dist_row(0).
        let expect: Vec<u32> = m.dist_row(Pe(0)).iter().map(|&d| d * 4).collect();
        assert_eq!(scratch.comm, expect);
    }

    #[test]
    fn empty_first_row_pass_compresses() {
        // Hand-build a schedule whose first row is empty: the pass
        // shifts everything up for free.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 2, 1).unwrap();
        let m = Machine::complete(2);
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 2, 1).unwrap();
        s.place(b, Pe(0), 3, 1).unwrap();
        assert!(validate(&g, &m, &s).is_ok());
        let out = rotate_remap(&g, &m, &s, RemapConfig::default());
        assert!(!out.reverted);
        assert!(out.rotated.is_empty());
        assert_eq!(out.schedule.cb(a), Some(1));
        assert_eq!(out.schedule.length(), 2);
    }
}

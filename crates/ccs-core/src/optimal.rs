//! An exact scheduler for small instances (extension).
//!
//! Exhaustive branch-and-bound over `(processor, control step)`
//! assignments: for a candidate static length `L` (searched upward
//! from the iteration-bound/work/weight lower bounds), tasks are
//! placed in zero-delay topological order subject to the same
//! precedence, communication, and `PSL` rules the heuristic uses.  The
//! first feasible `L` is optimal *for this constraint system*, which
//! lets the experiments measure how far cyclo-compaction is from the
//! true optimum on graphs small enough to enumerate.
//!
//! Intended for graphs of ≲ 8 tasks on machines of ≲ 4 PEs; the
//! `max_states` budget cuts the search off deterministically.

use ccs_model::{timing, Csdfg, NodeId};
use ccs_retiming::iteration_bound;
use ccs_schedule::{required_length, validate, Schedule};
use ccs_topology::Machine;

/// Outcome of [`optimal_schedule`].
#[derive(Clone, Debug)]
pub enum OptimalOutcome {
    /// Search completed: this is a provably minimum-length schedule
    /// (under the library's timing rules, without retiming).
    Proven(Schedule),
    /// The state budget ran out before a feasible `L` was proven
    /// minimal; the best schedule found so far (if any) is returned.
    BudgetExhausted(Option<Schedule>),
}

impl OptimalOutcome {
    /// The schedule, if any was found.
    pub fn schedule(&self) -> Option<&Schedule> {
        match self {
            OptimalOutcome::Proven(s) => Some(s),
            OptimalOutcome::BudgetExhausted(s) => s.as_ref(),
        }
    }

    /// `true` when the result is proven optimal.
    pub fn is_proven(&self) -> bool {
        matches!(self, OptimalOutcome::Proven(_))
    }
}

/// Finds a minimum-length static schedule of `g` on `machine` by
/// exhaustive search (no retiming: the graph is scheduled as given,
/// like the start-up scheduler but optimally).
///
/// `max_states` bounds the number of placement attempts across the
/// whole search.
///
/// # Panics
///
/// Panics if `g` is illegal.
pub fn optimal_schedule(g: &Csdfg, machine: &Machine, max_states: u64) -> OptimalOutcome {
    // INVARIANT: documented contract — this function panics on illegal
    // graphs (see the doc comment above).
    g.check_legal().expect("legal CSDFG");
    // INVARIANT: check_legal above proved the zero-delay view acyclic.
    let order = g.zero_delay_topo().expect("legal graph");
    let total: u64 = g.total_time();
    let pes = machine.num_pes() as u64;
    // INVARIANT: timing analysis only fails on zero-delay cycles,
    // excluded by check_legal above.
    let t = timing::analyze(g).expect("legal graph");
    let lb_work = total.div_ceil(pes);
    let lb_bound = iteration_bound(g).map(|b| b.ceil()).unwrap_or(0);
    let lb_node = g.tasks().map(|v| u64::from(g.time(v))).max().unwrap_or(1);
    let mut lower = lb_work.max(lb_bound).max(lb_node).max(1) as u32;
    // A safe upper limit: the critical path plus the serialized rest
    // always admits a one-PE schedule.
    // Saturate instead of panicking on absurd totals; a u32::MAX upper
    // bound just means the search runs until the state budget is spent.
    let upper = u32::try_from(total)
        .unwrap_or(u32::MAX)
        .saturating_add(t.critical_path);

    let mut budget = max_states;
    let mut best: Option<Schedule> = None;
    while lower <= upper {
        let mut table = Schedule::new(machine.num_pes());
        match place(g, machine, &order, 0, lower, &mut table, &mut budget) {
            SearchResult::Found => {
                table.pad_to(lower);
                debug_assert!(validate(g, machine, &table).is_ok());
                return OptimalOutcome::Proven(table);
            }
            SearchResult::Infeasible => lower += 1,
            SearchResult::OutOfBudget => return OptimalOutcome::BudgetExhausted(best.take()),
        }
        let _ = &best; // `best` only set on budget paths in future variants
    }
    OptimalOutcome::BudgetExhausted(None)
}

enum SearchResult {
    Found,
    Infeasible,
    OutOfBudget,
}

fn place(
    g: &Csdfg,
    machine: &Machine,
    order: &[NodeId],
    depth: usize,
    target: u32,
    table: &mut Schedule,
    budget: &mut u64,
) -> SearchResult {
    if depth == order.len() {
        // All placed: the PSL requirements must fit in `target`.
        return if required_length(g, machine, table) <= target {
            SearchResult::Found
        } else {
            SearchResult::Infeasible
        };
    }
    let v = order[depth];
    let duration = g.time(v);
    for pe in machine.pes() {
        // Earliest start from placed predecessors (zero-delay edges are
        // strict; delayed edges lower-bound via PSL <= target).
        let mut lb: i64 = 1;
        let mut dead = false;
        for e in g.in_deps(v) {
            let (u, _) = g.endpoints(e);
            if u == v {
                continue;
            }
            let (Some(ce_u), Some(pu)) = (table.ce(u), table.pe(u)) else {
                continue;
            };
            let m = i64::from(machine.comm_cost(pu, pe, g.volume(e)));
            let k = i64::from(g.delay(e));
            lb = lb.max(m + i64::from(ce_u) + 1 - k * i64::from(target));
        }
        // Upper bound on CE from placed successors' PSL constraints.
        let mut ub: i64 = i64::from(target);
        for e in g.out_deps(v) {
            let (_, w) = g.endpoints(e);
            if w == v {
                continue;
            }
            let (Some(cb_w), Some(pw)) = (table.cb(w), table.pe(w)) else {
                continue;
            };
            let m = i64::from(machine.comm_cost(pe, pw, g.volume(e)));
            let k = i64::from(g.delay(e));
            ub = ub.min(k * i64::from(target) + i64::from(cb_w) - m - 1);
        }
        if lb > ub {
            dead = true;
        }
        if dead {
            continue;
        }
        // INVARIANT: lb <= ub <= target here (checked above), and
        // target is a u32, so the clamped value always fits.
        let mut cs = u32::try_from(lb.max(1)).expect("positive");
        loop {
            cs = table.earliest_free(pe, cs, duration);
            if i64::from(cs) + i64::from(duration) - 1 > ub {
                break;
            }
            if *budget == 0 {
                return SearchResult::OutOfBudget;
            }
            *budget -= 1;
            table
                .place(v, pe, cs, duration)
                // INVARIANT: cs came from earliest_free(pe, ..) just
                // above, so the interval is free by construction.
                .expect("slot free by construction");
            match place(g, machine, order, depth + 1, target, table, budget) {
                SearchResult::Found => return SearchResult::Found,
                SearchResult::OutOfBudget => {
                    table.remove(v);
                    return SearchResult::OutOfBudget;
                }
                SearchResult::Infeasible => {
                    table.remove(v);
                }
            }
            cs += 1;
        }
    }
    SearchResult::Infeasible
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::{cyclo_compact, CompactConfig};

    fn tiny_loop() -> Csdfg {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        g.add_dep(c, a, 2, 1).unwrap();
        g
    }

    #[test]
    fn finds_the_obvious_optimum() {
        // Chain of total work 4 on one PE: optimal length is 4.
        let g = tiny_loop();
        let m = Machine::complete(1);
        let out = optimal_schedule(&g, &m, 1_000_000);
        assert!(out.is_proven());
        assert_eq!(out.schedule().unwrap().length(), 4);
    }

    #[test]
    fn parallel_pes_cannot_beat_the_chain() {
        // The zero-delay chain A->B->C fixes length >= 4 even with many
        // PEs (communication only hurts).
        let g = tiny_loop();
        let m = Machine::complete(3);
        let out = optimal_schedule(&g, &m, 5_000_000);
        assert!(out.is_proven());
        assert_eq!(out.schedule().unwrap().length(), 4);
    }

    #[test]
    fn independent_tasks_spread() {
        let mut g = Csdfg::new();
        for i in 0..3 {
            let v = g.add_task(format!("T{i}"), 2).unwrap();
            g.add_dep(v, v, 1, 1).unwrap();
        }
        let m = Machine::complete(3);
        let out = optimal_schedule(&g, &m, 1_000_000);
        assert!(out.is_proven());
        assert_eq!(out.schedule().unwrap().length(), 2);
    }

    #[test]
    fn optimal_never_beaten_by_heuristic_without_retiming() {
        // The heuristic *with* retiming may beat the no-retiming
        // optimum, but the start-up schedule alone may not.
        use crate::startup::{startup_schedule, StartupConfig};
        let g = tiny_loop();
        for m in [Machine::linear_array(2), Machine::mesh(2, 2)] {
            let out = optimal_schedule(&g, &m, 5_000_000);
            let opt_len = out.schedule().unwrap().length();
            let heur = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
            assert!(heur.length() >= opt_len, "{}", m.name());
        }
    }

    #[test]
    fn retiming_can_beat_the_no_retiming_optimum() {
        // Cyclo-compaction pipelines across iterations, so its best
        // length may undercut the per-iteration optimum — demonstrate
        // on the tiny loop (bound 4/2 = 2).
        let g = tiny_loop();
        let m = Machine::complete(2);
        let out = optimal_schedule(&g, &m, 5_000_000);
        let opt = out.schedule().unwrap().length();
        let comp = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        assert!(comp.best_length <= opt);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = tiny_loop();
        let m = Machine::complete(3);
        let out = optimal_schedule(&g, &m, 1);
        assert!(!out.is_proven());
        assert!(out.schedule().is_none());
    }

    #[test]
    fn communication_forces_longer_optima_on_sparse_machines() {
        // Producer with two heavy consumers: on a 1-link machine the
        // comm cost makes spreading pointless; optimum equals the
        // serial length. On an ideal machine the optimum drops.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 3).unwrap();
        let c = g.add_task("C", 3).unwrap();
        g.add_dep(a, b, 0, 4).unwrap();
        g.add_dep(a, c, 0, 4).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        let lin = optimal_schedule(&g, &Machine::linear_array(2), 5_000_000);
        let ideal = optimal_schedule(&g, &Machine::ideal(2), 5_000_000);
        let l_lin = lin.schedule().unwrap().length();
        let l_ideal = ideal.schedule().unwrap().length();
        assert!(l_ideal < l_lin, "ideal {l_ideal} !< linear {l_lin}");
        // Ideal: A at cs1, B and C in parallel over cs2-4 => 4 steps
        // (the B->A loop's PSL is exactly 4).
        assert_eq!(l_ideal, 4);
    }
}

//! Post-compaction processor-binding refinement (extension).
//!
//! Cyclo-compaction fixes each rotated node's processor greedily.  This
//! pass runs afterwards and hill-climbs on the *binding only*: it tries
//! moving single tasks to other processors at the same control step,
//! accepting a move when it strictly improves
//! `(required schedule length, total communication traffic)`
//! lexicographically, until a fixpoint.  Times are never changed, so
//! intra-iteration precedence can only be affected through
//! communication costs — which the acceptance check re-validates.

use ccs_model::Csdfg;
use ccs_schedule::{required_length, stats, validate, Schedule};
use ccs_topology::Machine;

/// Result of [`refine_binding`].
#[derive(Clone, Debug)]
pub struct RefineOutcome {
    /// The refined schedule (padding adjusted to the new required
    /// length).
    pub schedule: Schedule,
    /// Number of accepted task moves.
    pub moves: usize,
    /// `(length, traffic)` before refinement.
    pub before: (u32, u64),
    /// `(length, traffic)` after refinement.
    pub after: (u32, u64),
}

/// Hill-climbs the processor binding of `sched` (which must be a valid
/// schedule of `g` on `machine`).  Runs at most `max_rounds` sweeps
/// over all tasks.
pub fn refine_binding(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    max_rounds: usize,
) -> RefineOutcome {
    debug_assert!(validate(g, machine, sched).is_ok());
    let mut best = sched.clone();
    let score = |s: &Schedule| -> (u32, u64) {
        let st = stats::stats(g, machine, s);
        (required_length(g, machine, s).max(st.length), st.traffic)
    };
    let before = score(&best);
    let mut current = before;
    let mut moves = 0usize;

    for _ in 0..max_rounds {
        let mut improved = false;
        for v in g.tasks() {
            // INVARIANT: `best` starts as a validated complete schedule
            // and every committed move keeps all tasks placed.
            let slot = best.slot(v).expect("task placed");
            for pe in machine.pes() {
                if pe == slot.pe || !best.is_free(pe, slot.start, slot.duration) {
                    continue;
                }
                let mut cand = best.clone();
                cand.remove(v);
                cand.place(v, pe, slot.start, slot.duration)
                    // INVARIANT: is_free(pe, ..) was checked in the
                    // loop guard before cloning the candidate.
                    .expect("checked free");
                if validate_quick(g, machine, &cand, current.0) {
                    let cand_score = score(&cand);
                    if cand_score < current {
                        // Re-pad to the (possibly smaller) new required
                        // length before committing.
                        let mut committed = cand;
                        committed.trim_padding();
                        committed.pad_to(required_length(g, machine, &committed));
                        current = cand_score;
                        best = committed;
                        moves += 1;
                        improved = true;
                        break; // re-read v's slot from the new table
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    best.trim_padding();
    best.pad_to(required_length(g, machine, &best));
    debug_assert!(validate(g, machine, &best).is_ok());
    let after = score(&best);
    RefineOutcome {
        schedule: best,
        moves,
        before,
        after,
    }
}

/// Cheap validity pre-check: intra-iteration precedence only (the PSL
/// side is folded into the score via `required_length`, bounded by the
/// current best length).
fn validate_quick(g: &Csdfg, machine: &Machine, s: &Schedule, length_cap: u32) -> bool {
    for e in g.deps() {
        if g.delay(e) != 0 {
            continue;
        }
        let (u, v) = g.endpoints(e);
        let (Some(ce_u), Some(pu), Some(cb_v), Some(pv)) = (s.ce(u), s.pe(u), s.cb(v), s.pe(v))
        else {
            return false;
        };
        if cb_v < ce_u + machine.comm_cost(pu, pv, g.volume(e)) + 1 {
            return false;
        }
    }
    required_length(g, machine, s) <= length_cap
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::{cyclo_compact, CompactConfig};
    use ccs_topology::Pe;

    #[test]
    fn refinement_never_worsens() {
        for w in ["fig7", "volterra", "iir"] {
            let g = ccs_workloads_stub(w);
            for m in [Machine::linear_array(8), Machine::mesh(4, 2)] {
                let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
                let out = refine_binding(&g_final(&r), &m, &r.schedule, 8);
                assert!(out.after <= out.before, "{w} on {}", m.name());
                assert!(validate(&g_final(&r), &m, &out.schedule).is_ok());
            }
        }
    }

    // Small helpers to avoid a dev-dependency cycle on ccs-workloads:
    // rebuild comparable graphs locally.
    fn ccs_workloads_stub(which: &str) -> Csdfg {
        let mut g = Csdfg::new();
        match which {
            "fig7" => {
                // a layered 8-node stand-in with feedback
                let n: Vec<_> = (0..8)
                    .map(|i| g.add_task(format!("v{i}"), 1 + (i % 2) as u32).unwrap())
                    .collect();
                for i in 0..7 {
                    g.add_dep(n[i], n[i + 1], 0, 1 + (i % 3) as u32).unwrap();
                }
                g.add_dep(n[7], n[0], 3, 2).unwrap();
                g.add_dep(n[4], n[1], 2, 1).unwrap();
            }
            "volterra" => {
                let x = g.add_task("x", 1).unwrap();
                let mut prev = None;
                for i in 0..5 {
                    let m = g.add_task(format!("m{i}"), 2).unwrap();
                    g.add_dep(x, m, (i % 3) as u32, 2).unwrap();
                    prev = Some(match prev {
                        None => m,
                        Some(p) => {
                            let a = g.add_task(format!("a{i}"), 1).unwrap();
                            g.add_dep(p, a, 0, 1).unwrap();
                            g.add_dep(m, a, 0, 1).unwrap();
                            a
                        }
                    });
                }
                g.add_dep(prev.unwrap(), x, 1, 1).unwrap();
            }
            _ => {
                let a = g.add_task("in", 1).unwrap();
                let b = g.add_task("w", 1).unwrap();
                let c = g.add_task("y", 1).unwrap();
                g.add_dep(a, b, 0, 1).unwrap();
                g.add_dep(b, c, 0, 1).unwrap();
                g.add_dep(b, b, 1, 1).unwrap();
                g.add_dep(c, a, 1, 1).unwrap();
            }
        }
        g
    }

    fn g_final(r: &crate::compact::Compaction) -> Csdfg {
        r.graph.clone()
    }

    #[test]
    fn refinement_packs_a_wasteful_binding() {
        // Two chained tasks placed on distant PEs with slack: moving the
        // consumer next to (or onto) the producer's PE cuts traffic.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 3).unwrap();
        g.add_dep(b, a, 2, 3).unwrap();
        let m = Machine::linear_array(4);
        let mut s = Schedule::new(4);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(3), 11, 1).unwrap(); // 3 hops x 3 = 9 late
        s.pad_to(required_length(&g, &m, &s));
        assert!(validate(&g, &m, &s).is_ok());
        let out = refine_binding(&g, &m, &s, 10);
        assert!(out.moves >= 1);
        assert!(out.after.1 < out.before.1, "traffic should drop: {:?}", out);
        assert!(out.after.0 <= out.before.0);
        assert!(validate(&g, &m, &out.schedule).is_ok());
    }

    #[test]
    fn fixpoint_on_already_tight_schedules() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        g.add_dep(a, a, 1, 1).unwrap();
        let m = Machine::complete(2);
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        let out = refine_binding(&g, &m, &s, 4);
        assert_eq!(out.moves, 0);
        assert_eq!(out.before, out.after);
    }
}

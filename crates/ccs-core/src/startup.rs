//! The start-up scheduling algorithm (paper §3.1).
//!
//! A list scheduler over the zero-delay DAG view of the CSDFG that
//! accounts for communication delays when picking both the control step
//! and the processor of each task: a node may begin at control step
//! `cs` on processor `p_j` only if, for every already-scheduled
//! predecessor `u_i`,
//! `CE(u_i) + M(PE(u_i), p_j) < cs`
//! — the paper's `cm < cs` test.  Loop-carried (delayed) edges are
//! ignored during placement and honoured afterwards by padding the
//! table to the projected schedule length.

use crate::priority::{evaluate, Priority};
use crate::remap::nid;
use ccs_model::{timing, Csdfg, ModelError, NodeId};
use ccs_schedule::{required_length, Schedule};
use ccs_topology::{Machine, Pe};
use ccs_trace::{Event, Off, Probe, Tls};

/// Start-up scheduler options.
#[derive(Clone, Copy, Debug, Default)]
pub struct StartupConfig {
    /// Ready-list ordering policy (the paper's `PF` by default).
    pub priority: Priority,
    /// When `true`, processor selection pretends all communication is
    /// free (`M = 0`) — the communication-oblivious ablation baseline.
    /// The *returned* schedule is still made valid for the real machine
    /// by delaying starts and padding as needed.
    pub ignore_communication: bool,
}

/// Runs start-up scheduling of `g` onto `machine`.
///
/// Returns a schedule that satisfies every intra-iteration precedence
/// (with communication) and whose length covers every loop-carried
/// edge's projected schedule length.
///
/// # Errors
///
/// Returns an error if `g` is illegal (zero-delay cycle).
pub fn startup_schedule(
    g: &Csdfg,
    machine: &Machine,
    config: StartupConfig,
) -> Result<Schedule, ModelError> {
    // One dispatch per call: the `Off` probe compiles every
    // instrumentation site below away.
    if ccs_trace::installed() {
        startup_probed(g, machine, config, &mut Tls)
    } else {
        startup_probed(g, machine, config, &mut Off)
    }
}

/// [`startup_schedule`] instrumented against probe `P`.
pub(crate) fn startup_probed<P: Probe>(
    g: &Csdfg,
    machine: &Machine,
    config: StartupConfig,
    probe: &mut P,
) -> Result<Schedule, ModelError> {
    g.check_legal()?;
    // INVARIANT: check_legal above proved the zero-delay view acyclic,
    // the only failure mode of the timing analysis.
    let timing = timing::analyze(g).expect("legal graph has acyclic zero-delay view");
    let mut sched = Schedule::new(machine.num_pes());
    if P::ACTIVE {
        probe.emit(Event::StartupBegin {
            tasks: u32::try_from(g.task_count()).unwrap_or(u32::MAX),
            pes: u32::try_from(machine.num_pes()).unwrap_or(u32::MAX),
        });
    }

    let bound = g.graph().node_bound();
    // Remaining zero-delay in-degree per node.
    let mut pending = vec![0usize; bound];
    for v in g.tasks() {
        pending[v.index()] = g.intra_iter_in_deps(v).count();
    }
    let mut ready: Vec<NodeId> = g.tasks().filter(|v| pending[v.index()] == 0).collect();
    let mut unscheduled = g.task_count();
    let mut cs: u32 = 1;

    while unscheduled > 0 {
        // Arrange(list): sort by descending priority, ties by node id
        // (FIFO keeps insertion order, which for a Vec sorted stably by
        // a constant key is the same thing).
        ready.sort_by_key(|&v| {
            (
                -evaluate(config.priority, g, &timing, &sched, v, cs),
                v.index(),
            )
        });
        if P::ACTIVE {
            // Re-evaluate the priorities only on the traced path; the
            // sort key above is not retained.
            for (rank, &v) in ready.iter().enumerate() {
                probe.emit(Event::ReadyPick {
                    cs,
                    rank: u32::try_from(rank).unwrap_or(u32::MAX),
                    node: nid(v),
                    priority: evaluate(config.priority, g, &timing, &sched, v, cs),
                });
            }
        }

        let mut deferred: Vec<NodeId> = Vec::new();
        let mut newly_ready: Vec<NodeId> = Vec::new();
        for &node in &ready {
            match best_slot_at(g, machine, &sched, node, cs, config.ignore_communication) {
                Some(pe) => {
                    sched
                        .place(node, pe, cs, g.time(node))
                        // INVARIANT: best_slot_at only returns PEs it
                        // verified free at `cs` for the full duration.
                        .expect("best_slot_at returned a free processor");
                    if P::ACTIVE {
                        probe.emit(Event::StartupPlace {
                            node: nid(node),
                            pe: pe.0,
                            cs,
                            duration: g.time(node),
                        });
                    }
                    unscheduled -= 1;
                    for e in g.intra_iter_out_deps(node) {
                        let (_, w) = g.endpoints(e);
                        pending[w.index()] -= 1;
                        if pending[w.index()] == 0 {
                            newly_ready.push(w);
                        }
                    }
                }
                None => {
                    if P::ACTIVE {
                        probe.emit(Event::StartupDefer {
                            node: nid(node),
                            cs,
                        });
                    }
                    deferred.push(node);
                }
            }
        }
        ready = deferred;
        ready.extend(newly_ready);
        cs += 1;
    }

    if config.ignore_communication {
        // The placement decisions ignored communication; repair the
        // start times for the real machine before padding.
        sched = legalize(g, machine, &sched);
    }
    let required = required_length(g, machine, &sched);
    if P::ACTIVE && required > sched.length() {
        probe.emit(Event::SlackRepair {
            required,
            occupied: sched.length(),
        });
    }
    sched.pad_to(required);
    // Initial traffic picture: one attribution event per edge under the
    // start-up placement (compiled away for the `Off` probe).
    crate::traffic::emit_edge_traffic(g, machine, &sched, probe);
    if P::ACTIVE {
        probe.emit(Event::StartupEnd {
            length: sched.length(),
        });
    }
    Ok(sched)
}

/// The processor (if any) on which `node` can legally begin at `cs`:
/// free for the node's whole duration and satisfying `cm < cs` for all
/// scheduled predecessors.  Among feasible PEs the one with the
/// smallest `cm` wins, ties to the lowest index (the paper's example
/// picks PE2 over PE4 this way).
fn best_slot_at(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    node: NodeId,
    cs: u32,
    ignore_comm: bool,
) -> Option<Pe> {
    let duration = g.time(node);
    // Resolve the scheduled predecessors once, outside the PE loop: an
    // unscheduled predecessor defers the node on *every* processor, and
    // `base_cm` (the communication-free part of `cm`) lower-bounds the
    // per-PE value, so `base_cm >= cs` defers without scanning a single
    // processor.  Per PE the sweep is then one hop-row read per
    // predecessor instead of a graph walk.
    let mut base_cm: u32 = 0;
    let mut preds: Vec<(u32, Pe, u32)> = Vec::new();
    for e in g.intra_iter_in_deps(node) {
        let (u, _) = g.endpoints(e);
        let ce_u = sched.ce(u)?; // predecessor not scheduled yet
        base_cm = base_cm.max(ce_u);
        if !ignore_comm {
            // INVARIANT: ce(u) succeeded just above, so u is placed
            // and has a processor.
            preds.push((ce_u, sched.pe(u).expect("placed"), g.volume(e)));
        }
    }
    if base_cm >= cs {
        return None;
    }
    let mut best: Option<(u32, Pe)> = None;
    for pe in machine.pes() {
        if !sched.is_free(pe, cs, duration) {
            continue;
        }
        let mut cm: u32 = base_cm;
        for &(ce_u, pu, vol) in &preds {
            cm = cm.max(ce_u + machine.dist_row(pu)[pe.index()] * vol);
        }
        if cm >= cs {
            continue;
        }
        if best.is_none_or(|(bcm, _)| cm < bcm) {
            best = Some((cm, pe));
        }
    }
    best.map(|(_, pe)| pe)
}

/// Rebuilds start times for the real machine while keeping each task's
/// processor and the per-processor execution order: tasks are replayed
/// in `(CB, PE)` order and started at the earliest step satisfying
/// their communication-aware precedences and processor availability.
pub fn legalize(g: &Csdfg, machine: &Machine, sched: &Schedule) -> Schedule {
    let mut order: Vec<NodeId> = g.tasks().filter(|&v| sched.is_placed(v)).collect();
    // INVARIANT: `order` was filtered to placed nodes one line above.
    order.sort_by_key(|&v| (sched.cb(v).expect("placed"), sched.pe(v).expect("placed")));
    let mut out = Schedule::new(sched.num_pes());
    // Replay in topological-compatible order (original CBs respect the
    // zero-delay DAG, so sorting by CB is a valid replay order).
    for v in order {
        // INVARIANT: `order` only contains placed nodes (see filter).
        let pe = sched.pe(v).expect("placed");
        let mut earliest = 1;
        for e in g.intra_iter_in_deps(v) {
            let (u, _) = g.endpoints(e);
            if let (Some(ce_u), Some(pu)) = (out.ce(u), out.pe(u)) {
                earliest = earliest.max(ce_u + machine.comm_cost(pu, pe, g.volume(e)) + 1);
            }
        }
        let start = out.earliest_free(pe, earliest, g.time(v));
        out.place(v, pe, start, g.time(v))
            // INVARIANT: start came from earliest_free on this PE.
            .expect("searched free slot");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_schedule::validate;

    /// The paper's running example: Figure 1(b) graph, 2x2 mesh.
    pub fn fig1() -> (Csdfg, Vec<NodeId>, Machine) {
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|n| {
                let t = if *n == "B" || *n == "E" { 2 } else { 1 };
                g.add_task(*n, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        (g, ids, Machine::mesh(2, 2))
    }

    #[test]
    fn reproduces_figure_2a() {
        // The start-up schedule of the paper's Figure 2(a)/6(b):
        // pe1: A, B B, D, E E, F; pe2: C at cs3; length 7.
        let (g, n, m) = fig1();
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        assert_eq!(s.length(), 7);
        assert_eq!(
            s.slot(n[0]).unwrap(),
            ccs_schedule::Slot {
                pe: Pe(0),
                start: 1,
                duration: 1
            }
        );
        assert_eq!(s.cb(n[1]), Some(2)); // B on pe1
        assert_eq!(s.pe(n[1]), Some(Pe(0)));
        assert_eq!(s.cb(n[2]), Some(3)); // C deferred to cs3 on pe2
        assert_eq!(s.pe(n[2]), Some(Pe(1)));
        assert_eq!(s.cb(n[3]), Some(4)); // D
        assert_eq!(s.cb(n[4]), Some(5)); // E
        assert_eq!(s.cb(n[5]), Some(7)); // F
        assert!(validate(&g, &m, &s).is_ok());
    }

    #[test]
    fn schedule_is_valid_on_every_paper_machine() {
        let (g, _, _) = fig1();
        for m in Machine::paper_suite() {
            let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
            assert!(validate(&g, &m, &s).is_ok(), "invalid on {}", m.name());
        }
    }

    #[test]
    fn complete_machine_never_longer_than_linear() {
        let (g, _, _) = fig1();
        let lin = startup_schedule(&g, &Machine::linear_array(4), StartupConfig::default())
            .unwrap()
            .length();
        let com = startup_schedule(&g, &Machine::complete(4), StartupConfig::default())
            .unwrap()
            .length();
        assert!(com <= lin);
    }

    #[test]
    fn single_pe_serializes_everything() {
        let (g, _, _) = fig1();
        let m = Machine::complete(1);
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        // All tasks on one PE: length >= total computation time.
        assert!(u64::from(s.length()) >= g.total_time());
        assert!(validate(&g, &m, &s).is_ok());
    }

    #[test]
    fn oblivious_placement_still_yields_valid_schedule() {
        let (g, _, _) = fig1();
        let m = Machine::linear_array(4);
        let cfg = StartupConfig {
            ignore_communication: true,
            ..Default::default()
        };
        let s = startup_schedule(&g, &m, cfg).unwrap();
        assert!(validate(&g, &m, &s).is_ok());
        // Ignoring communication while placing can only hurt (or tie)
        // once legalized on a machine with real distances.
        let aware = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        assert!(s.length() >= aware.length());
    }

    #[test]
    fn all_priorities_produce_valid_schedules() {
        let (g, _, m) = fig1();
        for p in [
            Priority::CommunicationSensitive,
            Priority::MobilityOnly,
            Priority::Fifo,
        ] {
            let cfg = StartupConfig {
                priority: p,
                ..Default::default()
            };
            let s = startup_schedule(&g, &m, cfg).unwrap();
            assert!(validate(&g, &m, &s).is_ok(), "{p:?}");
        }
    }

    #[test]
    fn illegal_graph_rejected() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 0, 1).unwrap();
        let m = Machine::complete(2);
        assert!(startup_schedule(&g, &m, StartupConfig::default()).is_err());
    }

    #[test]
    fn legalize_preserves_pe_assignment() {
        let (g, n, m) = fig1();
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let l = legalize(&g, &m, &s);
        for &v in &n {
            assert_eq!(l.pe(v), s.pe(v));
        }
        assert!(validate(&g, &m, &l).is_ok() || l.length() >= s.length());
    }
}

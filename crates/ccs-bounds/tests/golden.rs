//! Golden certificates for the paper's Figure 1 example across the
//! four canonical topologies.
//!
//! These pin the *semantics* of the bound engine, not just its
//! soundness: the exact bound values, the binding family, and the
//! witnesses for a graph whose answers can be checked by hand.  Fig. 1
//! has total work 8, its heaviest recurrence is the delay-1 self-pair
//! E -> F -> E with T/D = 3, and a zero-delay chain A -> B of length 3
//! survives every retiming — so every 4-PE machine is bound by 3, and
//! the scheduler actually achieves 3 (certified in `ccs-core`'s
//! soundness suite; here we certify the known-achievable period).

use ccs_bounds::{certify_period, compute_bounds, BoundKind, Verdict, Witness};
use ccs_topology::Machine;

fn fig1() -> ccs_model::Csdfg {
    ccs_workloads::workload_by_name("fig1")
        .expect("fig1 is a bundled workload")
        .build()
}

fn four_pe_suite() -> Vec<Machine> {
    vec![
        Machine::linear_array(4),
        Machine::ring(4),
        Machine::mesh(2, 2),
        Machine::complete(4),
    ]
}

#[test]
fn fig1_bound_values_are_stable_across_topologies() {
    let g = fig1();
    for m in four_pe_suite() {
        let b = compute_bounds(&g, &m);
        let by_kind = |k| b.get(k).map(|c| c.value);
        assert_eq!(by_kind(BoundKind::CycleRatio), Some(3), "{}", m.name());
        assert_eq!(by_kind(BoundKind::Resource), Some(2), "{}", m.name());
        assert_eq!(by_kind(BoundKind::CriticalPath), Some(3), "{}", m.name());
        assert_eq!(by_kind(BoundKind::Communication), Some(2), "{}", m.name());
        let best = b.best().expect("four certificates");
        assert_eq!(best.value, 3);
        // Tie between cycle_ratio and critical_path resolves to the
        // earlier kind deterministically.
        assert_eq!(best.kind, BoundKind::CycleRatio);
    }
}

#[test]
fn fig1_witnesses_name_the_paper_structures() {
    let g = fig1();
    let b = compute_bounds(&g, &Machine::ring(4));
    match &b.get(BoundKind::CycleRatio).unwrap().witness {
        Witness::Cycle { nodes, ratio } => {
            assert_eq!(nodes, &["E".to_string(), "F".to_string()]);
            assert_eq!(ratio.ceil(), 3);
        }
        w => panic!("expected a cycle witness, got {w:?}"),
    }
    match &b.get(BoundKind::Resource).unwrap().witness {
        Witness::Resource {
            total_compute,
            usable_pes,
            ..
        } => {
            assert_eq!(*total_compute, 8);
            assert_eq!(*usable_pes, 4);
        }
        w => panic!("expected a resource witness, got {w:?}"),
    }
    match &b.get(BoundKind::CriticalPath).unwrap().witness {
        Witness::Chain { nodes, total_time } => {
            assert_eq!(nodes, &["A".to_string(), "B".to_string()]);
            assert_eq!(*total_time, 3);
        }
        w => panic!("expected a chain witness, got {w:?}"),
    }
    match &b.get(BoundKind::Communication).unwrap().witness {
        Witness::Cut {
            pes_used,
            compute_floor,
            comm_floor,
            route,
            ..
        } => {
            assert_eq!(*pes_used, 4);
            assert_eq!(*compute_floor, 2);
            assert_eq!(*comm_floor, 1);
            assert!(route.len() >= 2, "route walks at least one hop: {route:?}");
        }
        w => panic!("expected a cut witness, got {w:?}"),
    }
}

#[test]
fn fig1_period_three_is_provably_optimal_everywhere() {
    let g = fig1();
    for m in four_pe_suite() {
        let rep = certify_period(&g, &m, 3);
        assert_eq!(rep.verdict, Verdict::Optimal, "{}", m.name());
        assert_eq!(rep.gap, 0);
        assert_eq!(rep.gap_pct, 0.0);
        let human = rep.render_human();
        assert!(human.contains("PROVABLY OPTIMAL"), "{human}");
    }
}

#[test]
fn fig1_certificate_json_is_byte_stable() {
    let g = fig1();
    let m = Machine::ring(4);
    let a = certify_period(&g, &m, 3).to_json_pretty();
    let b = certify_period(&g, &m, 3).to_json_pretty();
    assert_eq!(a, b);
    // Golden skeleton: key order and the binding verdict line.
    assert!(
        a.starts_with("{\n  \"period\": 3,\n  \"best_bound\": 3,"),
        "{a}"
    );
    assert!(a.contains("\"best_kind\": \"cycle_ratio\""), "{a}");
    assert!(a.contains("\"verdict\": \"optimal\""), "{a}");
}

//! # ccs-bounds
//!
//! Static iteration-period lower bounds over `(CsdfGraph, Machine)`
//! pairs, and the schedule optimality certifier built on top of them.
//!
//! Every bound here is *sound against the whole scheduler*: cyclo
//! compaction validates its best schedule against some rotation
//! (retiming) of the input graph, so each bound is proven for **every
//! legal retiming** of the input, not just the graph as given.  The
//! catalogue (see `DESIGN.md` §11):
//!
//! * [`BoundKind::CycleRatio`] — `ceil(max_C T(C)/D(C))`, the integer
//!   iteration bound.  Retiming-invariant by the cycle delay-sum
//!   invariant.  Witness: a critical cycle.
//! * [`BoundKind::Resource`] — `ceil(W / min(P, N))` plus the
//!   heaviest-task floor and the pigeonhole pair refinement (with more
//!   tasks than PEs, two of the `P+1` heaviest share a PE).  Witness:
//!   the binding term.
//! * [`BoundKind::CriticalPath`] — the Leiserson–Saxe minimum clock
//!   period: the shortest zero-delay computation chain achievable by
//!   *any* legal retiming.  Witness: the binding chain at the optimum.
//! * [`BoundKind::Communication`] — a communication-aware floor: a
//!   schedule either keeps the whole (weakly connected) graph on few
//!   PEs and pays the serialization term `ceil(W/p)`, or splits a
//!   component and pays the cheapest possible crossing edge its
//!   minimum `hops · volume` cost.  Per-edge delays are replaced by
//!   the maximum delay any legal retiming can place on the edge, so
//!   the floor survives rotation.  Witness: the binding PE count,
//!   crossing edge, and hop-optimal route.
//!
//! [`certify`] compares a schedule's achieved period against
//! `max(bounds)` and returns an [`OptimalityReport`] whose verdict is
//! rendered by `ccs-analyze` as `CCS04x` diagnostics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use ccs_model::{Csdfg, EdgeId};
use ccs_retiming::clock_period::{critical_chain, min_clock_period};
use ccs_retiming::{critical_cycle, Ratio};
use ccs_schedule::Schedule;
use ccs_topology::{Machine, Pe, RoutingTable};
use serde::{Serialize, Value};

/// Which member of the bound family a certificate proves.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum BoundKind {
    /// Max cycle ratio `ceil(max_C T(C)/D(C))` (delay cycles only).
    CycleRatio,
    /// Compute-capacity bound `ceil(W / min(P, N))` with refinements.
    Resource,
    /// Minimum zero-delay critical path over all legal retimings.
    CriticalPath,
    /// Communication-aware serialization/crossing floor.
    Communication,
}

impl BoundKind {
    /// Stable machine-readable name (used in JSON reports).
    pub fn name(self) -> &'static str {
        match self {
            BoundKind::CycleRatio => "cycle_ratio",
            BoundKind::Resource => "resource",
            BoundKind::CriticalPath => "critical_path",
            BoundKind::Communication => "communication",
        }
    }
}

impl std::fmt::Display for BoundKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The proof object attached to a certificate: the structure that
/// *attains* (binds) the bound.
#[derive(Clone, Debug, PartialEq)]
pub enum Witness {
    /// A delay cycle attaining the maximum cycle ratio.
    Cycle {
        /// Cycle node names in traversal order (`[a, b]` = `a -> b -> a`).
        nodes: Vec<String>,
        /// Exact cycle ratio `T(C)/D(C)`.
        ratio: Ratio,
    },
    /// The binding term of the resource bound.
    Resource {
        /// Total computation time `W` of the graph.
        total_compute: u64,
        /// Effective PE count `min(P, N)` the compute is divided over.
        usable_pes: usize,
        /// Name of the heaviest task (the `max_v t(v)` floor).
        heaviest: String,
        /// With more tasks than PEs: the pigeonhole pair forced to
        /// share a PE (two smallest of the `P+1` heaviest tasks).
        shared_pair: Option<(String, String)>,
    },
    /// The zero-delay chain left after the optimal retiming.
    Chain {
        /// Chain node names in execution order.
        nodes: Vec<String>,
        /// Sum of the chain's computation times (= the bound).
        total_time: u64,
    },
    /// The binding split of the communication bound.
    Cut {
        /// The PE count minimizing `max(serialization, crossing)`.
        pes_used: usize,
        /// Serialization term `ceil(W / pes_used)` at that count.
        compute_floor: u64,
        /// Crossing term charged when a component must split.
        comm_floor: u64,
        /// The cheapest crossing edge `(producer, consumer)`, when the
        /// crossing term participates.
        edge: Option<(String, String)>,
        /// A hop-optimal route realizing the minimum hop distance
        /// (PE indices, 0-based), when the crossing term participates.
        route: Vec<u32>,
    },
}

impl Serialize for Witness {
    fn to_value(&self) -> Value {
        let s = |x: &str| Value::String(x.to_string());
        match self {
            Witness::Cycle { nodes, ratio } => Value::Object(vec![
                ("type".into(), s("cycle")),
                (
                    "nodes".into(),
                    Value::Array(nodes.iter().map(|n| s(n)).collect()),
                ),
                ("ratio".into(), s(&ratio.to_string())),
            ]),
            Witness::Resource {
                total_compute,
                usable_pes,
                heaviest,
                shared_pair,
            } => {
                let mut obj = vec![
                    ("type".into(), s("resource")),
                    ("total_compute".into(), Value::UInt(*total_compute)),
                    ("usable_pes".into(), Value::UInt(*usable_pes as u64)),
                    ("heaviest".into(), s(heaviest)),
                ];
                if let Some((a, b)) = shared_pair {
                    obj.push(("shared_pair".into(), Value::Array(vec![s(a), s(b)])));
                }
                Value::Object(obj)
            }
            Witness::Chain { nodes, total_time } => Value::Object(vec![
                ("type".into(), s("chain")),
                (
                    "nodes".into(),
                    Value::Array(nodes.iter().map(|n| s(n)).collect()),
                ),
                ("total_time".into(), Value::UInt(*total_time)),
            ]),
            Witness::Cut {
                pes_used,
                compute_floor,
                comm_floor,
                edge,
                route,
            } => {
                let mut obj = vec![
                    ("type".into(), s("cut")),
                    ("pes_used".into(), Value::UInt(*pes_used as u64)),
                    ("compute_floor".into(), Value::UInt(*compute_floor)),
                    ("comm_floor".into(), Value::UInt(*comm_floor)),
                ];
                if let Some((a, b)) = edge {
                    obj.push(("edge".into(), Value::Array(vec![s(a), s(b)])));
                }
                if !route.is_empty() {
                    obj.push((
                        "route".into(),
                        Value::Array(route.iter().map(|&p| Value::UInt(u64::from(p))).collect()),
                    ));
                }
                Value::Object(obj)
            }
        }
    }
}

/// One proven lower bound on the iteration period, with its witness.
#[derive(Clone, Debug, PartialEq)]
pub struct Certificate {
    /// Which bound family proved it.
    pub kind: BoundKind,
    /// The proven lower bound, in control steps.
    pub value: u64,
    /// The structure attaining the bound.
    pub witness: Witness,
}

impl Serialize for Certificate {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("kind".into(), Value::String(self.kind.name().into())),
            ("value".into(), Value::UInt(self.value)),
            ("witness".into(), self.witness.to_value()),
        ])
    }
}

/// The full bound family computed for one `(graph, machine)` pair.
///
/// Certificates are stored in fixed [`BoundKind`] order; bounds that
/// do not apply (the cycle-ratio bound of an acyclic graph, any bound
/// of an empty graph) are simply absent.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BoundSet {
    certs: Vec<Certificate>,
}

impl BoundSet {
    /// Every computed certificate, in fixed [`BoundKind`] order.
    pub fn certificates(&self) -> &[Certificate] {
        &self.certs
    }

    /// The strongest certificate: maximum bound value, earlier kind on
    /// ties.  `None` only for an empty graph.
    pub fn best(&self) -> Option<&Certificate> {
        let mut best: Option<&Certificate> = None;
        for c in &self.certs {
            if best.map(|b| c.value > b.value).unwrap_or(true) {
                best = Some(c);
            }
        }
        best
    }

    /// The strongest proven bound value (0 for an empty graph).
    pub fn best_value(&self) -> u64 {
        self.best().map(|c| c.value).unwrap_or(0)
    }

    /// Looks up one bound family's certificate.
    pub fn get(&self, kind: BoundKind) -> Option<&Certificate> {
        self.certs.iter().find(|c| c.kind == kind)
    }
}

impl Serialize for BoundSet {
    fn to_value(&self) -> Value {
        Value::Array(self.certs.iter().map(Serialize::to_value).collect())
    }
}

/// `ceil(a / b)` for `b >= 1`.
fn div_ceil(a: u64, b: u64) -> u64 {
    a.div_ceil(b)
}

/// Bound (a): the integer iteration bound with its critical cycle.
fn cycle_ratio_bound(g: &Csdfg) -> Option<Certificate> {
    let (ratio, cycle) = critical_cycle(g)?;
    Some(Certificate {
        kind: BoundKind::CycleRatio,
        value: ratio.ceil(),
        witness: Witness::Cycle {
            nodes: cycle.iter().map(|&v| g.name(v).to_string()).collect(),
            ratio,
        },
    })
}

/// Bound (b): compute capacity with per-PE refinements.
fn resource_bound(g: &Csdfg, m: &Machine) -> Option<Certificate> {
    let n = g.task_count();
    if n == 0 {
        return None;
    }
    let w: u64 = g.total_time();
    let p = m.num_pes().max(1);
    let usable = p.min(n);
    let mut times: Vec<(u32, ccs_model::NodeId)> = g.tasks().map(|v| (g.time(v), v)).collect();
    // Heaviest first; ties by node id for a deterministic witness.
    times.sort_by_key(|&(t, v)| (std::cmp::Reverse(t), v));
    let heaviest = times[0];
    let mut value = div_ceil(w, usable as u64).max(u64::from(heaviest.0));
    // Pigeonhole: with more tasks than PEs, two of the P+1 heaviest
    // tasks share a PE, so the period holds both of them.
    let mut shared_pair = None;
    if n > p {
        let pair = u64::from(times[p - 1].0) + u64::from(times[p].0);
        if pair > value {
            value = pair;
        }
        shared_pair = Some((
            g.name(times[p - 1].1).to_string(),
            g.name(times[p].1).to_string(),
        ));
    }
    Some(Certificate {
        kind: BoundKind::Resource,
        value,
        witness: Witness::Resource {
            total_compute: w,
            usable_pes: usable,
            heaviest: g.name(heaviest.1).to_string(),
            shared_pair,
        },
    })
}

/// Bound (c): the minimum clock period over all legal retimings, with
/// the chain that remains at the optimum.
fn critical_path_bound(g: &Csdfg) -> Option<Certificate> {
    if g.task_count() == 0 {
        return None;
    }
    let (period, r) = min_clock_period(g);
    let retimed = r.apply(g);
    let chain = critical_chain(&retimed);
    Some(Certificate {
        kind: BoundKind::CriticalPath,
        value: u64::from(period),
        witness: Witness::Chain {
            nodes: chain.iter().map(|&v| retimed.name(v).to_string()).collect(),
            total_time: chain.iter().map(|&v| u64::from(retimed.time(v))).sum(),
        },
    })
}

/// Number of weakly connected components of `g` (self-loops ignored).
fn weak_components(g: &Csdfg) -> usize {
    let n = g.graph().node_bound();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
        if ru != rv {
            parent[ru.max(rv)] = ru.min(rv);
        }
    }
    g.tasks()
        .filter(|&v| find(&mut parent, v.index()) == v.index())
        .count()
}

/// The maximum delay any *legal* retiming can place on each edge:
/// `d(e) + min-delay-path(dst -> src)`, or `None` when the edge lies
/// on no cycle (retiming can pipeline it arbitrarily deep).
///
/// Legality (`d_r(e) >= 0` everywhere) is a difference-constraint
/// system whose optimum is the shortest path under delay weights; for
/// an edge on a cycle this is exactly the minimum cycle delay through
/// it, which the retiming invariant caps.
fn max_retimed_delays(g: &Csdfg) -> Vec<Option<u64>> {
    let graph = g.graph();
    let n = graph.node_bound();
    // All-pairs min-delay distances via repeated Dijkstra (delay
    // weights are non-negative; graphs in this domain are small).
    let mut dist = vec![vec![u64::MAX; n]; n];
    for src in g.tasks() {
        let d = &mut dist[src.index()];
        d[src.index()] = 0;
        let mut heap = std::collections::BinaryHeap::new();
        heap.push(std::cmp::Reverse((0u64, src)));
        while let Some(std::cmp::Reverse((du, u))) = heap.pop() {
            if du > d[u.index()] {
                continue;
            }
            for e in graph.out_edges(u) {
                let v = graph.edge_target(e);
                let cand = du.saturating_add(u64::from(g.delay(e)));
                if cand < d[v.index()] {
                    d[v.index()] = cand;
                    heap.push(std::cmp::Reverse((cand, v)));
                }
            }
        }
    }
    g.deps()
        .map(|e| {
            let (u, v) = g.endpoints(e);
            let back = dist[v.index()][u.index()];
            if back == u64::MAX {
                None
            } else {
                Some(u64::from(g.delay(e)) + back)
            }
        })
        .collect()
}

/// Bound (d): the communication-aware serialization/crossing floor.
///
/// A schedule occupies some number `p` of PEs.  For each feasible `p`
/// it must pay `ceil(W/p)` (compute packing), and as soon as `p`
/// exceeds the graph's weak component count some component is split,
/// so some edge crosses PEs and its producer/consumer chain plus the
/// minimum possible `hops · volume` transfer must fit — diluted by the
/// most delays any retiming can place on that edge.  The bound is the
/// minimum over `p` of the worst of the two terms, so it can prove
/// "parallelism cannot pay for its communication" without ever
/// overcharging a serial schedule.
fn communication_bound(g: &Csdfg, m: &Machine) -> Option<Certificate> {
    let n = g.task_count();
    if n == 0 {
        return None;
    }
    let w = g.total_time();
    let p_max = m.num_pes().min(n).max(1);
    let components = weak_components(g);

    // Cheapest possible hop distance between two *distinct* PEs that
    // can talk at all; `None` when no such pair exists (then any
    // crossing is illegal and every split is infeasible).
    let mut min_hop: Option<u64> = None;
    for a in m.pes() {
        for (j, &d) in m.dist_row(a).iter().enumerate() {
            if j != a.index() && d != u32::MAX {
                let d = u64::from(d);
                if min_hop.map(|h| d < h).unwrap_or(true) {
                    min_hop = Some(d);
                }
            }
        }
    }

    // Cheapest crossing floor over all non-self edges, with each
    // edge's delay maximized over legal retimings.
    let mut cross: Option<(u64, EdgeId)> = None;
    if let Some(hop) = min_hop {
        let max_delay = max_retimed_delays(g);
        for (ix, e) in g.deps().enumerate() {
            let (u, v) = g.endpoints(e);
            if u == v {
                continue; // a self edge can never cross PEs
            }
            let span = hop * u64::from(g.volume(e)) + u64::from(g.time(u)) + u64::from(g.time(v));
            let floor = match max_delay[ix] {
                // ceil(span / (k_max + 1)); unbounded pipelining still
                // leaves at least one control step.
                Some(k) => div_ceil(span, k + 1).max(1),
                None => 1,
            };
            if cross.map(|(c, _)| floor < c).unwrap_or(true) {
                cross = Some((floor, e));
            }
        }
    }

    let mut best: Option<(u64, usize, u64, u64, Option<EdgeId>)> = None;
    for p in 1..=p_max {
        let compute = div_ceil(w, p as u64);
        let (value, comm, edge) = if p <= components {
            (compute, 0, None)
        } else {
            match cross {
                // Splitting a component is impossible (no reachable PE
                // pair, or no candidate edge): the branch is infeasible.
                None => continue,
                Some((floor, e)) => (compute.max(floor), floor, Some(e)),
            }
        };
        if best.map(|(b, ..)| value < b).unwrap_or(true) {
            best = Some((value, p, compute, comm, edge));
        }
    }
    let (value, pes_used, compute_floor, comm_floor, edge) = best?;
    let edge_names = edge.map(|e| {
        let (u, v) = g.endpoints(e);
        (g.name(u).to_string(), g.name(v).to_string())
    });
    let route = match (edge, min_hop) {
        (Some(_), Some(_)) => {
            // A hop-optimal route witnessing `min_hop`, via the same
            // deterministic BFS routing table the traffic ledger uses.
            let mut pair: Option<(Pe, Pe)> = None;
            'outer: for a in m.pes() {
                for (j, &d) in m.dist_row(a).iter().enumerate() {
                    if j != a.index() && u64::from(d) == min_hop.unwrap_or(0) {
                        pair = Some((a, Pe::from_index(j)));
                        break 'outer;
                    }
                }
            }
            pair.map(|(a, b)| {
                RoutingTable::new(m)
                    .path(a, b)
                    .iter()
                    .map(|p| p.index() as u32)
                    .collect()
            })
            .unwrap_or_default()
        }
        _ => Vec::new(),
    };
    Some(Certificate {
        kind: BoundKind::Communication,
        value,
        witness: Witness::Cut {
            pes_used,
            compute_floor,
            comm_floor,
            edge: edge_names,
            route,
        },
    })
}

/// Computes the full bound family for `(g, m)`.
///
/// # Panics
///
/// Panics if `g` is illegal (zero-delay cycle) — run `ccs-analyze`
/// first; bounds of an illegal graph are undefined.
pub fn compute_bounds(g: &Csdfg, m: &Machine) -> BoundSet {
    assert!(
        g.check_legal().is_ok(),
        "bounds undefined: graph has a zero-delay cycle"
    );
    let mut certs = Vec::with_capacity(4);
    certs.extend(cycle_ratio_bound(g));
    certs.extend(resource_bound(g, m));
    certs.extend(critical_path_bound(g));
    certs.extend(communication_bound(g, m));
    BoundSet { certs }
}

/// The certifier's verdict on one schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// Achieved period equals the strongest proven bound.
    Optimal,
    /// Achieved period exceeds the strongest bound by the stored gap.
    Gap,
    /// Achieved period is *below* a proven bound: either the bound
    /// proof or the schedule validator is wrong.  Always a bug.
    BoundExceeded,
}

impl Verdict {
    /// Stable machine-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Optimal => "optimal",
            Verdict::Gap => "gap",
            Verdict::BoundExceeded => "bound_exceeded",
        }
    }
}

/// The result of comparing an achieved period against the bound family.
#[derive(Clone, Debug, PartialEq)]
pub struct OptimalityReport {
    /// The schedule's achieved iteration period (its length).
    pub period: u32,
    /// Every bound computed for the pair.
    pub bounds: BoundSet,
    /// The comparison verdict.
    pub verdict: Verdict,
    /// `period - best_bound` (0 when optimal or exceeded).
    pub gap: u64,
    /// `gap / best_bound` as a percentage (0 when no bound applies).
    pub gap_pct: f64,
}

impl OptimalityReport {
    /// The strongest certificate the period was compared against.
    pub fn best(&self) -> Option<&Certificate> {
        self.bounds.best()
    }

    /// Human rendering: one line per bound, then the verdict.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "optimality certificate (period {}):", self.period);
        for c in self.bounds.certificates() {
            let bind = if self.bounds.best().map(|b| std::ptr::eq(b, c)) == Some(true) {
                "  <- binding"
            } else {
                ""
            };
            let _ = writeln!(out, "  {:>14}: >= {}{}", c.kind.name(), c.value, bind);
            let detail = match &c.witness {
                Witness::Cycle { nodes, ratio } => {
                    format!("cycle {} (T/D = {ratio})", nodes.join(" -> "))
                }
                Witness::Resource {
                    total_compute,
                    usable_pes,
                    shared_pair,
                    ..
                } => match shared_pair {
                    Some((a, b)) => {
                        format!("W = {total_compute} over {usable_pes} PEs; {a}+{b} share a PE")
                    }
                    None => format!("W = {total_compute} over {usable_pes} PEs"),
                },
                Witness::Chain { nodes, .. } => {
                    format!("chain {} (after optimal retiming)", nodes.join(" -> "))
                }
                Witness::Cut {
                    pes_used,
                    compute_floor,
                    comm_floor,
                    edge,
                    ..
                } => match edge {
                    Some((a, b)) => format!(
                        "best split uses {pes_used} PEs: compute {compute_floor}, \
                         crossing {a} -> {b} costs {comm_floor}"
                    ),
                    None => format!("best split uses {pes_used} PEs: compute {compute_floor}"),
                },
            };
            let _ = writeln!(out, "                  {detail}");
        }
        match self.verdict {
            Verdict::Optimal => {
                let _ = writeln!(out, "  verdict: PROVABLY OPTIMAL (gap 0)");
            }
            Verdict::Gap => {
                let _ = writeln!(
                    out,
                    "  verdict: within {} steps of the strongest bound (gap {:.1}%)",
                    self.gap, self.gap_pct
                );
            }
            Verdict::BoundExceeded => {
                let _ = writeln!(
                    out,
                    "  verdict: INTERNAL BUG — period {} beats a proven bound {}",
                    self.period,
                    self.bounds.best_value()
                );
            }
        }
        out
    }

    /// Pretty-printed deterministic JSON export.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).unwrap_or_else(|_| "{}".to_string())
    }
}

impl Serialize for OptimalityReport {
    fn to_value(&self) -> Value {
        let best = self.bounds.best();
        Value::Object(vec![
            ("period".into(), Value::UInt(u64::from(self.period))),
            ("best_bound".into(), Value::UInt(self.bounds.best_value())),
            (
                "best_kind".into(),
                match best {
                    Some(c) => Value::String(c.kind.name().into()),
                    None => Value::Null,
                },
            ),
            ("verdict".into(), Value::String(self.verdict.name().into())),
            ("gap".into(), Value::UInt(self.gap)),
            ("gap_pct".into(), Value::Float(self.gap_pct)),
            ("bounds".into(), self.bounds.to_value()),
        ])
    }
}

/// Certifies an achieved period against the bound family of `(g, m)`.
///
/// `g` must be the *input* graph handed to the scheduler (bounds are
/// proven over all of its legal retimings, so any rotation the
/// scheduler performed is covered).
pub fn certify_period(g: &Csdfg, m: &Machine, period: u32) -> OptimalityReport {
    let bounds = compute_bounds(g, m);
    let best = bounds.best_value();
    let achieved = u64::from(period);
    let (verdict, gap) = if achieved < best {
        (Verdict::BoundExceeded, 0)
    } else if achieved == best {
        (Verdict::Optimal, 0)
    } else {
        (Verdict::Gap, achieved - best)
    };
    let gap_pct = if best > 0 {
        gap as f64 * 100.0 / best as f64
    } else {
        0.0
    };
    OptimalityReport {
        period,
        bounds,
        verdict,
        gap,
        gap_pct,
    }
}

/// Certifies a schedule: its achieved period is its length.
pub fn certify(g: &Csdfg, m: &Machine, s: &Schedule) -> OptimalityReport {
    certify_period(g, m, s.length())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's running example (Figure 1(b) shape): A(1) -> B(2)
    /// -> A with one delay on the back edge.
    fn two_node_loop() -> Csdfg {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        g
    }

    #[test]
    fn cycle_ratio_certificate_on_loop() {
        let g = two_node_loop();
        let m = Machine::linear_array(2);
        let set = compute_bounds(&g, &m);
        let c = set.get(BoundKind::CycleRatio).unwrap();
        assert_eq!(c.value, 3);
        match &c.witness {
            Witness::Cycle { nodes, ratio } => {
                assert_eq!(nodes.len(), 2);
                assert_eq!(*ratio, Ratio::new(3, 1));
            }
            w => panic!("wrong witness {w:?}"),
        }
    }

    #[test]
    fn resource_bound_counts_usable_pes() {
        // Three independent unit tasks on 8 PEs: only 3 PEs usable.
        let mut g = Csdfg::new();
        for (i, t) in [4u32, 2, 2].iter().enumerate() {
            g.add_task(format!("T{i}"), *t).unwrap();
        }
        let m = Machine::complete(8);
        let c = compute_bounds(&g, &m);
        let r = c.get(BoundKind::Resource).unwrap();
        // ceil(8/3) = 3, but the heaviest task forces 4.
        assert_eq!(r.value, 4);
        match &r.witness {
            Witness::Resource {
                usable_pes,
                heaviest,
                ..
            } => {
                assert_eq!(*usable_pes, 3);
                assert_eq!(heaviest, "T0");
            }
            w => panic!("wrong witness {w:?}"),
        }
    }

    #[test]
    fn resource_pigeonhole_pair_binds() {
        // Three tasks of weight 4 on 2 PEs: two must share -> 8.
        let mut g = Csdfg::new();
        for i in 0..3 {
            g.add_task(format!("T{i}"), 4).unwrap();
        }
        let m = Machine::linear_array(2);
        let r = compute_bounds(&g, &m);
        let c = r.get(BoundKind::Resource).unwrap();
        assert_eq!(c.value, 8);
        match &c.witness {
            Witness::Resource { shared_pair, .. } => {
                assert_eq!(
                    shared_pair.clone().unwrap(),
                    ("T1".to_string(), "T2".to_string())
                );
            }
            w => panic!("wrong witness {w:?}"),
        }
    }

    #[test]
    fn critical_path_bound_is_retiming_aware() {
        // Zero-delay chain A(1)->B(1)->C(1), no cycle: retiming can
        // fully pipeline it, so the bound is 1, not 3.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, c, 0, 1).unwrap();
        let m = Machine::linear_array(4);
        let set = compute_bounds(&g, &m);
        assert_eq!(set.get(BoundKind::CriticalPath).unwrap().value, 1);
    }

    #[test]
    fn communication_bound_never_exceeds_serialization() {
        // Heavy traffic: the comm bound must fall back to the serial
        // schedule's W, never above it (a 1-PE schedule avoids all
        // communication).
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 9).unwrap();
        g.add_dep(b, a, 1, 9).unwrap();
        let m = Machine::linear_array(4);
        let set = compute_bounds(&g, &m);
        let c = set.get(BoundKind::Communication).unwrap();
        assert!(c.value <= g.total_time(), "comm bound {} > W", c.value);
        // Here crossing costs ceil((9+4)/k+1) on every edge, far above
        // ceil(W/2)=2, so serialization wins: bound = W = 4.
        assert_eq!(c.value, 4);
        match &c.witness {
            Witness::Cut { pes_used, .. } => assert_eq!(*pes_used, 1),
            w => panic!("wrong witness {w:?}"),
        }
    }

    #[test]
    fn communication_bound_charges_forced_crossing() {
        // Four weight-2 tasks in a zero-delay diamond on 2 PEs with
        // volume-5 edges: W=8, so 1 PE costs 8; 2 PEs cost
        // max(ceil(8/2), crossing).  All edges are acyclic (retiming
        // can pipeline them), so the crossing floor collapses to 1 and
        // the compute term 4 wins the p=2 branch.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 2).unwrap();
        let b = g.add_task("B", 2).unwrap();
        let c = g.add_task("C", 2).unwrap();
        let d = g.add_task("D", 2).unwrap();
        for (u, v) in [(a, b), (a, c), (b, d), (c, d)] {
            g.add_dep(u, v, 0, 5).unwrap();
        }
        let m = Machine::linear_array(2);
        let set = compute_bounds(&g, &m);
        let cut = set.get(BoundKind::Communication).unwrap();
        assert_eq!(cut.value, 4);
    }

    #[test]
    fn communication_bound_respects_retimed_delays() {
        // 2-node cycle with big volume: the crossing floor uses the
        // max retimable delay (1 around the cycle), so each edge
        // floors at ceil((1*6 + 3)/2) = 5 > ceil(W/2) = 2, and the
        // serial branch W = 3 wins.  Bound must be 3, not 5.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 6).unwrap();
        g.add_dep(b, a, 1, 6).unwrap();
        let m = Machine::linear_array(2);
        let set = compute_bounds(&g, &m);
        let c = set.get(BoundKind::Communication).unwrap();
        assert_eq!(c.value, 3);
    }

    #[test]
    fn acyclic_graph_has_no_cycle_certificate() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        let set = compute_bounds(&g, &Machine::linear_array(2));
        assert!(set.get(BoundKind::CycleRatio).is_none());
        assert!(set.get(BoundKind::Resource).is_some());
    }

    #[test]
    fn certify_verdicts() {
        let g = two_node_loop();
        let m = Machine::linear_array(2);
        // Bound family max here is 3 (cycle ratio == W == 3).
        let opt = certify_period(&g, &m, 3);
        assert_eq!(opt.verdict, Verdict::Optimal);
        assert_eq!(opt.gap, 0);
        let gap = certify_period(&g, &m, 4);
        assert_eq!(gap.verdict, Verdict::Gap);
        assert_eq!(gap.gap, 1);
        assert!((gap.gap_pct - 100.0 / 3.0).abs() < 1e-9);
        let bug = certify_period(&g, &m, 2);
        assert_eq!(bug.verdict, Verdict::BoundExceeded);
    }

    #[test]
    fn report_serialization_shape() {
        let g = two_node_loop();
        let m = Machine::linear_array(2);
        let rep = certify_period(&g, &m, 3);
        let v = serde_json::to_value(&rep).unwrap();
        assert_eq!(v["period"].as_u64(), Some(3));
        assert_eq!(v["best_bound"].as_u64(), Some(3));
        assert_eq!(v["verdict"].as_str(), Some("optimal"));
        let bounds = v["bounds"].as_array().unwrap();
        assert_eq!(bounds.len(), 4);
        assert_eq!(bounds[0]["kind"].as_str(), Some("cycle_ratio"));
        // Byte-stable rendering.
        let a = serde_json::to_string_pretty(&rep).unwrap();
        let b = serde_json::to_string_pretty(&certify_period(&g, &m, 3)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn human_rendering_names_the_binding_bound() {
        let g = two_node_loop();
        let m = Machine::linear_array(2);
        let rep = certify_period(&g, &m, 3);
        let h = rep.render_human();
        assert!(h.contains("PROVABLY OPTIMAL"), "{h}");
        assert!(h.contains("<- binding"), "{h}");
    }

    #[test]
    fn empty_graph_is_trivially_optimal() {
        let g = Csdfg::new();
        let m = Machine::linear_array(2);
        let rep = certify_period(&g, &m, 0);
        assert_eq!(rep.verdict, Verdict::Optimal);
        assert!(rep.bounds.certificates().is_empty());
    }
}

//! The directed multigraph container.

use crate::ids::{EdgeId, NodeId};

#[derive(Clone, Debug)]
struct NodeSlot<N> {
    weight: Option<N>,
    /// Outgoing edge ids (insertion order).
    out_edges: Vec<EdgeId>,
    /// Incoming edge ids (insertion order).
    in_edges: Vec<EdgeId>,
}

#[derive(Clone, Debug)]
struct EdgeSlot<E> {
    weight: Option<E>,
    src: NodeId,
    dst: NodeId,
}

/// A directed multigraph with node weights `N` and edge weights `E`.
///
/// Parallel edges and self-loops are allowed (both occur in data-flow
/// graphs).  Node and edge ids are stable: removing an element leaves a
/// tombstone and never renumbers the survivors.
///
/// # Examples
///
/// ```
/// use ccs_graph::DiGraph;
///
/// let mut g: DiGraph<&str, u32> = DiGraph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// let e = g.add_edge(a, b, 3);
/// assert_eq!(g.edge_endpoints(e), (a, b));
/// assert_eq!(g[e], 3);
/// assert_eq!(g.out_degree(a), 1);
/// ```
#[derive(Clone, Debug)]
pub struct DiGraph<N, E> {
    nodes: Vec<NodeSlot<N>>,
    edges: Vec<EdgeSlot<E>>,
    live_nodes: usize,
    live_edges: usize,
}

impl<N, E> Default for DiGraph<N, E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<N, E> DiGraph<N, E> {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DiGraph {
            nodes: Vec::new(),
            edges: Vec::new(),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Creates an empty graph with capacity reserved for `nodes` nodes and
    /// `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DiGraph {
            nodes: Vec::with_capacity(nodes),
            edges: Vec::with_capacity(edges),
            live_nodes: 0,
            live_edges: 0,
        }
    }

    /// Number of live nodes.
    pub fn node_count(&self) -> usize {
        self.live_nodes
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.live_edges
    }

    /// Upper bound (exclusive) on raw node indices ever allocated,
    /// including tombstones.  Useful to size side tables indexed by
    /// [`NodeId::index`].
    pub fn node_bound(&self) -> usize {
        self.nodes.len()
    }

    /// Upper bound (exclusive) on raw edge indices ever allocated.
    pub fn edge_bound(&self) -> usize {
        self.edges.len()
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, weight: N) -> NodeId {
        let id = NodeId::from_index(self.nodes.len());
        self.nodes.push(NodeSlot {
            weight: Some(weight),
            out_edges: Vec::new(),
            in_edges: Vec::new(),
        });
        self.live_nodes += 1;
        id
    }

    /// Adds a directed edge `src -> dst` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is not a live node.
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, weight: E) -> EdgeId {
        assert!(
            self.contains_node(src),
            "add_edge: source {src:?} is not a live node"
        );
        assert!(
            self.contains_node(dst),
            "add_edge: target {dst:?} is not a live node"
        );
        let id = EdgeId::from_index(self.edges.len());
        self.edges.push(EdgeSlot {
            weight: Some(weight),
            src,
            dst,
        });
        self.nodes[src.index()].out_edges.push(id);
        self.nodes[dst.index()].in_edges.push(id);
        self.live_edges += 1;
        id
    }

    /// Returns `true` if `id` refers to a live node of this graph.
    pub fn contains_node(&self, id: NodeId) -> bool {
        self.nodes
            .get(id.index())
            .is_some_and(|s| s.weight.is_some())
    }

    /// Returns `true` if `id` refers to a live edge of this graph.
    pub fn contains_edge(&self, id: EdgeId) -> bool {
        self.edges
            .get(id.index())
            .is_some_and(|s| s.weight.is_some())
    }

    /// Removes a node and every edge incident to it.  Returns its weight,
    /// or `None` if the node was already gone.
    pub fn remove_node(&mut self, id: NodeId) -> Option<N> {
        if !self.contains_node(id) {
            return None;
        }
        let incident: Vec<EdgeId> = self.nodes[id.index()]
            .out_edges
            .iter()
            .chain(self.nodes[id.index()].in_edges.iter())
            .copied()
            .collect();
        for e in incident {
            self.remove_edge(e);
        }
        self.live_nodes -= 1;
        self.nodes[id.index()].weight.take()
    }

    /// Removes an edge, returning its weight (or `None` if already gone).
    pub fn remove_edge(&mut self, id: EdgeId) -> Option<E> {
        if !self.contains_edge(id) {
            return None;
        }
        let (src, dst) = (self.edges[id.index()].src, self.edges[id.index()].dst);
        self.nodes[src.index()].out_edges.retain(|&e| e != id);
        self.nodes[dst.index()].in_edges.retain(|&e| e != id);
        self.live_edges -= 1;
        self.edges[id.index()].weight.take()
    }

    /// Borrow a node weight.
    pub fn node_weight(&self, id: NodeId) -> Option<&N> {
        self.nodes.get(id.index()).and_then(|s| s.weight.as_ref())
    }

    /// Mutably borrow a node weight.
    pub fn node_weight_mut(&mut self, id: NodeId) -> Option<&mut N> {
        self.nodes
            .get_mut(id.index())
            .and_then(|s| s.weight.as_mut())
    }

    /// Borrow an edge weight.
    pub fn edge_weight(&self, id: EdgeId) -> Option<&E> {
        self.edges.get(id.index()).and_then(|s| s.weight.as_ref())
    }

    /// Mutably borrow an edge weight.
    pub fn edge_weight_mut(&mut self, id: EdgeId) -> Option<&mut E> {
        self.edges
            .get_mut(id.index())
            .and_then(|s| s.weight.as_mut())
    }

    /// Endpoints `(src, dst)` of a live edge.
    ///
    /// # Panics
    ///
    /// Panics if the edge does not exist.
    pub fn edge_endpoints(&self, id: EdgeId) -> (NodeId, NodeId) {
        let slot = &self.edges[id.index()];
        assert!(
            slot.weight.is_some(),
            "edge_endpoints: {id:?} is not a live edge"
        );
        (slot.src, slot.dst)
    }

    /// Source node of a live edge.
    pub fn edge_source(&self, id: EdgeId) -> NodeId {
        self.edge_endpoints(id).0
    }

    /// Target node of a live edge.
    pub fn edge_target(&self, id: EdgeId) -> NodeId {
        self.edge_endpoints(id).1
    }

    /// Iterator over live node ids, in insertion order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, s)| s.weight.is_some())
            .map(|(i, _)| NodeId::from_index(i))
    }

    /// Iterator over live edge ids, in insertion order.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, s)| s.weight.is_some())
            .map(|(i, _)| EdgeId::from_index(i))
    }

    /// Iterator over `(id, &weight)` for live nodes.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &N)> + '_ {
        self.nodes
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.weight.as_ref().map(|w| (NodeId::from_index(i), w)))
    }

    /// Iterator over `(id, src, dst, &weight)` for live edges.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, NodeId, NodeId, &E)> + '_ {
        self.edges.iter().enumerate().filter_map(|(i, s)| {
            s.weight
                .as_ref()
                .map(|w| (EdgeId::from_index(i), s.src, s.dst, w))
        })
    }

    /// Ids of edges leaving `node`, in insertion order.
    pub fn out_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes[node.index()].out_edges.iter().copied()
    }

    /// Ids of edges entering `node`, in insertion order.
    pub fn in_edges(&self, node: NodeId) -> impl Iterator<Item = EdgeId> + '_ {
        self.nodes[node.index()].in_edges.iter().copied()
    }

    /// Successor nodes of `node` (with multiplicity for parallel edges).
    pub fn successors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(node).map(|e| self.edges[e.index()].dst)
    }

    /// Predecessor nodes of `node` (with multiplicity for parallel edges).
    pub fn predecessors(&self, node: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.in_edges(node).map(|e| self.edges[e.index()].src)
    }

    /// Out-degree of `node`.
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.nodes[node.index()].out_edges.len()
    }

    /// In-degree of `node`.
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.nodes[node.index()].in_edges.len()
    }

    /// Returns the first live edge `src -> dst` if one exists.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<EdgeId> {
        self.out_edges(src)
            .find(|&e| self.edges[e.index()].dst == dst)
    }

    /// Maps node and edge weights into a new graph with identical ids.
    pub fn map<N2, E2>(
        &self,
        mut node_f: impl FnMut(NodeId, &N) -> N2,
        mut edge_f: impl FnMut(EdgeId, &E) -> E2,
    ) -> DiGraph<N2, E2> {
        let nodes = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, s)| NodeSlot {
                weight: s.weight.as_ref().map(|w| node_f(NodeId::from_index(i), w)),
                out_edges: s.out_edges.clone(),
                in_edges: s.in_edges.clone(),
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .enumerate()
            .map(|(i, s)| EdgeSlot {
                weight: s.weight.as_ref().map(|w| edge_f(EdgeId::from_index(i), w)),
                src: s.src,
                dst: s.dst,
            })
            .collect();
        DiGraph {
            nodes,
            edges,
            live_nodes: self.live_nodes,
            live_edges: self.live_edges,
        }
    }
}

impl<N, E> std::ops::Index<NodeId> for DiGraph<N, E> {
    type Output = N;
    fn index(&self, id: NodeId) -> &N {
        self.node_weight(id)
            .expect("indexed with a dead or foreign NodeId")
    }
}

impl<N, E> std::ops::IndexMut<NodeId> for DiGraph<N, E> {
    fn index_mut(&mut self, id: NodeId) -> &mut N {
        self.node_weight_mut(id)
            .expect("indexed with a dead or foreign NodeId")
    }
}

impl<N, E> std::ops::Index<EdgeId> for DiGraph<N, E> {
    type Output = E;
    fn index(&self, id: EdgeId) -> &E {
        self.edge_weight(id)
            .expect("indexed with a dead or foreign EdgeId")
    }
}

impl<N, E> std::ops::IndexMut<EdgeId> for DiGraph<N, E> {
    fn index_mut(&mut self, id: EdgeId) -> &mut E {
        self.edge_weight_mut(id)
            .expect("indexed with a dead or foreign EdgeId")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> (DiGraph<&'static str, u32>, [NodeId; 4]) {
        // a -> b -> d, a -> c -> d
        let mut g = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        let d = g.add_node("d");
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 2);
        g.add_edge(b, d, 3);
        g.add_edge(c, d, 4);
        (g, [a, b, c, d])
    }

    #[test]
    fn counts_and_degrees() {
        let (g, [a, b, _c, d]) = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.out_degree(a), 2);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.out_degree(d), 0);
        assert_eq!(g.in_degree(d), 2);
        assert_eq!(g.out_degree(b), 1);
    }

    #[test]
    fn adjacency_iteration() {
        let (g, [a, b, c, d]) = diamond();
        let succ: Vec<_> = g.successors(a).collect();
        assert_eq!(succ, vec![b, c]);
        let pred: Vec<_> = g.predecessors(d).collect();
        assert_eq!(pred, vec![b, c]);
    }

    #[test]
    fn weights_and_indexing() {
        let (mut g, [a, ..]) = diamond();
        assert_eq!(g[a], "a");
        g[a] = "A";
        assert_eq!(g[a], "A");
        let e = g.find_edge(a, NodeId::from_index(1)).unwrap();
        assert_eq!(g[e], 1);
        g[e] = 10;
        assert_eq!(g[e], 10);
    }

    #[test]
    fn parallel_edges_and_self_loops() {
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let e1 = g.add_edge(a, b, 1);
        let e2 = g.add_edge(a, b, 2);
        let e3 = g.add_edge(a, a, 3);
        assert_ne!(e1, e2);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 3);
        assert_eq!(g.in_degree(a), 1);
        assert_eq!(g.edge_endpoints(e3), (a, a));
    }

    #[test]
    fn remove_edge_updates_adjacency() {
        let (mut g, [a, b, _c, _d]) = diamond();
        let e = g.find_edge(a, b).unwrap();
        assert_eq!(g.remove_edge(e), Some(1));
        assert_eq!(g.remove_edge(e), None);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(b), 0);
        assert!(!g.contains_edge(e));
    }

    #[test]
    fn remove_node_removes_incident_edges() {
        let (mut g, [a, b, c, d]) = diamond();
        assert_eq!(g.remove_node(b), Some("b"));
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(!g.contains_node(b));
        // a -> c -> d survives
        assert!(g.find_edge(a, c).is_some());
        assert!(g.find_edge(c, d).is_some());
        assert!(g.find_edge(a, b).is_none());
        // ids of survivors are unchanged
        assert_eq!(g[a], "a");
        assert_eq!(g[d], "d");
    }

    #[test]
    fn node_ids_skip_tombstones() {
        let (mut g, [_a, b, ..]) = diamond();
        g.remove_node(b);
        let ids: Vec<usize> = g.node_ids().map(|n| n.index()).collect();
        assert_eq!(ids, vec![0, 2, 3]);
        assert_eq!(g.node_bound(), 4);
    }

    #[test]
    fn map_preserves_structure() {
        let (g, [a, _b, _c, d]) = diamond();
        let g2 = g.map(|_, &w| w.to_uppercase(), |_, &w| w * 10);
        assert_eq!(g2[a], "A");
        let e = g2.find_edge(a, NodeId::from_index(1)).unwrap();
        assert_eq!(g2[e], 10);
        assert_eq!(g2.node_count(), 4);
        assert_eq!(g2.in_degree(d), 2);
    }

    #[test]
    #[should_panic(expected = "not a live node")]
    fn add_edge_to_dead_node_panics() {
        let (mut g, [a, b, ..]) = diamond();
        g.remove_node(b);
        g.add_edge(a, b, 99);
    }

    #[test]
    fn edges_iterator_reports_endpoints() {
        let (g, [a, b, ..]) = diamond();
        let first = g.edges().next().unwrap();
        assert_eq!((first.1, first.2, *first.3), (a, b, 1));
        assert_eq!(g.edges().count(), 4);
    }
}

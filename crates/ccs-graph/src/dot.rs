//! Graphviz DOT export.

use crate::{DiGraph, EdgeId, NodeId};
use std::fmt::Write as _;

/// Renders `g` as a Graphviz `digraph`, using the supplied closures to
/// label nodes and edges.
///
/// ```
/// use ccs_graph::{DiGraph, dot::to_dot};
/// let mut g: DiGraph<&str, u32> = DiGraph::new();
/// let a = g.add_node("a");
/// let b = g.add_node("b");
/// g.add_edge(a, b, 7);
/// let dot = to_dot(&g, "demo", |_, w| w.to_string(), |_, w| w.to_string());
/// assert!(dot.contains("digraph demo"));
/// assert!(dot.contains("n0 -> n1"));
/// ```
pub fn to_dot<N, E>(
    g: &DiGraph<N, E>,
    name: &str,
    mut node_label: impl FnMut(NodeId, &N) -> String,
    mut edge_label: impl FnMut(EdgeId, &E) -> String,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {} {{", sanitize(name));
    let _ = writeln!(out, "  rankdir=TB;");
    for (id, w) in g.nodes() {
        let _ = writeln!(out, "  {} [label=\"{}\"];", id, escape(&node_label(id, w)));
    }
    for (id, src, dst, w) in g.edges() {
        let _ = writeln!(
            out,
            "  {} -> {} [label=\"{}\"];",
            src,
            dst,
            escape(&edge_label(id, w))
        );
    }
    out.push_str("}\n");
    out
}

fn sanitize(name: &str) -> String {
    let cleaned: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    if cleaned.is_empty() || cleaned.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        format!("g_{cleaned}")
    } else {
        cleaned
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nodes_and_edges() {
        let mut g: DiGraph<&str, u32> = DiGraph::new();
        let a = g.add_node("alpha");
        let b = g.add_node("beta");
        g.add_edge(a, b, 3);
        let dot = to_dot(&g, "t", |_, w| w.to_string(), |_, w| format!("w={w}"));
        assert!(dot.contains("n0 [label=\"alpha\"]"));
        assert!(dot.contains("n1 [label=\"beta\"]"));
        assert!(dot.contains("n0 -> n1 [label=\"w=3\"]"));
    }

    #[test]
    fn escapes_quotes() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        g.add_node("say \"hi\"");
        let dot = to_dot(&g, "q", |_, w| w.to_string(), |_, _| String::new());
        assert!(dot.contains("say \\\"hi\\\""));
    }

    #[test]
    fn sanitizes_graph_name() {
        let g: DiGraph<(), ()> = DiGraph::new();
        let dot = to_dot(&g, "2-d mesh", |_, _| String::new(), |_, _| String::new());
        assert!(dot.starts_with("digraph g_2_d_mesh {"));
    }

    #[test]
    fn skips_tombstoned_elements() {
        let mut g: DiGraph<&str, ()> = DiGraph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge(a, b, ());
        g.remove_node(b);
        let dot = to_dot(&g, "t", |_, w| w.to_string(), |_, _| String::new());
        assert!(dot.contains("n0"));
        assert!(!dot.contains("n1 ["));
        assert!(!dot.contains("->"));
    }
}

//! Weighted path computations: DAG longest paths and Bellman-Ford.

use crate::algo::topo::{topo_sort_filtered, CycleError};
use crate::{DiGraph, EdgeId, NodeId};

/// Error returned when a relaxation detects a negative cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NegativeCycle;

impl std::fmt::Display for NegativeCycle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "graph contains a reachable negative cycle")
    }
}

impl std::error::Error for NegativeCycle {}

/// Longest-path distances on a DAG (or a DAG view selected by
/// `edge_keep`), measured as the *sum of edge weights* supplied by
/// `edge_len` along the best path ending at each node.
///
/// Every node starts at `source_value(node)`; nodes unreachable from a
/// higher-valued source keep their own start value.  This is the shape
/// needed by ASAP/ALAP computations where node execution times enter
/// through `edge_len`/`source_value`.
///
/// Returns `Err` if the (filtered) graph is cyclic.
pub fn dag_longest_paths<N, E>(
    g: &DiGraph<N, E>,
    mut edge_keep: impl FnMut(EdgeId) -> bool,
    mut edge_len: impl FnMut(EdgeId) -> i64,
    mut source_value: impl FnMut(NodeId) -> i64,
) -> Result<Vec<i64>, CycleError> {
    let order = topo_sort_filtered(g, &mut edge_keep)?;
    let mut dist = vec![i64::MIN; g.node_bound()];
    for n in g.node_ids() {
        dist[n.index()] = source_value(n);
    }
    for &u in &order {
        let du = dist[u.index()];
        for e in g.out_edges(u) {
            if !edge_keep(e) {
                continue;
            }
            let v = g.edge_target(e);
            let cand = du + edge_len(e);
            if cand > dist[v.index()] {
                dist[v.index()] = cand;
            }
        }
    }
    Ok(dist)
}

/// Single-source shortest paths with real-valued (possibly negative) edge
/// lengths via Bellman-Ford.
///
/// `None` entries mean "unreachable".  Returns [`NegativeCycle`] if one
/// is reachable from `src` — the detection used by retiming
/// feasibility checks.
pub fn bellman_ford<N, E>(
    g: &DiGraph<N, E>,
    src: NodeId,
    mut edge_len: impl FnMut(EdgeId) -> f64,
) -> Result<Vec<Option<f64>>, NegativeCycle> {
    let mut dist: Vec<Option<f64>> = vec![None; g.node_bound()];
    dist[src.index()] = Some(0.0);
    let n = g.node_count();
    for round in 0..n {
        let mut changed = false;
        for (e, u, v, _) in g.edges() {
            if let Some(du) = dist[u.index()] {
                let cand = du + edge_len(e);
                if dist[v.index()].is_none_or(|dv| cand < dv - 1e-12) {
                    dist[v.index()] = Some(cand);
                    changed = true;
                }
            }
        }
        if !changed {
            return Ok(dist);
        }
        if round == n - 1 {
            return Err(NegativeCycle); // still relaxing after n-1 rounds
        }
    }
    Ok(dist)
}

/// All-pairs variant of [`bellman_ford`] from a virtual super-source
/// connected to every node with zero-length edges: computes a feasible
/// potential for the constraint system `pot[v] <= pot[u] + len(u->v)`.
///
/// Returns [`NegativeCycle`] on a negative cycle.  This is exactly the
/// system solved when testing whether a clock period is achievable by
/// retiming.
pub fn feasible_potentials<N, E>(
    g: &DiGraph<N, E>,
    mut edge_len: impl FnMut(EdgeId) -> f64,
) -> Result<Vec<f64>, NegativeCycle> {
    let mut dist = vec![0.0f64; g.node_bound()];
    let n = g.node_count();
    if n == 0 {
        return Ok(dist);
    }
    for round in 0..n {
        let mut changed = false;
        for (e, u, v, _) in g.edges() {
            let cand = dist[u.index()] + edge_len(e);
            if cand < dist[v.index()] - 1e-12 {
                dist[v.index()] = cand;
                changed = true;
            }
        }
        if !changed {
            return Ok(dist);
        }
        if round == n - 1 {
            return Err(NegativeCycle);
        }
    }
    Ok(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn longest_path_on_diamond() {
        let mut g: DiGraph<(), i64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(a, c, 5);
        g.add_edge(b, d, 1);
        g.add_edge(c, d, 1);
        let dist = dag_longest_paths(&g, |_| true, |e| g[e], |_| 0).unwrap();
        assert_eq!(dist[d.index()], 6);
        assert_eq!(dist[b.index()], 1);
        assert_eq!(dist[c.index()], 5);
    }

    #[test]
    fn longest_path_rejects_cycles() {
        let mut g: DiGraph<(), i64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1);
        g.add_edge(b, a, 1);
        assert!(dag_longest_paths(&g, |_| true, |e| g[e], |_| 0).is_err());
    }

    #[test]
    fn longest_path_respects_filter_and_sources() {
        let mut g: DiGraph<(), i64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let back = g.add_edge(b, a, 100);
        g.add_edge(a, b, 2);
        let dist = dag_longest_paths(&g, |e| e != back, |e| g[e], |n| if n == a { 10 } else { 0 })
            .unwrap();
        assert_eq!(dist[a.index()], 10);
        assert_eq!(dist[b.index()], 12);
    }

    #[test]
    fn bellman_ford_negative_edges() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, 4.0);
        g.add_edge(a, c, 10.0);
        g.add_edge(b, c, -7.0);
        let dist = bellman_ford(&g, a, |e| g[e]).unwrap();
        assert_eq!(dist[c.index()], Some(-3.0));
        assert_eq!(dist[b.index()], Some(4.0));
    }

    #[test]
    fn bellman_ford_detects_negative_cycle() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 1.0);
        g.add_edge(b, a, -2.0);
        assert!(bellman_ford(&g, a, |e| g[e]).is_err());
    }

    #[test]
    fn bellman_ford_unreachable_is_none() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let _ = b;
        let dist = bellman_ford(&g, a, |e| g[e]).unwrap();
        assert_eq!(dist[b.index()], None);
    }

    #[test]
    fn potentials_satisfy_all_constraints() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], 3.0);
        g.add_edge(n[1], n[2], -1.0);
        g.add_edge(n[2], n[3], 2.0);
        g.add_edge(n[3], n[1], 0.5);
        let pot = feasible_potentials(&g, |e| g[e]).unwrap();
        for (e, u, v, _) in g.edges() {
            assert!(
                pot[v.index()] <= pot[u.index()] + g[e] + 1e-9,
                "constraint violated on {e:?}"
            );
        }
    }

    #[test]
    fn potentials_reject_negative_cycle() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0.4);
        g.add_edge(b, a, -0.5);
        assert!(feasible_potentials(&g, |e| g[e]).is_err());
    }
}

//! Topological ordering (Kahn's algorithm) with optional edge filtering.

use crate::{DiGraph, EdgeId, NodeId};
use std::collections::VecDeque;

/// Error returned when a topological sort hits a directed cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CycleError {
    /// Some node that participates in (or is downstream of) a cycle.
    pub witness: NodeId,
}

impl std::fmt::Display for CycleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "graph contains a directed cycle (witness node {})",
            self.witness
        )
    }
}

impl std::error::Error for CycleError {}

/// Topological order of all live nodes, or [`CycleError`] if the graph is
/// cyclic.  Ties are broken by node id, making the order deterministic.
pub fn topo_sort<N, E>(g: &DiGraph<N, E>) -> Result<Vec<NodeId>, CycleError> {
    topo_sort_filtered(g, |_| true)
}

/// Topological order of the subgraph induced by edges for which
/// `edge_keep` returns `true`.
///
/// This is the workhorse behind the "zero-delay DAG view" of a cyclic
/// data-flow graph: keep only edges with `d(e) == 0` and sort.
pub fn topo_sort_filtered<N, E>(
    g: &DiGraph<N, E>,
    mut edge_keep: impl FnMut(EdgeId) -> bool,
) -> Result<Vec<NodeId>, CycleError> {
    let mut in_deg = vec![0usize; g.node_bound()];
    let mut kept_out: Vec<Vec<NodeId>> = vec![Vec::new(); g.node_bound()];
    for (e, src, dst, _) in g.edges() {
        if edge_keep(e) {
            in_deg[dst.index()] += 1;
            kept_out[src.index()].push(dst);
        }
    }
    // Deterministic: seed queue in id order.
    let mut queue: VecDeque<NodeId> = g.node_ids().filter(|n| in_deg[n.index()] == 0).collect();
    let mut order = Vec::with_capacity(g.node_count());
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for &s in &kept_out[n.index()] {
            in_deg[s.index()] -= 1;
            if in_deg[s.index()] == 0 {
                queue.push_back(s);
            }
        }
    }
    if order.len() == g.node_count() {
        Ok(order)
    } else {
        let witness = g
            .node_ids()
            .find(|n| in_deg[n.index()] > 0)
            .expect("cycle implies a node with positive residual in-degree");
        Err(CycleError { witness })
    }
}

/// Returns `true` if the graph (restricted to `edge_keep`) is acyclic.
pub fn is_acyclic_filtered<N, E>(g: &DiGraph<N, E>, edge_keep: impl FnMut(EdgeId) -> bool) -> bool {
    topo_sort_filtered(g, edge_keep).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_a_dag() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, c, ());
        g.add_edge(b, c, ());
        let order = topo_sort(&g).unwrap();
        assert_eq!(order.len(), 3);
        let pos = |x| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(a) < pos(c));
        assert!(pos(b) < pos(c));
    }

    #[test]
    fn detects_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        assert!(topo_sort(&g).is_err());
        assert!(!is_acyclic_filtered(&g, |_| true));
    }

    #[test]
    fn self_loop_is_a_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        let err = topo_sort(&g).unwrap_err();
        assert_eq!(err.witness, a);
    }

    #[test]
    fn filtering_breaks_cycles() {
        // a -> b (keep), b -> a (drop): acyclic when filtered.
        let mut g: DiGraph<(), u32> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0);
        g.add_edge(b, a, 1);
        let order = topo_sort_filtered(&g, |e| g[e] == 0).unwrap();
        assert_eq!(order, vec![a, b]);
        assert!(topo_sort(&g).is_err());
    }

    #[test]
    fn deterministic_tie_break_by_id() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        // no edges: order must be id order
        assert_eq!(topo_sort(&g).unwrap(), n);
    }

    #[test]
    fn tombstones_are_skipped() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, c, ());
        g.remove_node(b);
        let order = topo_sort(&g).unwrap();
        assert_eq!(order, vec![a, c]);
    }

    #[test]
    fn cycle_error_displays() {
        let err = CycleError {
            witness: NodeId::from_index(3),
        };
        assert!(err.to_string().contains("n3"));
    }
}

//! Breadth-first and depth-first traversal.

use crate::{DiGraph, NodeId};
use std::collections::VecDeque;

/// Visit order of [`dfs_post_order`].
///
/// Nodes are emitted when all their descendants have been visited.
pub fn dfs_post_order<N, E>(g: &DiGraph<N, E>, roots: &[NodeId]) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_bound()];
    let mut order = Vec::with_capacity(g.node_count());
    // Iterative DFS with an explicit stack of (node, next-successor-cursor).
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for &root in roots {
        if visited[root.index()] {
            continue;
        }
        visited[root.index()] = true;
        stack.push((root, 0));
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let succ: Option<NodeId> = g.successors(node).nth(*cursor);
            *cursor += 1;
            match succ {
                Some(next) if !visited[next.index()] => {
                    visited[next.index()] = true;
                    stack.push((next, 0));
                }
                Some(_) => {}
                None => {
                    order.push(node);
                    stack.pop();
                }
            }
        }
    }
    order
}

/// Nodes reachable from `roots` (inclusive), in BFS order.
pub fn bfs_reachable<N, E>(g: &DiGraph<N, E>, roots: &[NodeId]) -> Vec<NodeId> {
    let mut visited = vec![false; g.node_bound()];
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    let mut order = Vec::new();
    for &r in roots {
        if !visited[r.index()] {
            visited[r.index()] = true;
            queue.push_back(r);
        }
    }
    while let Some(n) = queue.pop_front() {
        order.push(n);
        for s in g.successors(n) {
            if !visited[s.index()] {
                visited[s.index()] = true;
                queue.push_back(s);
            }
        }
    }
    order
}

/// Unweighted shortest-hop distances from `root` to every node.
///
/// Unreachable nodes get `None`.
pub fn bfs_distances<N, E>(g: &DiGraph<N, E>, root: NodeId) -> Vec<Option<usize>> {
    let mut dist: Vec<Option<usize>> = vec![None; g.node_bound()];
    let mut queue = VecDeque::new();
    dist[root.index()] = Some(0);
    queue.push_back(root);
    while let Some(n) = queue.pop_front() {
        let d = dist[n.index()].expect("queued node must have a distance");
        for s in g.successors(n) {
            if dist[s.index()].is_none() {
                dist[s.index()] = Some(d + 1);
                queue.push_back(s);
            }
        }
    }
    dist
}

/// Returns `true` if `dst` is reachable from `src` by directed edges.
pub fn is_reachable<N, E>(g: &DiGraph<N, E>, src: NodeId, dst: NodeId) -> bool {
    bfs_distances(g, src)[dst.index()].is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_with_branch() -> (DiGraph<(), ()>, Vec<NodeId>) {
        // 0 -> 1 -> 2, 0 -> 3, 4 isolated
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[0], n[3], ());
        (g, n)
    }

    #[test]
    fn post_order_emits_descendants_first() {
        let (g, n) = chain_with_branch();
        let order = dfs_post_order(&g, &[n[0]]);
        let pos = |x: NodeId| order.iter().position(|&y| y == x).unwrap();
        assert!(pos(n[2]) < pos(n[1]));
        assert!(pos(n[1]) < pos(n[0]));
        assert!(pos(n[3]) < pos(n[0]));
        assert_eq!(order.len(), 4); // isolated node not reached
    }

    #[test]
    fn post_order_handles_cycles() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        let order = dfs_post_order(&g, &[a]);
        assert_eq!(order.len(), 2);
    }

    #[test]
    fn bfs_reachable_covers_component() {
        let (g, n) = chain_with_branch();
        let r = bfs_reachable(&g, &[n[0]]);
        assert_eq!(r.len(), 4);
        assert_eq!(r[0], n[0]);
        assert!(!r.contains(&n[4]));
    }

    #[test]
    fn bfs_distances_count_hops() {
        let (g, n) = chain_with_branch();
        let d = bfs_distances(&g, n[0]);
        assert_eq!(d[n[0].index()], Some(0));
        assert_eq!(d[n[1].index()], Some(1));
        assert_eq!(d[n[2].index()], Some(2));
        assert_eq!(d[n[3].index()], Some(1));
        assert_eq!(d[n[4].index()], None);
    }

    #[test]
    fn reachability() {
        let (g, n) = chain_with_branch();
        assert!(is_reachable(&g, n[0], n[2]));
        assert!(!is_reachable(&g, n[2], n[0]));
        assert!(!is_reachable(&g, n[0], n[4]));
        assert!(is_reachable(&g, n[4], n[4]));
    }

    #[test]
    fn multiple_roots_deduplicate() {
        let (g, n) = chain_with_branch();
        let order = dfs_post_order(&g, &[n[0], n[1], n[4]]);
        assert_eq!(order.len(), 5);
    }
}

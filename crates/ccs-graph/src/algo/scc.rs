//! Strongly connected components (Tarjan, iterative).

use crate::{DiGraph, NodeId};

/// Computes the strongly connected components of `g`.
///
/// Components are returned in reverse topological order of the condensed
/// graph (a property of Tarjan's algorithm): if component `X` appears
/// before component `Y`, there is no edge from a node of `X` to a node of
/// `Y` unless `X == Y`.  Singleton nodes without self-loops form trivial
/// components.
pub fn tarjan_scc<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    const UNVISITED: usize = usize::MAX;

    struct Frame {
        node: NodeId,
        succ_cursor: usize,
    }

    let bound = g.node_bound();
    let mut index = vec![UNVISITED; bound];
    let mut low = vec![0usize; bound];
    let mut on_stack = vec![false; bound];
    let mut stack: Vec<NodeId> = Vec::new();
    let mut next_index = 0usize;
    let mut comps: Vec<Vec<NodeId>> = Vec::new();
    let mut call: Vec<Frame> = Vec::new();

    for root in g.node_ids() {
        if index[root.index()] != UNVISITED {
            continue;
        }
        call.push(Frame {
            node: root,
            succ_cursor: 0,
        });
        index[root.index()] = next_index;
        low[root.index()] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root.index()] = true;

        while let Some(frame) = call.last_mut() {
            let v = frame.node;
            let succ = g.successors(v).nth(frame.succ_cursor);
            frame.succ_cursor += 1;
            match succ {
                Some(w) => {
                    if index[w.index()] == UNVISITED {
                        index[w.index()] = next_index;
                        low[w.index()] = next_index;
                        next_index += 1;
                        stack.push(w);
                        on_stack[w.index()] = true;
                        call.push(Frame {
                            node: w,
                            succ_cursor: 0,
                        });
                    } else if on_stack[w.index()] {
                        low[v.index()] = low[v.index()].min(index[w.index()]);
                    }
                }
                None => {
                    call.pop();
                    if let Some(parent) = call.last() {
                        let p = parent.node;
                        low[p.index()] = low[p.index()].min(low[v.index()]);
                    }
                    if low[v.index()] == index[v.index()] {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("SCC stack underflow");
                            on_stack[w.index()] = false;
                            comp.push(w);
                            if w == v {
                                break;
                            }
                        }
                        comps.push(comp);
                    }
                }
            }
        }
    }
    comps
}

/// Returns `true` if the whole live node set forms one strongly connected
/// component (and the graph is non-empty).
pub fn is_strongly_connected<N, E>(g: &DiGraph<N, E>) -> bool {
    if g.node_count() == 0 {
        return false;
    }
    let sccs = tarjan_scc(g);
    sccs.len() == 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_cycles_and_a_bridge() {
        // (a <-> b) -> (c <-> d), e isolated
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        let d = g.add_node(());
        let e = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(b, a, ());
        g.add_edge(b, c, ());
        g.add_edge(c, d, ());
        g.add_edge(d, c, ());
        let mut comps: Vec<Vec<usize>> = tarjan_scc(&g)
            .into_iter()
            .map(|mut c| {
                c.sort();
                c.into_iter().map(|n| n.index()).collect()
            })
            .collect();
        comps.sort();
        assert_eq!(comps, vec![vec![0, 1], vec![2, 3], vec![e.index()]]);
    }

    #[test]
    fn reverse_topological_order_of_condensation() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        let comps = tarjan_scc(&g);
        // Sink component {b} must come first.
        assert_eq!(comps[0], vec![b]);
        assert_eq!(comps[1], vec![a]);
    }

    #[test]
    fn full_cycle_is_one_component() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        for i in 0..6 {
            g.add_edge(n[i], n[(i + 1) % 6], ());
        }
        assert!(is_strongly_connected(&g));
        assert_eq!(tarjan_scc(&g).len(), 1);
    }

    #[test]
    fn dag_gives_singletons() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        let c = g.add_node(());
        g.add_edge(a, b, ());
        g.add_edge(a, c, ());
        assert_eq!(tarjan_scc(&g).len(), 3);
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn empty_graph() {
        let g: DiGraph<(), ()> = DiGraph::new();
        assert!(tarjan_scc(&g).is_empty());
        assert!(!is_strongly_connected(&g));
    }

    #[test]
    fn self_loop_singleton() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(tarjan_scc(&g), vec![vec![a]]);
        assert!(is_strongly_connected(&g));
    }
}

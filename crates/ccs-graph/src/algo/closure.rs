//! Reachability: transitive closure and weakly connected components.

use crate::{DiGraph, NodeId};

/// A dense reachability matrix built with bitset rows.
///
/// `reaches(u, v)` answers "is there a directed path from `u` to `v`
/// (including the empty path when `u == v`)" in `O(1)` after an
/// `O(V * E / 64)` construction.
#[derive(Clone, Debug)]
pub struct TransitiveClosure {
    n: usize,
    words: usize,
    bits: Vec<u64>,
}

impl TransitiveClosure {
    /// Builds the closure of `g`.
    pub fn new<N, E>(g: &DiGraph<N, E>) -> Self {
        let n = g.node_bound();
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        // Process in reverse topological order when possible; for cyclic
        // graphs, iterate to a fixpoint (bounded by n rounds, usually 2).
        for v in g.node_ids() {
            bits[v.index() * words + v.index() / 64] |= 1 << (v.index() % 64);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for u in g.node_ids() {
                for s in g.successors(u).collect::<Vec<_>>() {
                    // row(u) |= row(s)
                    let (ui, si) = (u.index() * words, s.index() * words);
                    for w in 0..words {
                        let merged = bits[ui + w] | bits[si + w];
                        if merged != bits[ui + w] {
                            bits[ui + w] = merged;
                            changed = true;
                        }
                    }
                }
            }
        }
        TransitiveClosure { n, words, bits }
    }

    /// `true` if `v` is reachable from `u` (reflexive).
    pub fn reaches(&self, u: NodeId, v: NodeId) -> bool {
        assert!(
            u.index() < self.n && v.index() < self.n,
            "node out of range"
        );
        self.bits[u.index() * self.words + v.index() / 64] >> (v.index() % 64) & 1 == 1
    }

    /// Number of nodes reachable from `u` (including itself).
    pub fn reach_count(&self, u: NodeId) -> usize {
        let row = &self.bits[u.index() * self.words..(u.index() + 1) * self.words];
        row.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Weakly connected components (edge direction ignored): one sorted
/// `Vec<NodeId>` per component, components ordered by smallest member.
pub fn weak_components<N, E>(g: &DiGraph<N, E>) -> Vec<Vec<NodeId>> {
    let bound = g.node_bound();
    let mut parent: Vec<usize> = (0..bound).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut root = x;
        while parent[root] != root {
            root = parent[root];
        }
        let mut cur = x;
        while parent[cur] != root {
            let next = parent[cur];
            parent[cur] = root;
            cur = next;
        }
        root
    }
    for (_, u, v, _) in g.edges() {
        let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
        if ru != rv {
            parent[ru.max(rv)] = ru.min(rv);
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<NodeId>> = Default::default();
    for v in g.node_ids() {
        let root = find(&mut parent, v.index());
        groups.entry(root).or_default().push(v);
    }
    groups.into_values().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (DiGraph<(), ()>, Vec<NodeId>) {
        // 0 -> 1 -> 2 (cycle back 2 -> 0), 3 -> 4, 5 isolated
        let mut g = DiGraph::new();
        let n: Vec<_> = (0..6).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[0], ());
        g.add_edge(n[3], n[4], ());
        (g, n)
    }

    #[test]
    fn closure_on_cycle() {
        let (g, n) = sample();
        let tc = TransitiveClosure::new(&g);
        for i in 0..3 {
            for j in 0..3 {
                assert!(tc.reaches(n[i], n[j]), "{i}->{j}");
            }
        }
        assert!(tc.reaches(n[3], n[4]));
        assert!(!tc.reaches(n[4], n[3]));
        assert!(!tc.reaches(n[0], n[3]));
        assert!(tc.reaches(n[5], n[5]));
        assert_eq!(tc.reach_count(n[0]), 3);
        assert_eq!(tc.reach_count(n[5]), 1);
    }

    #[test]
    fn closure_matches_bfs_on_random_shape() {
        use crate::algo::traversal::is_reachable;
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..10).map(|_| g.add_node(())).collect();
        let edges = [
            (0, 3),
            (3, 7),
            (7, 2),
            (2, 3),
            (1, 4),
            (4, 9),
            (9, 1),
            (5, 6),
        ];
        for (a, b) in edges {
            g.add_edge(n[a], n[b], ());
        }
        let tc = TransitiveClosure::new(&g);
        for &a in &n {
            for &b in &n {
                assert_eq!(tc.reaches(a, b), is_reachable(&g, a, b), "{a}->{b}");
            }
        }
    }

    #[test]
    fn weak_components_ignore_direction() {
        let (g, n) = sample();
        let comps = weak_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[0], vec![n[0], n[1], n[2]]);
        assert_eq!(comps[1], vec![n[3], n[4]]);
        assert_eq!(comps[2], vec![n[5]]);
    }

    #[test]
    fn weak_components_skip_tombstones() {
        let (mut g, n) = sample();
        g.remove_node(n[4]);
        let comps = weak_components(&g);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps[1], vec![n[3]]);
    }

    #[test]
    fn closure_over_64_nodes_crosses_word_boundaries() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..70).map(|_| g.add_node(())).collect();
        for i in 0..69 {
            g.add_edge(n[i], n[i + 1], ());
        }
        let tc = TransitiveClosure::new(&g);
        assert!(tc.reaches(n[0], n[69]));
        assert!(!tc.reaches(n[69], n[0]));
        assert_eq!(tc.reach_count(n[0]), 70);
    }
}

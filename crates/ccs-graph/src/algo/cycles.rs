//! Enumeration of elementary cycles (Johnson's algorithm).
//!
//! Used by the retiming substrate to cross-check cycle invariants
//! (total delay around any cycle is retiming-invariant) and by tests of
//! the iteration bound.  Exponential in the worst case — intended for
//! the small/medium graphs of this domain, and capped by `max_cycles`.

use crate::algo::scc::tarjan_scc;
use crate::{DiGraph, NodeId};

/// Enumerates elementary cycles of `g` as node sequences
/// (`[a, b, c]` means the cycle `a -> b -> c -> a`).
///
/// Stops early once `max_cycles` cycles were collected. Self-loops are
/// reported as single-node cycles.  Parallel edges between the same node
/// pair yield a single reported cycle per node sequence.
pub fn elementary_cycles<N, E>(g: &DiGraph<N, E>, max_cycles: usize) -> Vec<Vec<NodeId>> {
    let mut cycles = Vec::new();
    // Work SCC by SCC; cycles never cross SCC boundaries.
    for scc in tarjan_scc(g) {
        if cycles.len() >= max_cycles {
            break;
        }
        if scc.len() == 1 {
            let v = scc[0];
            if g.successors(v).any(|s| s == v) {
                cycles.push(vec![v]);
            }
            continue;
        }
        let mut in_scc = vec![false; g.node_bound()];
        for &v in &scc {
            in_scc[v.index()] = true;
        }
        // Johnson-style DFS from the smallest node of the SCC, restricted
        // to nodes >= start to avoid duplicates, repeated per start node.
        let mut members = scc.clone();
        members.sort();
        for &start in &members {
            if cycles.len() >= max_cycles {
                break;
            }
            dfs_cycles(g, start, &in_scc, max_cycles, &mut cycles);
        }
    }
    cycles
}

fn dfs_cycles<N, E>(
    g: &DiGraph<N, E>,
    start: NodeId,
    in_scc: &[bool],
    max_cycles: usize,
    cycles: &mut Vec<Vec<NodeId>>,
) {
    let mut path: Vec<NodeId> = vec![start];
    let mut on_path = vec![false; g.node_bound()];
    on_path[start.index()] = true;
    // (node, successor cursor)
    let mut stack: Vec<(NodeId, usize)> = vec![(start, 0)];

    while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
        let mut advanced = false;
        // Deduplicate successors lazily via cursor walk.
        while let Some(next) = g.successors(node).nth(*cursor) {
            *cursor += 1;
            if !in_scc[next.index()] || next < start {
                continue; // outside SCC or handled by a smaller start node
            }
            if next == start {
                if path.len() > 1 || node == start {
                    // A cycle back to the root; record unless it's a
                    // duplicate of an immediately preceding parallel edge.
                    if cycles.last().map(|c| c != &path).unwrap_or(true) {
                        cycles.push(path.clone());
                    }
                    if cycles.len() >= max_cycles {
                        return;
                    }
                }
                continue;
            }
            if on_path[next.index()] {
                continue;
            }
            on_path[next.index()] = true;
            path.push(next);
            stack.push((next, 0));
            advanced = true;
            break;
        }
        if !advanced {
            stack.pop();
            let done = path.pop().expect("path tracks stack");
            on_path[done.index()] = false;
        }
    }
}

/// Returns `true` if `g` has at least one directed cycle.
pub fn has_cycle<N, E>(g: &DiGraph<N, E>) -> bool {
    crate::algo::topo::topo_sort(g).is_err()
}

/// Finds one directed cycle in the sub-graph selected by `edge_keep`,
/// as a node sequence (`[a, b, c]` means `a -> b -> c -> a`), or
/// `None` if the filtered graph is acyclic.
///
/// Deterministic: the DFS roots nodes in id order and scans successors
/// in edge-insertion order, so the same graph always yields the same
/// cycle.  Used by the bound engine to extract the *witness* cycle
/// behind a max-cycle-ratio certificate.
pub fn find_cycle_filtered<N, E>(
    g: &DiGraph<N, E>,
    mut edge_keep: impl FnMut(crate::EdgeId) -> bool,
) -> Option<Vec<NodeId>> {
    // 0 = white, 1 = on the current DFS path, 2 = done.
    let mut color = vec![0u8; g.node_bound()];
    let mut path: Vec<NodeId> = Vec::new();
    // (node, out-edge cursor)
    let mut stack: Vec<(NodeId, usize)> = Vec::new();
    for root in g.node_ids() {
        if color[root.index()] != 0 {
            continue;
        }
        color[root.index()] = 1;
        path.push(root);
        stack.push((root, 0));
        while let Some(&mut (node, ref mut cursor)) = stack.last_mut() {
            let mut advanced = false;
            while let Some(e) = g.out_edges(node).nth(*cursor) {
                *cursor += 1;
                if !edge_keep(e) {
                    continue;
                }
                let next = g.edge_target(e);
                match color[next.index()] {
                    1 => {
                        // Back edge: the cycle is the path suffix from
                        // `next` (inclusive) to `node`.
                        let start = path
                            .iter()
                            .position(|&p| p == next)
                            .expect("on-path node is in path");
                        return Some(path[start..].to_vec());
                    }
                    0 => {
                        color[next.index()] = 1;
                        path.push(next);
                        stack.push((next, 0));
                        advanced = true;
                        break;
                    }
                    _ => {}
                }
            }
            if !advanced {
                stack.pop();
                let done = path.pop().expect("path tracks stack");
                color[done.index()] = 2;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn norm(mut cycles: Vec<Vec<NodeId>>) -> Vec<Vec<usize>> {
        // Rotate each cycle so it starts at its minimum node, then sort.
        let mut out: Vec<Vec<usize>> = cycles
            .drain(..)
            .map(|c| {
                let ixs: Vec<usize> = c.iter().map(|n| n.index()).collect();
                let min_pos = ixs
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, v)| **v)
                    .map(|(i, _)| i)
                    .unwrap();
                let mut rot = ixs.clone();
                rot.rotate_left(min_pos);
                rot
            })
            .collect();
        out.sort();
        out
    }

    #[test]
    fn triangle_has_one_cycle() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[0], ());
        assert_eq!(norm(elementary_cycles(&g, 100)), vec![vec![0, 1, 2]]);
    }

    #[test]
    fn two_overlapping_cycles() {
        // 0 -> 1 -> 0 and 0 -> 1 -> 2 -> 0
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[0], ());
        assert_eq!(
            norm(elementary_cycles(&g, 100)),
            vec![vec![0, 1], vec![0, 1, 2]]
        );
    }

    #[test]
    fn self_loop_reported() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        g.add_edge(a, a, ());
        assert_eq!(norm(elementary_cycles(&g, 100)), vec![vec![0]]);
    }

    #[test]
    fn dag_has_no_cycles() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        assert!(elementary_cycles(&g, 100).is_empty());
        assert!(!has_cycle(&g));
    }

    #[test]
    fn max_cycles_caps_enumeration() {
        // Complete digraph on 5 nodes has many elementary cycles.
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..5).map(|_| g.add_node(())).collect();
        for i in 0..5 {
            for j in 0..5 {
                if i != j {
                    g.add_edge(n[i], n[j], ());
                }
            }
        }
        let cycles = elementary_cycles(&g, 7);
        assert_eq!(cycles.len(), 7);
    }

    #[test]
    fn find_cycle_filtered_respects_filter() {
        // 0 -> 1 -> 0 (edge ids 0,1) and 1 -> 2 -> 1 (edge ids 2,3).
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..3).map(|_| g.add_node(())).collect();
        let e01 = g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[1], ());
        let all = find_cycle_filtered(&g, |_| true).unwrap();
        assert_eq!(norm(vec![all]), vec![vec![0, 1]]);
        // Excluding 0 -> 1 leaves only the 1 <-> 2 cycle.
        let without = find_cycle_filtered(&g, |e| e != e01).unwrap();
        assert_eq!(norm(vec![without]), vec![vec![1, 2]]);
        // Keeping nothing: acyclic.
        assert!(find_cycle_filtered(&g, |_| false).is_none());
    }

    #[test]
    fn find_cycle_filtered_self_loop_and_dag() {
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, ());
        assert!(find_cycle_filtered(&g, |_| true).is_none());
        g.add_edge(b, b, ());
        assert_eq!(find_cycle_filtered(&g, |_| true), Some(vec![b]));
    }

    #[test]
    fn cycles_do_not_cross_scc_boundaries() {
        // (0 <-> 1) -> (2 <-> 3)
        let mut g: DiGraph<(), ()> = DiGraph::new();
        let n: Vec<_> = (0..4).map(|_| g.add_node(())).collect();
        g.add_edge(n[0], n[1], ());
        g.add_edge(n[1], n[0], ());
        g.add_edge(n[1], n[2], ());
        g.add_edge(n[2], n[3], ());
        g.add_edge(n[3], n[2], ());
        assert_eq!(
            norm(elementary_cycles(&g, 100)),
            vec![vec![0, 1], vec![2, 3]]
        );
        assert!(has_cycle(&g));
    }
}

//! # ccs-graph
//!
//! A small, dependency-free directed multigraph library: the graph
//! substrate underneath the `cyclosched` reproduction of
//! *"Architecture-Dependent Loop Scheduling via Communication-Sensitive
//! Remapping"* (Tongsima, Passos, Sha — ICPP 1995).
//!
//! Data-flow graphs in that paper are node- and edge-weighted directed
//! multigraphs (parallel edges and self-loops both occur), so this crate
//! provides exactly that: a [`DiGraph`] arena with stable integer ids,
//! plus the graph algorithms the scheduler stack needs:
//!
//! * [`algo::topo`] — topological sorting with *edge filtering*, used to
//!   obtain the zero-delay DAG view of a cyclic data-flow graph;
//! * [`algo::traversal`] — BFS/DFS, hop distances (used for topology
//!   distance cross-checks);
//! * [`algo::scc`] — Tarjan strongly connected components;
//! * [`algo::cycles`] — elementary-cycle enumeration (retiming
//!   invariants, iteration-bound tests);
//! * [`algo::paths`] — DAG longest paths (ASAP/ALAP) and Bellman-Ford
//!   (negative-cycle detection for retiming feasibility);
//! * [`dot`] — Graphviz export for debugging and documentation.
//!
//! ## Example
//!
//! ```
//! use ccs_graph::{DiGraph, algo::topo::topo_sort};
//!
//! let mut g: DiGraph<&str, u32> = DiGraph::new();
//! let a = g.add_node("load");
//! let b = g.add_node("mul");
//! let c = g.add_node("store");
//! g.add_edge(a, b, 1);
//! g.add_edge(b, c, 1);
//! let order = topo_sort(&g).unwrap();
//! assert_eq!(order, vec![a, b, c]);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod graph;
mod ids;

pub mod algo {
    //! Graph algorithms over [`DiGraph`](crate::DiGraph).
    pub mod closure;
    pub mod cycles;
    pub mod paths;
    pub mod scc;
    pub mod topo;
    pub mod traversal;
}
pub mod dot;

pub use graph::DiGraph;
pub use ids::{EdgeId, NodeId};

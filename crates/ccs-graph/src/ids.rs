//! Index newtypes used by [`DiGraph`](crate::DiGraph).
//!
//! Both identifiers are plain `u32` indices into the graph's internal
//! arenas. They are `Copy`, cheap to hash, and stable for the lifetime of
//! the graph (removals leave tombstones instead of shifting indices).

use std::fmt;

/// Identifier of a node inside a [`DiGraph`](crate::DiGraph).
///
/// Node ids are assigned densely in insertion order starting from zero.
/// They remain valid after removals of *other* nodes.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub(crate) u32);

/// Identifier of a directed edge inside a [`DiGraph`](crate::DiGraph).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub(crate) u32);

impl NodeId {
    /// Returns the raw index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `NodeId` from a raw index.
    ///
    /// Mostly useful for tests and for serialization round-trips; an id
    /// built this way is only meaningful for the graph it came from.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        NodeId(u32::try_from(ix).expect("node index exceeds u32::MAX"))
    }
}

impl EdgeId {
    /// Returns the raw index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds an `EdgeId` from a raw index.
    #[inline]
    pub fn from_index(ix: usize) -> Self {
        EdgeId(u32::try_from(ix).expect("edge index exceeds u32::MAX"))
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let id = NodeId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(format!("{id}"), "n42");
        assert_eq!(format!("{id:?}"), "n42");
    }

    #[test]
    fn edge_id_round_trip() {
        let id = EdgeId::from_index(7);
        assert_eq!(id.index(), 7);
        assert_eq!(format!("{id}"), "e7");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(NodeId::from_index(1) < NodeId::from_index(2));
        assert!(EdgeId::from_index(0) < EdgeId::from_index(9));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn node_id_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}

//! `cargo xtask lint [--json]`: thin driver over the [`ccs_lint`]
//! engine (token-stream rules + cross-file drift passes).
//!
//! The driver owns only process concerns — locating the repo root,
//! argument parsing, output format, exit status.  The rule catalogue,
//! lexer, and workspace walk live in `crates/ccs-lint`, where they are
//! unit-tested as a library.
//!
//! Exit status: `0` clean, `1` findings, `2` usage/I-O failure.

use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "TASKS:\n    lint [--json]    run the repo source lints";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => match args.get(1).map(String::as_str) {
            None => run_lint(false),
            Some("--json") => run_lint(true),
            Some(other) => {
                eprintln!("xtask lint: unknown flag {other:?}\n\n{USAGE}");
                ExitCode::from(2)
            }
        },
        Some(other) => {
            eprintln!("xtask: unknown task {other:?}\n\n{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprintln!("xtask: missing task\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

fn run_lint(json: bool) -> ExitCode {
    // xtask lives at <repo>/crates/xtask, so the repo root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a repo root two levels up");
    let report = match ccs_lint::run(root) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::from(2);
        }
    };
    if json {
        print!("{}", ccs_lint::json::emit(&report));
        return if report.findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::from(1)
        };
    }
    if report.findings.is_empty() {
        println!("xtask lint: {} files clean", report.files_scanned);
        ExitCode::SUCCESS
    } else {
        for f in &report.findings {
            println!("{f}");
        }
        println!(
            "xtask lint: {} finding(s) in {} files",
            report.findings.len(),
            report.files_scanned
        );
        ExitCode::from(1)
    }
}

//! `cargo run -p xtask -- lint`: offline repo lints (no registry
//! dependencies), run in CI next to `cargo fmt --check` / `clippy`.
//!
//! See [`lint`] for the rule catalogue.  Exit status: `0` clean,
//! `1` findings, `2` usage/I-O failure.

mod lint;

use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some(other) => {
            eprintln!(
                "xtask: unknown task {other:?}\n\nTASKS:\n    lint    run the repo source lints"
            );
            ExitCode::from(2)
        }
        None => {
            eprintln!("xtask: missing task\n\nTASKS:\n    lint    run the repo source lints");
            ExitCode::from(2)
        }
    }
}

fn run_lint() -> ExitCode {
    // xtask lives at <repo>/crates/xtask, so the repo root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/xtask has a repo root two levels up")
        .to_path_buf();
    let mut files: Vec<PathBuf> = Vec::new();
    if let Err(e) = collect_rs(&root.join("crates"), &mut files) {
        eprintln!("xtask lint: walking crates/: {e}");
        return ExitCode::from(2);
    }
    // The root crate's library sources fall under the print rule too.
    if let Err(e) = collect_rs(&root.join("src"), &mut files) {
        eprintln!("xtask lint: walking src/: {e}");
        return ExitCode::from(2);
    }
    files.sort();

    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        match std::fs::read_to_string(path) {
            Ok(text) => findings.extend(lint::lint_source(&rel, &text)),
            Err(e) => {
                eprintln!("xtask lint: {rel}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if findings.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "xtask lint: {} finding(s) in {} files",
            findings.len(),
            files.len()
        );
        ExitCode::from(1)
    }
}

/// Recursively collects `.rs` files, skipping build output.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

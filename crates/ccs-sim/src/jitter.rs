//! Timing-jitter robustness (extension): self-timed execution where
//! task latencies fluctuate around their nominal values.
//!
//! The paper's model is fully synchronous — every task takes exactly
//! `t(v)` control steps.  Real machines jitter (cache misses, DRAM
//! refresh, interrupts).  This module executes a placed CSDFG
//! self-timed while inflating each task instance's latency by a random
//! amount up to `max_jitter` cycles (seeded, reproducible), and
//! reports the achieved initiation interval.  Comparing the inflation
//! of a *compacted* schedule against the *start-up* schedule measures
//! whether cyclo-compaction's tighter packing makes execution more
//! fragile — one of the questions a deployment would ask.

use crate::report::SelfTimedReport;
use ccs_model::{Csdfg, NodeId};
use ccs_schedule::Schedule;
use ccs_topology::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Jitter model: each task instance executes for
/// `t(v) + uniform(0..=max_jitter)` cycles.
#[derive(Clone, Copy, Debug)]
pub struct JitterConfig {
    /// Maximum extra cycles per task instance.
    pub max_jitter: u32,
    /// RNG seed (runs are reproducible).
    pub seed: u64,
}

/// Self-timed execution with per-instance latency jitter, keeping the
/// schedule's processor assignment and per-PE order.
///
/// # Panics
///
/// Panics if some task is unplaced or `iterations == 0`.
pub fn run_jittered(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    iterations: u32,
    config: JitterConfig,
) -> SelfTimedReport {
    assert!(iterations > 0, "need at least one iteration");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut order: Vec<NodeId> = g.tasks().collect();
    order.sort_by_key(|&v| (sched.cb(v).expect("task placed"), v.index()));

    let mut finish: BTreeMap<(usize, u32), u64> = BTreeMap::new();
    let mut pe_free = vec![0u64; machine.num_pes()];
    let mut messages = 0u64;
    let mut traffic = 0u64;
    let mut makespan = 0u64;
    let mut first_iter_end = 0u64;

    for i in 0..iterations {
        for &v in &order {
            let pe = sched.pe(v).expect("placed");
            let mut ready_at = pe_free[pe.index()];
            for e in g.in_deps(v) {
                let (u, _) = g.endpoints(e);
                let k = g.delay(e);
                if k > i {
                    continue;
                }
                let Some(&f) = finish.get(&(u.index(), i - k)) else {
                    continue;
                };
                let pu = sched.pe(u).expect("placed");
                let hops = machine.distance(pu, pe);
                let cost = u64::from(hops) * u64::from(g.volume(e));
                if hops > 0 {
                    messages += 1;
                    traffic += cost;
                }
                ready_at = ready_at.max(f + cost);
            }
            let jitter = if config.max_jitter == 0 {
                0
            } else {
                rng.gen_range(0..=config.max_jitter)
            };
            let end = ready_at + u64::from(g.time(v)) + u64::from(jitter);
            finish.insert((v.index(), i), end);
            pe_free[pe.index()] = end;
            makespan = makespan.max(end);
        }
        if i == 0 {
            first_iter_end = makespan;
        }
    }

    let initiation_interval = if iterations == 1 {
        makespan as f64
    } else {
        (makespan - first_iter_end) as f64 / f64::from(iterations - 1)
    };
    SelfTimedReport {
        iterations,
        makespan,
        initiation_interval,
        messages,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::self_timed::run_self_timed;
    use ccs_topology::Pe;

    fn setup() -> (Csdfg, Machine, Schedule) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        let m = Machine::linear_array(2);
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(0), 2, 2).unwrap();
        s.pad_to(3);
        (g, m, s)
    }

    #[test]
    fn zero_jitter_matches_self_timed() {
        let (g, m, s) = setup();
        let base = run_self_timed(&g, &m, &s, 25);
        let jit = run_jittered(
            &g,
            &m,
            &s,
            25,
            JitterConfig {
                max_jitter: 0,
                seed: 1,
            },
        );
        assert_eq!(jit.makespan, base.makespan);
        assert!((jit.initiation_interval - base.initiation_interval).abs() < 1e-9);
    }

    #[test]
    fn jitter_only_slows_down_and_is_bounded() {
        let (g, m, s) = setup();
        let base = run_self_timed(&g, &m, &s, 25);
        for j in [1u32, 3, 7] {
            let jit = run_jittered(
                &g,
                &m,
                &s,
                25,
                JitterConfig {
                    max_jitter: j,
                    seed: 9,
                },
            );
            assert!(jit.initiation_interval >= base.initiation_interval - 1e-9);
            // Worst case adds max_jitter per task per iteration.
            let ceiling = base.initiation_interval + f64::from(j) * g.task_count() as f64;
            assert!(jit.initiation_interval <= ceiling + 1e-9);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let (g, m, s) = setup();
        let a = run_jittered(
            &g,
            &m,
            &s,
            30,
            JitterConfig {
                max_jitter: 4,
                seed: 42,
            },
        );
        let b = run_jittered(
            &g,
            &m,
            &s,
            30,
            JitterConfig {
                max_jitter: 4,
                seed: 42,
            },
        );
        assert_eq!(a.makespan, b.makespan);
        let c = run_jittered(
            &g,
            &m,
            &s,
            30,
            JitterConfig {
                max_jitter: 4,
                seed: 43,
            },
        );
        // Different seed, overwhelmingly likely different makespan.
        assert_ne!(a.makespan, c.makespan);
    }

    #[test]
    fn compacted_schedules_degrade_gracefully() {
        use ccs_core::{cyclo_compact, CompactConfig};
        let g = ccs_workloads::paper::fig1_example();
        let m = Machine::mesh(2, 2);
        let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
        let base = run_self_timed(&r.graph, &m, &r.schedule, 50);
        let jit = run_jittered(
            &r.graph,
            &m,
            &r.schedule,
            50,
            JitterConfig {
                max_jitter: 1,
                seed: 7,
            },
        );
        // Unit jitter on a 6-task graph: inflation stays within the
        // total-extra-work bound.
        assert!(jit.initiation_interval >= base.initiation_interval - 1e-9);
        assert!(jit.initiation_interval <= base.initiation_interval + 6.0 + 1e-9);
    }
}

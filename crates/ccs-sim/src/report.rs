//! Simulation reports.

use ccs_model::EdgeId;
use std::fmt;

/// A data-arrival violation observed while replaying a static schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LateArrival {
    /// The dependency whose data arrived late.
    pub edge: EdgeId,
    /// Consumer iteration index (0-based).
    pub iteration: u32,
    /// Global clock cycle at which the data became usable.
    pub usable_at: u64,
    /// Global clock cycle at which the consumer started.
    pub consumer_start: u64,
}

impl fmt::Display for LateArrival {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "edge {} iteration {}: data usable at cycle {} but consumer started at {}",
            self.edge, self.iteration, self.usable_at, self.consumer_start
        )
    }
}

/// Result of replaying a static schedule cycle-by-cycle.
#[derive(Clone, Debug)]
pub struct StaticReport {
    /// Number of iterations replayed.
    pub iterations: u32,
    /// Static schedule length used as the initiation interval.
    pub period: u32,
    /// Global cycle at which the last task of the last iteration ended.
    pub makespan: u64,
    /// Number of inter-processor messages sent.
    pub messages: u64,
    /// Total `hops * volume` cost across all messages.
    pub traffic: u64,
    /// Late arrivals (empty for a valid schedule).
    pub violations: Vec<LateArrival>,
    /// Per-PE busy cycles (indexed by PE).
    pub busy_cycles: Vec<u64>,
}

impl StaticReport {
    /// `true` when no arrival violations were observed.
    pub fn is_valid(&self) -> bool {
        self.violations.is_empty()
    }

    /// Mean processor utilization in `[0, 1]` over the replayed window.
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.busy_cycles.is_empty() {
            return 0.0;
        }
        let busy: u64 = self.busy_cycles.iter().sum();
        busy as f64 / (self.makespan as f64 * self.busy_cycles.len() as f64)
    }
}

/// Result of a self-timed (as-soon-as-possible) execution.
#[derive(Clone, Debug)]
pub struct SelfTimedReport {
    /// Number of iterations executed.
    pub iterations: u32,
    /// Global cycle at which the last task finished.
    pub makespan: u64,
    /// Average initiation interval over the steady tail
    /// (`(finish(last) - finish(first)) / (iterations - 1)`), equal to
    /// the makespan for a single iteration.
    pub initiation_interval: f64,
    /// Number of inter-processor messages sent.
    pub messages: u64,
    /// Total `hops * volume` traffic.
    pub traffic: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn late_arrival_displays() {
        let v = LateArrival {
            edge: EdgeId::from_index(2),
            iteration: 1,
            usable_at: 10,
            consumer_start: 8,
        };
        let s = v.to_string();
        assert!(s.contains("e2"));
        assert!(s.contains("usable at cycle 10"));
    }

    #[test]
    fn utilization_math() {
        let r = StaticReport {
            iterations: 1,
            period: 4,
            makespan: 4,
            messages: 0,
            traffic: 0,
            violations: vec![],
            busy_cycles: vec![4, 0],
        };
        assert!((r.utilization() - 0.5).abs() < 1e-12);
        assert!(r.is_valid());
    }

    #[test]
    fn empty_report_has_zero_utilization() {
        let r = StaticReport {
            iterations: 0,
            period: 0,
            makespan: 0,
            messages: 0,
            traffic: 0,
            violations: vec![],
            busy_cycles: vec![],
        };
        assert_eq!(r.utilization(), 0.0);
    }
}

//! Cycle-accurate replay of a static schedule.
//!
//! The replay is an *independent* dynamic check of schedule validity:
//! it knows nothing about `PSL` or anticipation functions — it simply
//! executes `R` iterations back to back with period `L`, models every
//! inter-processor transfer as a store-and-forward message of latency
//! `hops * volume`, and reports any data that was not usable when its
//! consumer started.  Initial tokens (edge delays) are modelled the
//! standard way: the instance `i` of consumer `v` on edge `u -> v`
//! with `d(e) = k` reads the output of instance `i - k` of `u`;
//! instances with `i < k` read pre-loaded tokens available at cycle 0.

use crate::report::{LateArrival, StaticReport};
use ccs_model::Csdfg;
use ccs_schedule::Schedule;
use ccs_topology::Machine;

/// Replays `iterations` iterations of `sched` (period =
/// `sched.length()`) and reports what actually happened.
///
/// # Panics
///
/// Panics if some task of `g` is not placed in `sched`.
pub fn replay_static(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    iterations: u32,
) -> StaticReport {
    let period = u64::from(sched.length());
    let mut violations = Vec::new();
    let mut messages = 0u64;
    let mut traffic = 0u64;
    let mut makespan = 0u64;
    let mut busy = vec![0u64; machine.num_pes()];

    // Global, 0-based timing of instance i of node v:
    // starts at i*period + CB(v) - 1, occupies t(v) cycles.
    let start = |v, i: u32| -> u64 {
        u64::from(i) * period + u64::from(sched.cb(v).expect("task placed")) - 1
    };
    let finish = |v, i: u32| -> u64 { start(v, i) + u64::from(g.time(v)) };

    for i in 0..iterations {
        for v in g.tasks() {
            makespan = makespan.max(finish(v, i));
            busy[sched.pe(v).expect("placed").index()] += u64::from(g.time(v));
        }
        for e in g.deps() {
            let (u, v) = g.endpoints(e);
            let k = g.delay(e);
            let (pu, pv) = (sched.pe(u).expect("placed"), sched.pe(v).expect("placed"));
            let hops = machine.distance(pu, pv);
            let cost = u64::from(hops) * u64::from(g.volume(e));
            let consumer_start = start(v, i);
            let usable_at = if i >= k {
                let produced = finish(u, i - k);
                if hops > 0 {
                    messages += 1;
                    traffic += cost;
                }
                produced + cost
            } else {
                0 // initial token, pre-loaded
            };
            if usable_at > consumer_start {
                violations.push(LateArrival {
                    edge: e,
                    iteration: i,
                    usable_at,
                    consumer_start,
                });
            }
        }
    }

    StaticReport {
        iterations,
        period: sched.length(),
        makespan,
        messages,
        traffic,
        violations,
        busy_cycles: busy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_model::NodeId;
    use ccs_topology::Pe;

    fn two_task_loop() -> Csdfg {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 2).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        g
    }

    fn place(g: &Csdfg, spec: &[(&str, u32, u32)]) -> Schedule {
        let mut s = Schedule::new(2);
        for &(name, pe, cs) in spec {
            let v = g.task_by_name(name).unwrap();
            s.place(v, Pe(pe), cs, g.time(v)).unwrap();
        }
        s
    }

    #[test]
    fn valid_schedule_replays_clean() {
        let g = two_task_loop();
        let m = Machine::linear_array(2);
        let mut s = place(&g, &[("A", 0, 1), ("B", 0, 2)]);
        s.pad_to(3); // B->A needs L >= CE(B)-CB(A)+1 = 3
        let r = replay_static(&g, &m, &s, 10);
        assert!(r.is_valid(), "{:?}", r.violations);
        assert_eq!(r.period, 3);
        assert_eq!(r.messages, 0);
        // Iteration 9 of B finishes at 9*3 + 3 = 30.
        assert_eq!(r.makespan, 30);
    }

    #[test]
    fn replay_detects_precedence_violation() {
        let g = two_task_loop();
        let m = Machine::linear_array(2);
        // B on the other PE at cs2: A->B data (volume 2, 1 hop) is
        // usable only at cycle 1+2=3 (0-based), but B starts at cycle 1.
        let s = place(&g, &[("A", 0, 1), ("B", 1, 2)]);
        let r = replay_static(&g, &m, &s, 3);
        assert!(!r.is_valid());
        assert!(r.violations.iter().all(|v| v.usable_at > v.consumer_start));
        // The A->B violation repeats every iteration; the tightened
        // back edge B->A also misses from iteration 1 on.
        let a = g.task_by_name("A").unwrap();
        let ab = g
            .graph()
            .find_edge(a, g.task_by_name("B").unwrap())
            .unwrap();
        let ab_violations = r.violations.iter().filter(|v| v.edge == ab).count();
        assert_eq!(ab_violations, 3);
        assert_eq!(r.violations.len(), 5);
    }

    #[test]
    fn replay_detects_psl_violation_only_after_first_iteration() {
        let g = two_task_loop();
        let m = Machine::linear_array(2);
        // Same-PE schedule but *without* the PSL padding: length 4
        // instead of... B ends cs4, A starts cs1 of next iteration:
        // needs L >= 4; build with B at cs3 so CE=4, L=4 is legal; then
        // shrink below.
        let mut s = place(&g, &[("A", 0, 1), ("B", 0, 2)]);
        // L = 3 is exactly legal; forcing the table shorter is not
        // representable, so instead check the boundary: with L = 3 the
        // loop-carried read of iteration 1 is satisfied with equality.
        s.pad_to(3);
        let r = replay_static(&g, &m, &s, 2);
        assert!(r.is_valid());
        // Move B one PE away at a *late* step so intra-iteration is
        // fine but the back-edge B->A (1 hop, volume 1) misses the next
        // iteration's A.
        let mut s2 = Schedule::new(2);
        let a = g.task_by_name("A").unwrap();
        let b = g.task_by_name("B").unwrap();
        s2.place(a, Pe(0), 1, 1).unwrap();
        s2.place(b, Pe(1), 4, 2).unwrap(); // CE=5, usable at 5+1=6 (cycle), next A starts at L=5 cycle 5
        let r2 = replay_static(&g, &m, &s2, 3);
        assert!(!r2.is_valid());
        // First iteration consumes an initial token: violation count is
        // iterations - delay = 2.
        assert_eq!(r2.violations.len(), 2);
        assert_eq!(r2.violations[0].iteration, 1);
    }

    #[test]
    fn message_accounting() {
        let g = two_task_loop();
        let m = Machine::linear_array(2);
        let mut s = place(&g, &[("A", 0, 1), ("B", 1, 4)]);
        s.pad_to(10);
        let r = replay_static(&g, &m, &s, 4);
        // Per iteration: A->B crosses (volume 2, 1 hop) and B->A
        // crosses back (volume 1, 1 hop), except B->A of the first
        // iteration feeds iteration 1..3 => 4 + 3 messages.
        assert_eq!(r.messages, 7);
        assert_eq!(r.traffic, 4 * 2 + 3);
    }

    #[test]
    fn utilization_and_busy_cycles() {
        let g = two_task_loop();
        let m = Machine::linear_array(2);
        let mut s = place(&g, &[("A", 0, 1), ("B", 0, 2)]);
        s.pad_to(3);
        let r = replay_static(&g, &m, &s, 10);
        assert_eq!(r.busy_cycles[0], 30);
        assert_eq!(r.busy_cycles[1], 0);
        assert!((r.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn agrees_with_static_checker() {
        // Any schedule the checker accepts must replay clean, and
        // vice-versa (spot check on a small family of placements).
        let g = two_task_loop();
        let m = Machine::linear_array(2);
        let a = g.task_by_name("A").unwrap();
        let b = g.task_by_name("B").unwrap();
        for pe_b in 0..2u32 {
            for cs_b in 2..6u32 {
                for pad in 0..8u32 {
                    let mut s = Schedule::new(2);
                    s.place(a, Pe(0), 1, 1).unwrap();
                    s.place(b, Pe(pe_b), cs_b, 2).unwrap();
                    s.pad_to(s.length() + pad);
                    let checker_ok = ccs_schedule::validate(&g, &m, &s).is_ok();
                    let replay_ok = replay_static(&g, &m, &s, 6).is_valid();
                    assert_eq!(
                        checker_ok, replay_ok,
                        "disagreement at pe_b={pe_b} cs_b={cs_b} pad={pad}"
                    );
                }
            }
        }
    }

    #[allow(unused)]
    fn _use_nodeid(_: NodeId) {}
}

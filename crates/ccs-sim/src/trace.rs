//! Execution traces and text-art Gantt rendering.
//!
//! [`trace_static`] expands a static schedule into explicit per-cycle
//! events for a window of iterations — useful for debugging schedules
//! and for rendering pipelined execution the way the paper's prose
//! describes it (prologue, steady state, overlap of iterations).

use ccs_model::{Csdfg, NodeId};
use ccs_schedule::Schedule;
use ccs_topology::Pe;

/// One task-instance execution event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExecEvent {
    /// The task.
    pub node: NodeId,
    /// Which iteration of the loop body (0-based).
    pub iteration: u32,
    /// Processor.
    pub pe: Pe,
    /// First cycle of execution (0-based global time).
    pub start: u64,
    /// One past the last cycle of execution.
    pub end: u64,
}

/// Expands `iterations` iterations of `sched` into execution events,
/// sorted by `(start, pe)`.
pub fn trace_static(g: &Csdfg, sched: &Schedule, iterations: u32) -> Vec<ExecEvent> {
    let period = u64::from(sched.length());
    let mut events = Vec::with_capacity(g.task_count() * iterations as usize);
    for i in 0..iterations {
        for v in g.tasks() {
            let slot = sched.slot(v).expect("task placed");
            let start = u64::from(i) * period + u64::from(slot.start) - 1;
            events.push(ExecEvent {
                node: v,
                iteration: i,
                pe: slot.pe,
                start,
                end: start + u64::from(slot.duration),
            });
        }
    }
    events.sort_by_key(|e| (e.start, e.pe));
    events
}

/// Renders events as a text Gantt chart: one row per PE, one column
/// per cycle; each cell shows the task label (first character of the
/// `label` result) and iteration parity is shown by case.
pub fn render_gantt(
    g: &Csdfg,
    events: &[ExecEvent],
    mut label: impl FnMut(NodeId) -> String,
) -> String {
    let Some(horizon) = events.iter().map(|e| e.end).max() else {
        return String::from("(empty trace)\n");
    };
    let pes = events.iter().map(|e| e.pe.index()).max().unwrap_or(0) + 1;
    let mut rows = vec![vec![b'.'; horizon as usize]; pes];
    for e in events {
        let text = label(e.node);
        let ch = text.bytes().next().unwrap_or(b'?');
        let ch = if e.iteration % 2 == 0 {
            ch.to_ascii_uppercase()
        } else {
            ch.to_ascii_lowercase()
        };
        for c in e.start..e.end {
            rows[e.pe.index()][c as usize] = ch;
        }
    }
    let _ = g;
    let mut out = String::new();
    for (p, row) in rows.iter().enumerate() {
        out.push_str(&format!("pe{:<2} |", p + 1));
        out.push_str(std::str::from_utf8(row).expect("ASCII cells"));
        out.push('\n');
    }
    out.push_str("      ");
    let mut scale = String::new();
    for c in 0..horizon {
        scale.push(if c % 10 == 0 { '|' } else { ' ' });
    }
    out.push_str(&scale);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Csdfg, Schedule) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(1), 2, 2).unwrap();
        s.pad_to(4);
        (g, s)
    }

    #[test]
    fn events_cover_all_instances() {
        let (g, s) = setup();
        let events = trace_static(&g, &s, 3);
        assert_eq!(events.len(), 6);
        // iteration 1's A starts at period 4 + 0.
        let a = g.task_by_name("A").unwrap();
        let a1 = events
            .iter()
            .find(|e| e.node == a && e.iteration == 1)
            .unwrap();
        assert_eq!(a1.start, 4);
        assert_eq!(a1.end, 5);
    }

    #[test]
    fn events_sorted_by_start() {
        let (g, s) = setup();
        let events = trace_static(&g, &s, 4);
        for w in events.windows(2) {
            assert!(w[0].start <= w[1].start);
        }
    }

    #[test]
    fn gantt_rows_and_case_parity() {
        let (g, s) = setup();
        let events = trace_static(&g, &s, 2);
        let chart = render_gantt(&g, &events, |v| g.name(v).to_string());
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].starts_with("pe1 "));
        assert!(lines[1].starts_with("pe2 "));
        // iteration 0 uppercase, iteration 1 lowercase.
        assert!(lines[0].contains('A'));
        assert!(lines[0].contains('a'));
        assert!(lines[1].contains('B'));
        assert!(lines[1].contains('b'));
        // B occupies cycles 1-2 of iteration 0.
        let pe2 = lines[1].strip_prefix("pe2  |").unwrap();
        assert_eq!(&pe2[1..3], "BB");
    }

    #[test]
    fn empty_trace_renders_placeholder() {
        let g = Csdfg::new();
        let chart = render_gantt(&g, &[], |_| "x".into());
        assert_eq!(chart, "(empty trace)\n");
    }
}

//! Contention-aware store-and-forward network execution (extension).
//!
//! The paper assumes "multiple channels so that there is no congestion"
//! (Definition 3.5): every message independently costs
//! `hops * volume`.  This module drops that assumption: each
//! *undirected physical link* carries one message at a time, a message
//! of volume `m` occupies each link on its (deterministic shortest)
//! route for `m` consecutive cycles, and messages are forwarded
//! store-and-forward hop by hop.  Running the same schedules under
//! contention quantifies how load-bearing the paper's assumption is —
//! the `exp_contention` experiment reports the inflation.
//!
//! Arbitration: when two messages want one link, the one whose source
//! task fires earlier in the expanded static order wins (deterministic
//! static-priority arbitration, not FCFS; see `DESIGN.md`).

use crate::report::SelfTimedReport;
use ccs_model::{Csdfg, NodeId};
use ccs_schedule::Schedule;
use ccs_topology::{Machine, RoutingTable};
use std::collections::BTreeMap;

/// Per-link statistics from a contended run.
#[derive(Clone, Debug, Default)]
pub struct LinkStats {
    /// Busy cycles per undirected link, keyed `(min, max)` PE indices.
    pub busy: BTreeMap<(usize, usize), u64>,
}

impl LinkStats {
    /// The busiest link and its busy-cycle count.
    pub fn hottest(&self) -> Option<((usize, usize), u64)> {
        self.busy
            .iter()
            .max_by_key(|&(link, &cycles)| (cycles, std::cmp::Reverse(*link)))
            .map(|(&l, &c)| (l, c))
    }

    /// Mean link utilization over `makespan` cycles (0 when there are
    /// no links or no time elapsed).
    pub fn mean_utilization(&self, makespan: u64, total_links: usize) -> f64 {
        if makespan == 0 || total_links == 0 {
            return 0.0;
        }
        let busy: u64 = self.busy.values().sum();
        busy as f64 / (makespan as f64 * total_links as f64)
    }
}

/// Result of a contended self-timed execution.
#[derive(Clone, Debug)]
pub struct ContendedReport {
    /// The base self-timed measurements (makespan, II, messages, ...).
    pub base: SelfTimedReport,
    /// Per-link busy accounting.
    pub links: LinkStats,
}

/// Self-timed execution (per-PE static order, ASAP firing) with link
/// contention.  Compare against
/// [`run_self_timed`](crate::self_timed::run_self_timed), which uses
/// the paper's contention-free model.
///
/// # Panics
///
/// Panics if some task is unplaced, `iterations == 0`, or the machine
/// is disconnected.
pub fn run_contended(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    iterations: u32,
) -> ContendedReport {
    assert!(iterations > 0, "need at least one iteration");
    let routes = RoutingTable::new(machine);
    let mut order: Vec<NodeId> = g.tasks().collect();
    order.sort_by_key(|&v| (sched.cb(v).expect("task placed"), v.index()));

    let mut finish: BTreeMap<(usize, u32), u64> = BTreeMap::new();
    // Delivery time of edge e's data for consumer iteration i.
    let mut delivered: BTreeMap<(usize, u32), u64> = BTreeMap::new();
    let mut pe_free = vec![0u64; machine.num_pes()];
    let mut link_free: BTreeMap<(usize, usize), u64> = BTreeMap::new();
    let mut links = LinkStats::default();
    let mut messages = 0u64;
    let mut traffic = 0u64;
    let mut makespan = 0u64;
    let mut first_iter_end = 0u64;

    for i in 0..iterations {
        for &v in &order {
            let pe = sched.pe(v).expect("placed");
            let mut ready_at = pe_free[pe.index()];
            for e in g.in_deps(v) {
                let k = g.delay(e);
                if k > i {
                    continue; // initial token
                }
                if let Some(&t) = delivered.get(&(e.index(), i)) {
                    ready_at = ready_at.max(t);
                }
            }
            let end = ready_at + u64::from(g.time(v));
            finish.insert((v.index(), i), end);
            pe_free[pe.index()] = end;
            makespan = makespan.max(end);

            // Send this instance's outputs toward their consumers.
            for e in g.out_deps(v) {
                let (_, w) = g.endpoints(e);
                let dst_iter = i + g.delay(e);
                if dst_iter >= iterations {
                    continue; // consumer never fires in this run
                }
                let pw = sched.pe(w).expect("placed");
                let volume = u64::from(g.volume(e));
                let mut at = end;
                let path = routes.links_on_path(pe, pw);
                if !path.is_empty() {
                    messages += 1;
                    traffic += volume * path.len() as u64;
                    // Note: message arrivals do not extend the makespan
                    // (it measures task completion); they extend the
                    // *consumer's* start instead.
                    for link in path {
                        let slot = link_free.get(&link).copied().unwrap_or(0).max(at);
                        link_free.insert(link, slot + volume);
                        *links.busy.entry(link).or_insert(0) += volume;
                        at = slot + volume;
                    }
                }
                // Latest delivery wins if several edges feed (e, iter).
                let entry = delivered.entry((e.index(), dst_iter)).or_insert(0);
                *entry = (*entry).max(at);
            }
        }
        if i == 0 {
            first_iter_end = makespan;
        }
    }

    let initiation_interval = if iterations == 1 {
        makespan as f64
    } else {
        (makespan - first_iter_end) as f64 / f64::from(iterations - 1)
    };
    ContendedReport {
        base: SelfTimedReport {
            iterations,
            makespan,
            initiation_interval,
            messages,
            traffic,
        },
        links,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::self_timed::run_self_timed;
    use ccs_topology::Pe;

    fn fan_graph() -> Csdfg {
        // One producer feeding two consumers on remote PEs: the two
        // messages share the producer's outgoing link.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 3).unwrap();
        g.add_dep(a, c, 0, 3).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        g.add_dep(c, a, 1, 1).unwrap();
        g
    }

    #[test]
    fn contention_serializes_shared_links() {
        // Star: pe1 is the hub; B and C sit on leaves. Both A->B and
        // A->C cross the hub's links; the hub-adjacent link of each
        // route differs, BUT A's own link (hub-leaf) is shared when A
        // is on a leaf.
        let g = fan_graph();
        let m = Machine::star(3); // pe1 hub, pe2/pe3 leaves
        let mut s = Schedule::new(3);
        let (a, b, c) = (
            g.task_by_name("A").unwrap(),
            g.task_by_name("B").unwrap(),
            g.task_by_name("C").unwrap(),
        );
        // A on leaf pe2; B on hub; C on the other leaf.
        s.place(a, Pe(1), 1, 1).unwrap();
        s.place(b, Pe(0), 5, 1).unwrap();
        s.place(c, Pe(2), 8, 1).unwrap();
        s.pad_to(12);
        let free = run_self_timed(&g, &m, &s, 1);
        let contended = run_contended(&g, &m, &s, 1);
        // Contention can only slow things down.
        assert!(contended.base.makespan >= free.makespan);
        // The shared leaf->hub link carries both messages: 6 busy cycles.
        assert_eq!(contended.links.busy[&(0, 1)], 6);
    }

    #[test]
    fn no_contention_matches_free_model() {
        // Single chain, messages never overlap: contended == free.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 2).unwrap();
        g.add_dep(b, a, 1, 2).unwrap();
        let m = Machine::linear_array(2);
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(1), 4, 1).unwrap();
        s.pad_to(8);
        let free = run_self_timed(&g, &m, &s, 20);
        let contended = run_contended(&g, &m, &s, 20);
        assert_eq!(contended.base.makespan, free.makespan);
        assert!((contended.base.initiation_interval - free.initiation_interval).abs() < 1e-9);
    }

    #[test]
    fn same_pe_schedules_see_no_network() {
        let g = fan_graph();
        let m = Machine::ring(4);
        let mut s = Schedule::new(4);
        for (i, name) in ["A", "B", "C"].iter().enumerate() {
            let v = g.task_by_name(name).unwrap();
            s.place(v, Pe(0), (i + 1) as u32 * 2 - 1, 1).unwrap();
        }
        let r = run_contended(&g, &m, &s, 10);
        assert_eq!(r.base.messages, 0);
        assert!(r.links.busy.is_empty());
        assert_eq!(r.links.hottest(), None);
    }

    #[test]
    fn multi_hop_messages_occupy_every_link() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 2).unwrap();
        g.add_dep(b, a, 2, 1).unwrap();
        let m = Machine::linear_array(4);
        let mut s = Schedule::new(4);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(3), 8, 1).unwrap();
        s.pad_to(12);
        let r = run_contended(&g, &m, &s, 1);
        // A->B volume 2 over 3 links: 2 busy cycles each; delivery at
        // 1 + 3*2 = 7 (cycle), B starts at max(7, ...) fine.
        for link in [(0, 1), (1, 2), (2, 3)] {
            assert_eq!(r.links.busy[&link], 2, "{link:?}");
        }
        assert_eq!(r.base.traffic, 6);
        // Store-and-forward: arrival at cycle 1+2+2+2 = 7, B runs [7,8).
        assert_eq!(r.base.makespan, 8);
    }

    #[test]
    fn utilization_accounting() {
        let mut stats = LinkStats::default();
        stats.busy.insert((0, 1), 10);
        stats.busy.insert((1, 2), 30);
        assert_eq!(stats.hottest(), Some(((1, 2), 30)));
        assert!((stats.mean_utilization(100, 4) - 0.1).abs() < 1e-12);
        assert_eq!(stats.mean_utilization(0, 4), 0.0);
    }

    #[test]
    fn contention_never_speeds_up_paper_workloads() {
        use ccs_core::{cyclo_compact, CompactConfig};
        let g = ccs_workloads::paper::fig7_example();
        for m in [
            Machine::linear_array(8),
            Machine::mesh(4, 2),
            Machine::ring(8),
        ] {
            let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
            let free = run_self_timed(&r.graph, &m, &r.schedule, 24);
            let contended = run_contended(&r.graph, &m, &r.schedule, 24);
            assert!(
                contended.base.initiation_interval >= free.initiation_interval - 1e-9,
                "{}",
                m.name()
            );
        }
    }
}

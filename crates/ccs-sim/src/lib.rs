//! # ccs-sim
//!
//! A small discrete-time multiprocessor simulator used to validate the
//! schedules produced by the cyclo-compaction stack *dynamically* —
//! independent of the algebraic checker in `ccs-schedule`.
//!
//! Two execution models, both using the paper's communication model
//! (store-and-forward, contention-free, latency = `hops * volume`):
//!
//! * [`replay::replay_static`] — rigid replay: iteration `i` starts
//!   exactly at cycle `i * L`; every data arrival is checked against
//!   its consumer's start ([`report::LateArrival`]);
//! * [`self_timed::run_self_timed`] — ASAP execution keeping the
//!   processor assignment and per-PE order, measuring the achieved
//!   initiation interval (converges to the communication-augmented
//!   maximum cycle ratio).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod jitter;
pub mod network;
pub mod replay;
pub mod report;
pub mod self_timed;
pub mod trace;

pub use jitter::{run_jittered, JitterConfig};
pub use network::{run_contended, ContendedReport, LinkStats};
pub use replay::replay_static;
pub use report::{LateArrival, SelfTimedReport, StaticReport};
pub use self_timed::run_self_timed;
pub use trace::{render_gantt, trace_static, ExecEvent};

#[cfg(test)]
mod cross_validation {
    use super::*;
    use ccs_core::{cyclo_compact, startup_schedule, CompactConfig, StartupConfig};
    use ccs_model::Csdfg;
    use ccs_topology::Machine;
    use proptest::prelude::*;

    fn arb_csdfg() -> impl Strategy<Value = Csdfg> {
        (2usize..8).prop_flat_map(|n| {
            let times = proptest::collection::vec(1u32..4, n);
            let edges = proptest::collection::vec((0..n, 0..n, 0u32..3, 1u32..4), 1..n * 2);
            (times, edges).prop_map(move |(times, edges)| {
                let mut g = Csdfg::new();
                let ids: Vec<_> = times
                    .iter()
                    .enumerate()
                    .map(|(i, &t)| g.add_task(format!("v{i}"), t).unwrap())
                    .collect();
                for (a, b, d, c) in edges {
                    let delay = if a < b { d } else { d.max(1) };
                    g.add_dep(ids[a], ids[b], delay, c).unwrap();
                }
                g
            })
        })
    }

    fn arb_machine() -> impl Strategy<Value = Machine> {
        prop_oneof![
            (2usize..5).prop_map(Machine::linear_array),
            (3usize..6).prop_map(Machine::ring),
            Just(Machine::mesh(2, 2)),
            (2usize..5).prop_map(Machine::complete),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The headline cross-validation: every schedule the paper's
        /// algorithm produces must replay clean in the independent
        /// simulator, for many iterations.
        #[test]
        fn compacted_schedules_replay_clean(g in arb_csdfg(), m in arb_machine()) {
            let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
            let rep = replay_static(&r.graph, &m, &r.schedule, 12);
            prop_assert!(rep.is_valid(), "violations: {:?}", rep.violations);
        }

        #[test]
        fn startup_schedules_replay_clean(g in arb_csdfg(), m in arb_machine()) {
            let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
            let rep = replay_static(&g, &m, &s, 12);
            prop_assert!(rep.is_valid(), "violations: {:?}", rep.violations);
        }

        /// Self-timed execution of a valid schedule never runs slower
        /// than the static period.
        #[test]
        fn self_timed_at_most_static_period(g in arb_csdfg(), m in arb_machine()) {
            let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
            let st = run_self_timed(&g, &m, &s, 30);
            prop_assert!(st.initiation_interval <= f64::from(s.length()) + 1e-9,
                "self-timed II {} > period {}", st.initiation_interval, s.length());
        }

        /// Self-timed execution can never beat the iteration bound.
        #[test]
        fn self_timed_at_least_iteration_bound(g in arb_csdfg(), m in arb_machine()) {
            if let Some(b) = ccs_retiming::iteration_bound(&g) {
                let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
                let st = run_self_timed(&g, &m, &s, 60);
                prop_assert!(st.initiation_interval >= b.as_f64() - 1e-6,
                    "II {} below bound {}", st.initiation_interval, b);
            }
        }
    }
}

//! Self-timed (as-soon-as-possible) execution of a placed CSDFG.
//!
//! Keeps each task's processor assignment and the per-processor
//! execution order of the static schedule, but starts every task
//! instance as soon as (a) its processor is free and (b) all its input
//! data has arrived.  This is the classic "static-order self-timed"
//! execution model: for a valid static schedule it can only run
//! *faster* than the rigid period-`L` replay, so the measured
//! initiation interval is a dynamic lower-ish view of the schedule's
//! quality, and it converges to the graph's communication-augmented
//! steady-state rate.

use crate::report::SelfTimedReport;
use ccs_model::{Csdfg, NodeId};
use ccs_schedule::Schedule;
use ccs_topology::Machine;
use std::collections::BTreeMap;

/// Executes `iterations` iterations of `g` self-timed, following the
/// processor assignment and per-PE order of `sched`.
///
/// # Panics
///
/// Panics if some task is unplaced or `iterations == 0`.
pub fn run_self_timed(
    g: &Csdfg,
    machine: &Machine,
    sched: &Schedule,
    iterations: u32,
) -> SelfTimedReport {
    assert!(iterations > 0, "need at least one iteration");
    // Global firing order within an iteration: by static CB, ties by
    // node id.  A valid static schedule's CBs form a linear extension
    // of the zero-delay DAG, so same-iteration reads always see their
    // producers; it also fixes the per-PE execution order.
    let mut order: Vec<NodeId> = g.tasks().collect();
    order.sort_by_key(|&v| (sched.cb(v).expect("task placed"), v.index()));

    // finish[(node, iteration)] global cycle at which the instance ends.
    let mut finish: BTreeMap<(usize, u32), u64> = BTreeMap::new();
    let mut pe_free = vec![0u64; machine.num_pes()];
    let mut messages = 0u64;
    let mut traffic = 0u64;
    let mut makespan = 0u64;
    let mut first_iter_end = 0u64;

    for i in 0..iterations {
        for &v in &order {
            let pe = sched.pe(v).expect("placed");
            let mut ready_at = pe_free[pe.index()];
            for e in g.in_deps(v) {
                let (u, _) = g.endpoints(e);
                let k = g.delay(e);
                if k > i {
                    continue; // initial token, available at cycle 0
                }
                let src_iter = i - k;
                let Some(&f) = finish.get(&(u.index(), src_iter)) else {
                    continue; // producer fires later in this round: only
                              // possible for k = 0 violations, which the
                              // static checker reports separately
                };
                let pu = sched.pe(u).expect("placed");
                let hops = machine.distance(pu, pe);
                let cost = u64::from(hops) * u64::from(g.volume(e));
                if hops > 0 {
                    messages += 1;
                    traffic += cost;
                }
                ready_at = ready_at.max(f + cost);
            }
            let end = ready_at + u64::from(g.time(v));
            finish.insert((v.index(), i), end);
            pe_free[pe.index()] = end;
            makespan = makespan.max(end);
        }
        if i == 0 {
            first_iter_end = makespan;
        }
    }

    let initiation_interval = if iterations == 1 {
        makespan as f64
    } else {
        (makespan - first_iter_end) as f64 / f64::from(iterations - 1)
    };
    SelfTimedReport {
        iterations,
        makespan,
        initiation_interval,
        messages,
        traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_topology::Pe;

    fn loop2() -> Csdfg {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        g
    }

    fn sched_same_pe(g: &Csdfg) -> Schedule {
        let mut s = Schedule::new(2);
        s.place(g.task_by_name("A").unwrap(), Pe(0), 1, 1).unwrap();
        s.place(g.task_by_name("B").unwrap(), Pe(0), 2, 2).unwrap();
        s.pad_to(3);
        s
    }

    #[test]
    fn single_iteration_makespan() {
        let g = loop2();
        let m = Machine::linear_array(2);
        let s = sched_same_pe(&g);
        let r = run_self_timed(&g, &m, &s, 1);
        assert_eq!(r.makespan, 3); // A [0,1), B [1,3)
        assert_eq!(r.initiation_interval, 3.0);
        assert_eq!(r.messages, 0);
    }

    #[test]
    fn steady_state_matches_iteration_bound() {
        // Cycle A->B->A with one delay: T=3, D=1, bound 3. Self-timed II
        // must converge to 3 on one PE.
        let g = loop2();
        let m = Machine::linear_array(2);
        let s = sched_same_pe(&g);
        let r = run_self_timed(&g, &m, &s, 50);
        assert!(
            (r.initiation_interval - 3.0).abs() < 1e-9,
            "{}",
            r.initiation_interval
        );
    }

    #[test]
    fn self_timed_never_slower_than_static_period() {
        let g = loop2();
        let m = Machine::linear_array(2);
        let mut s = sched_same_pe(&g);
        s.pad_to(10); // deliberately over-padded static schedule
        let r = run_self_timed(&g, &m, &s, 40);
        assert!(r.initiation_interval <= 10.0);
        assert!(r.initiation_interval >= 3.0 - 1e-9);
    }

    #[test]
    fn cross_pe_messages_counted() {
        let g = loop2();
        let m = Machine::linear_array(2);
        let mut s = Schedule::new(2);
        s.place(g.task_by_name("A").unwrap(), Pe(0), 1, 1).unwrap();
        s.place(g.task_by_name("B").unwrap(), Pe(1), 3, 2).unwrap();
        s.pad_to(6);
        let r = run_self_timed(&g, &m, &s, 4);
        // A->B crosses every iteration (4), B->A for iterations 1..3 (3).
        assert_eq!(r.messages, 7);
        assert_eq!(r.traffic, 7);
        // Steady II includes the round trip: A(1) + hop(1) + B(2) + hop(1) = 5.
        assert!(
            (r.initiation_interval - 5.0).abs() < 1e-9,
            "{}",
            r.initiation_interval
        );
    }

    #[test]
    fn parallel_pes_overlap_independent_work() {
        // Two independent self-loops on two PEs run concurrently.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 4).unwrap();
        let b = g.add_task("B", 4).unwrap();
        g.add_dep(a, a, 1, 1).unwrap();
        g.add_dep(b, b, 1, 1).unwrap();
        let m = Machine::complete(2);
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 4).unwrap();
        s.place(b, Pe(1), 1, 4).unwrap();
        let r = run_self_timed(&g, &m, &s, 10);
        assert_eq!(r.makespan, 40); // not 80: they overlap
        assert!((r.initiation_interval - 4.0).abs() < 1e-9);
    }
}

//! # ccs-profile
//!
//! Communication profiling for the cyclo-compaction pipeline.
//!
//! The scheduler's whole premise is that schedule quality is governed
//! by *where communication lands*: every dependence edge `e = (u, v)`
//! pays `M(PE(u), PE(v)) = hops · c(e)` control steps.  The trace
//! layer (`ccs-trace`) emits per-edge attribution snapshots
//! (`traffic.edge` / `traffic.pe` events); this crate folds that
//! stream into a [`CommProfile`]:
//!
//! * a **per-edge traffic ledger** of the final best schedule (who
//!   talks to whom, over how many hops, at what cost);
//! * a **hop-weighted link-load matrix** keyed by the machine's
//!   physical links (deterministic BFS routes from
//!   [`ccs_topology::RoutingTable`]);
//! * **per-PE timelines** — tasks hosted, busy/idle cells, traffic
//!   sent and received;
//! * **per-pass comm/compute balance** — how crossing traffic and
//!   total comm cost evolve from the start-up schedule through every
//!   accepted compaction pass.
//!
//! The profile is a pure function of the (deterministic) event stream,
//! so its JSON export is byte-identical across runs and thread counts
//! — CI byte-compares it.  Renderers live in [`render`] (ASCII link
//! heatmap for `cyclosched schedule --profile out.json --heatmap`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod render;

use ccs_topology::{Machine, Pe, RoutingTable};
use ccs_trace::{Event, Sink, TimedEvent};
use serde::Value;

/// One row of the per-edge traffic ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeTraffic {
    /// Edge index in the graph's edge order.
    pub edge: u32,
    /// Producer node.
    pub src: u32,
    /// Consumer node.
    pub dst: u32,
    /// PE hosting the producer.
    pub src_pe: u32,
    /// PE hosting the consumer.
    pub dst_pe: u32,
    /// Hop distance between the two PEs.
    pub hops: u32,
    /// Data volume of the edge (`c(e)`).
    pub volume: u32,
}

impl EdgeTraffic {
    /// Hop-weighted cost `hops · volume` (saturating).
    pub fn cost(&self) -> u64 {
        u64::from(self.hops).saturating_mul(u64::from(self.volume))
    }

    /// `true` when the edge crosses PEs.
    pub fn crossing(&self) -> bool {
        self.src_pe != self.dst_pe
    }

    fn to_value(self) -> Value {
        Value::Object(vec![
            ("edge".to_string(), Value::UInt(u64::from(self.edge))),
            ("src".to_string(), Value::UInt(u64::from(self.src))),
            ("dst".to_string(), Value::UInt(u64::from(self.dst))),
            ("src_pe".to_string(), Value::UInt(u64::from(self.src_pe))),
            ("dst_pe".to_string(), Value::UInt(u64::from(self.dst_pe))),
            ("hops".to_string(), Value::UInt(u64::from(self.hops))),
            ("volume".to_string(), Value::UInt(u64::from(self.volume))),
            ("cost".to_string(), Value::UInt(self.cost())),
            ("crossing".to_string(), Value::Bool(self.crossing())),
        ])
    }
}

/// Aggregated traffic over one physical machine link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkLoad {
    /// Lower PE index of the undirected link.
    pub a: u32,
    /// Higher PE index of the undirected link.
    pub b: u32,
    /// Total data volume routed over the link.
    pub volume: u64,
    /// Number of edge messages routed over the link.
    pub messages: u64,
}

impl LinkLoad {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("a".to_string(), Value::UInt(u64::from(self.a))),
            ("b".to_string(), Value::UInt(u64::from(self.b))),
            ("volume".to_string(), Value::UInt(self.volume)),
            ("messages".to_string(), Value::UInt(self.messages)),
        ])
    }
}

/// One PE's row of the profile: load and traffic totals of the final
/// best schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeProfile {
    /// Processor index.
    pub pe: u32,
    /// Tasks hosted.
    pub tasks: u32,
    /// Occupied control-step cells.
    pub busy: u32,
    /// Free cells up to the schedule length.
    pub idle: u32,
    /// Hop-weighted cost of crossing traffic produced here.
    pub send: u64,
    /// Hop-weighted cost of crossing traffic consumed here.
    pub recv: u64,
}

impl PeProfile {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("pe".to_string(), Value::UInt(u64::from(self.pe))),
            ("tasks".to_string(), Value::UInt(u64::from(self.tasks))),
            ("busy".to_string(), Value::UInt(u64::from(self.busy))),
            ("idle".to_string(), Value::UInt(u64::from(self.idle))),
            ("send".to_string(), Value::UInt(self.send)),
            ("recv".to_string(), Value::UInt(self.recv)),
        ])
    }
}

/// Comm/compute balance of one phase: the start-up schedule (`pass` 0)
/// or one rotate-remap pass.
///
/// Reverted passes emit no attribution snapshot (the schedule rolled
/// back to its pre-pass state), so their traffic fields are zero and
/// `accepted` is `false`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassProfile {
    /// Phase number: 0 = start-up, `k` = rotate-remap pass `k`.
    pub pass: u32,
    /// Whether the phase's schedule survived.
    pub accepted: bool,
    /// Schedule length after the phase.
    pub length: u32,
    /// Total hop-weighted comm cost of the phase's placement.
    pub comm: u64,
    /// Edges crossing PEs.
    pub crossing: u32,
    /// Edges local to one PE.
    pub local: u32,
}

impl PassProfile {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("pass".to_string(), Value::UInt(u64::from(self.pass))),
            ("accepted".to_string(), Value::Bool(self.accepted)),
            ("length".to_string(), Value::UInt(u64::from(self.length))),
            ("comm".to_string(), Value::UInt(self.comm)),
            (
                "crossing".to_string(),
                Value::UInt(u64::from(self.crossing)),
            ),
            ("local".to_string(), Value::UInt(u64::from(self.local))),
        ])
    }
}

/// The communication profile of one scheduling run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommProfile {
    /// Machine name the run targeted.
    pub machine: String,
    /// Number of processors.
    pub pes: u32,
    /// Start-up schedule length.
    pub initial_length: u32,
    /// Best schedule length.
    pub best_length: u32,
    /// Total compute cells of the best schedule (Σ task durations).
    pub compute: u64,
    /// Total hop-weighted comm cost of the best schedule.
    pub total_comm: u64,
    /// Crossing edges in the best schedule.
    pub crossing_edges: u32,
    /// PE-local edges in the best schedule.
    pub local_edges: u32,
    /// The per-edge traffic ledger of the best schedule.
    pub edges: Vec<EdgeTraffic>,
    /// Hop-weighted load per physical link, in the machine's link
    /// order.  Empty for machines without meaningful routes (ideal
    /// zero-distance machines route nothing).
    pub links: Vec<LinkLoad>,
    /// Per-PE load/traffic rows, in PE order.
    pub pe_rows: Vec<PeProfile>,
    /// Comm/compute balance per phase (`pass` 0 = start-up).
    pub passes: Vec<PassProfile>,
}

fn fold(edges: &[EdgeTraffic]) -> (u64, u32, u32) {
    let mut comm = 0u64;
    let (mut crossing, mut local) = (0u32, 0u32);
    for e in edges {
        comm = comm.saturating_add(e.cost());
        if e.crossing() {
            crossing += 1;
        } else {
            local += 1;
        }
    }
    (comm, crossing, local)
}

impl CommProfile {
    /// Serializes the profile as an ordered JSON object.  Every field
    /// is a pure function of the event stream and the machine, so the
    /// output is deterministic.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), Value::UInt(1)),
            ("machine".to_string(), Value::String(self.machine.clone())),
            ("pes".to_string(), Value::UInt(u64::from(self.pes))),
            (
                "initial_length".to_string(),
                Value::UInt(u64::from(self.initial_length)),
            ),
            (
                "best_length".to_string(),
                Value::UInt(u64::from(self.best_length)),
            ),
            ("compute".to_string(), Value::UInt(self.compute)),
            ("total_comm".to_string(), Value::UInt(self.total_comm)),
            (
                "crossing_edges".to_string(),
                Value::UInt(u64::from(self.crossing_edges)),
            ),
            (
                "local_edges".to_string(),
                Value::UInt(u64::from(self.local_edges)),
            ),
            (
                "edges".to_string(),
                Value::Array(self.edges.iter().map(|e| e.to_value()).collect()),
            ),
            (
                "links".to_string(),
                Value::Array(self.links.iter().map(|l| l.to_value()).collect()),
            ),
            (
                "pes_detail".to_string(),
                Value::Array(self.pe_rows.iter().map(|p| p.to_value()).collect()),
            ),
            (
                "passes".to_string(),
                Value::Array(self.passes.iter().map(|p| p.to_value()).collect()),
            ),
        ])
    }

    /// Pretty-printed deterministic JSON export.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Folds the event stream into a [`CommProfile`].
///
/// Install one as a sink (it implements [`Sink`]) or feed it a
/// recorded stream via [`build`].  The builder tracks the stream's
/// phase brackets: each `traffic.edge` snapshot belongs to the
/// start-up schedule, one rotate-remap pass, or (after the last pass)
/// the final best schedule, whose snapshot becomes the authoritative
/// ledger.
#[derive(Default)]
pub struct ProfileBuilder {
    cur_edges: Vec<EdgeTraffic>,
    pe_loads: Vec<(u32, u32, u32)>,
    passes: Vec<PassProfile>,
    initial_length: u32,
    best_length: u32,
}

impl ProfileBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ProfileBuilder::default()
    }

    /// Consumes the builder, resolving link routes against `machine`
    /// (the machine the profiled run was scheduled on).
    pub fn finish(self, machine: &Machine) -> CommProfile {
        let edges = self.cur_edges;
        let (total_comm, crossing_edges, local_edges) = fold(&edges);

        // Hop-weighted link loads: each crossing edge charges its
        // volume to every link on the deterministic BFS route between
        // its PEs.  Σ over links of one edge's volume = hops · volume =
        // the edge's cost, so link loads and the ledger agree.
        let mut links: Vec<LinkLoad> = machine
            .links()
            .iter()
            .map(|&(a, b)| LinkLoad {
                a: u32::try_from(a).unwrap_or(u32::MAX),
                b: u32::try_from(b).unwrap_or(u32::MAX),
                ..LinkLoad::default()
            })
            .collect();
        let routable = machine.is_connected() && !machine.links().is_empty();
        if routable {
            let routes = RoutingTable::new(machine);
            let index_of = |a: usize, b: usize| {
                machine
                    .links()
                    .iter()
                    .position(|&l| l == (a.min(b), a.max(b)))
            };
            for e in &edges {
                if !e.crossing() || e.hops == 0 || e.hops == u32::MAX {
                    continue;
                }
                let (sp, dp) = (
                    Pe::from_index(e.src_pe as usize),
                    Pe::from_index(e.dst_pe as usize),
                );
                for (a, b) in routes.links_on_path(sp, dp) {
                    if let Some(ix) = index_of(a, b) {
                        links[ix].volume = links[ix].volume.saturating_add(u64::from(e.volume));
                        links[ix].messages += 1;
                    }
                }
            }
        }

        // Per-PE rows: loads from the traffic.pe events, send/recv
        // from the ledger.
        let mut pe_rows: Vec<PeProfile> = self
            .pe_loads
            .iter()
            .map(|&(pe, tasks, busy)| PeProfile {
                pe,
                tasks,
                busy,
                idle: self.best_length.saturating_sub(busy),
                ..PeProfile::default()
            })
            .collect();
        pe_rows.sort_by_key(|r| r.pe);
        for e in &edges {
            if !e.crossing() {
                continue;
            }
            if let Some(row) = pe_rows.iter_mut().find(|r| r.pe == e.src_pe) {
                row.send = row.send.saturating_add(e.cost());
            }
            if let Some(row) = pe_rows.iter_mut().find(|r| r.pe == e.dst_pe) {
                row.recv = row.recv.saturating_add(e.cost());
            }
        }
        let compute = pe_rows.iter().map(|r| u64::from(r.busy)).sum();

        CommProfile {
            machine: machine.name().to_string(),
            pes: u32::try_from(machine.num_pes()).unwrap_or(u32::MAX),
            initial_length: self.initial_length,
            best_length: self.best_length,
            compute,
            total_comm,
            crossing_edges,
            local_edges,
            edges,
            links,
            pe_rows,
            passes: self.passes,
        }
    }
}

impl Sink for ProfileBuilder {
    fn event(&mut self, ev: Event) {
        match ev {
            Event::StartupBegin { .. } | Event::PassBegin { .. } => self.cur_edges.clear(),
            Event::EdgeTraffic {
                edge,
                src,
                dst,
                src_pe,
                dst_pe,
                hops,
                volume,
            } => self.cur_edges.push(EdgeTraffic {
                edge,
                src,
                dst,
                src_pe,
                dst_pe,
                hops,
                volume,
            }),
            Event::StartupEnd { length } => {
                self.initial_length = length;
                self.best_length = length; // until compaction improves it
                let (comm, crossing, local) = fold(&self.cur_edges);
                self.passes.push(PassProfile {
                    pass: 0,
                    accepted: true,
                    length,
                    comm,
                    crossing,
                    local,
                });
                self.cur_edges.clear();
            }
            Event::PassEnd {
                pass,
                accepted,
                length,
            } => {
                let (comm, crossing, local) = fold(&self.cur_edges);
                self.passes.push(PassProfile {
                    pass,
                    accepted,
                    length,
                    comm,
                    crossing,
                    local,
                });
                self.cur_edges.clear();
            }
            Event::PeLoad { pe, tasks, busy } => self.pe_loads.push((pe, tasks, busy)),
            Event::CompactEnd { initial, best, .. } => {
                self.initial_length = initial;
                self.best_length = best;
                // cur_edges now holds the final best-schedule snapshot;
                // finish() adopts it as the ledger.
            }
            _ => {}
        }
    }
}

/// Folds a recorded event stream into a [`CommProfile`] for `machine`.
pub fn build(events: &[TimedEvent], machine: &Machine) -> CommProfile {
    let mut b = ProfileBuilder::new();
    for te in events {
        b.event(te.event.clone());
    }
    b.finish(machine)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(event: Event) -> TimedEvent {
        TimedEvent { ns: 0, event }
    }

    fn traffic(edge: u32, src_pe: u32, dst_pe: u32, hops: u32, volume: u32) -> Event {
        Event::EdgeTraffic {
            edge,
            src: edge,
            dst: edge + 1,
            src_pe,
            dst_pe,
            hops,
            volume,
        }
    }

    #[test]
    fn folds_phases_and_final_ledger() {
        let m = Machine::linear_array(3);
        let events = vec![
            te(Event::StartupBegin { tasks: 3, pes: 3 }),
            te(traffic(0, 0, 2, 2, 3)),
            te(traffic(1, 1, 1, 0, 4)),
            te(Event::StartupEnd { length: 6 }),
            te(Event::PassBegin {
                pass: 1,
                prev_len: 6,
                rows: 1,
            }),
            te(traffic(0, 0, 1, 1, 3)),
            te(traffic(1, 1, 1, 0, 4)),
            te(Event::PassEnd {
                pass: 1,
                accepted: true,
                length: 5,
            }),
            // Final best snapshot.
            te(traffic(0, 0, 1, 1, 3)),
            te(traffic(1, 1, 1, 0, 4)),
            te(Event::PeLoad {
                pe: 0,
                tasks: 1,
                busy: 2,
            }),
            te(Event::PeLoad {
                pe: 1,
                tasks: 2,
                busy: 3,
            }),
            te(Event::PeLoad {
                pe: 2,
                tasks: 0,
                busy: 0,
            }),
            te(Event::CompactEnd {
                initial: 6,
                best: 5,
                passes: 1,
            }),
        ];
        let p = build(&events, &m);
        assert_eq!(p.initial_length, 6);
        assert_eq!(p.best_length, 5);
        assert_eq!(p.total_comm, 3);
        assert_eq!(p.crossing_edges, 1);
        assert_eq!(p.local_edges, 1);
        assert_eq!(p.compute, 5);
        assert_eq!(p.passes.len(), 2);
        assert_eq!(p.passes[0].pass, 0);
        assert_eq!(p.passes[0].comm, 6);
        assert_eq!(p.passes[1].comm, 3);
        // linear 3 has links (0,1) and (1,2); edge 0 crosses 0->1.
        assert_eq!(p.links.len(), 2);
        assert_eq!(p.links[0].volume, 3);
        assert_eq!(p.links[0].messages, 1);
        assert_eq!(p.links[1].volume, 0);
        // Per-PE rows.
        assert_eq!(p.pe_rows[0].send, 3);
        assert_eq!(p.pe_rows[1].recv, 3);
        assert_eq!(p.pe_rows[2].idle, 5);
        // Link loads conserve the ledger: Σ link volume·(charged hops)
        // equals total comm when every hop is a physical link.
        let link_vol: u64 = p.links.iter().map(|l| l.volume).sum();
        assert_eq!(link_vol, 3);
    }

    #[test]
    fn reverted_pass_records_zero_traffic() {
        let m = Machine::linear_array(2);
        let events = vec![
            te(Event::PassBegin {
                pass: 1,
                prev_len: 4,
                rows: 1,
            }),
            te(Event::PassEnd {
                pass: 1,
                accepted: false,
                length: 4,
            }),
        ];
        let p = build(&events, &m);
        assert_eq!(p.passes.len(), 1);
        assert!(!p.passes[0].accepted);
        assert_eq!(p.passes[0].comm, 0);
    }

    #[test]
    fn json_is_deterministic() {
        let m = Machine::ring(4);
        let events = vec![
            te(Event::StartupBegin { tasks: 2, pes: 4 }),
            te(traffic(0, 0, 2, 2, 5)),
            te(Event::StartupEnd { length: 3 }),
            te(traffic(0, 0, 2, 2, 5)),
            te(Event::PeLoad {
                pe: 0,
                tasks: 1,
                busy: 1,
            }),
            te(Event::CompactEnd {
                initial: 3,
                best: 3,
                passes: 0,
            }),
        ];
        let a = build(&events, &m).to_json_pretty();
        let b = build(&events, &m).to_json_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"total_comm\": 10"), "{a}");
    }

    #[test]
    fn ideal_machine_routes_nothing() {
        // Ideal machines have zero hop distance everywhere: edges may
        // cross PEs but cost nothing and charge no link.
        let m = Machine::ideal(3);
        let events = vec![
            te(traffic(0, 0, 2, 0, 7)),
            te(Event::CompactEnd {
                initial: 2,
                best: 2,
                passes: 0,
            }),
        ];
        let p = build(&events, &m);
        assert_eq!(p.total_comm, 0);
        assert_eq!(p.crossing_edges, 1);
        assert!(p.links.iter().all(|l| l.volume == 0));
    }
}

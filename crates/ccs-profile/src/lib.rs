//! # ccs-profile
//!
//! Communication profiling for the cyclo-compaction pipeline.
//!
//! The scheduler's whole premise is that schedule quality is governed
//! by *where communication lands*: every dependence edge `e = (u, v)`
//! pays `M(PE(u), PE(v)) = hops · c(e)` control steps.  The trace
//! layer (`ccs-trace`) emits per-edge attribution snapshots
//! (`traffic.edge` / `traffic.pe` events); this crate folds that
//! stream into a [`CommProfile`]:
//!
//! * a **per-edge traffic ledger** of the final best schedule (who
//!   talks to whom, over how many hops, at what cost);
//! * a **hop-weighted link-load matrix** keyed by the machine's
//!   physical links (deterministic BFS routes from
//!   [`ccs_topology::RoutingTable`]);
//! * **per-PE timelines** — tasks hosted, busy/idle cells, traffic
//!   sent and received;
//! * **per-pass comm/compute balance** — how crossing traffic and
//!   total comm cost evolve from the start-up schedule through every
//!   accepted compaction pass.
//!
//! The profile is a pure function of the (deterministic) event stream,
//! so its JSON export is byte-identical across runs and thread counts
//! — CI byte-compares it.  Renderers live in [`render`] (ASCII link
//! heatmap for `cyclosched schedule --profile out.json --heatmap`, and
//! the SVG heatmap embedded by `ccs-report` / `--heatmap-svg`).
//!
//! Beyond the final ledger, the builder retains the full edge snapshot
//! of every *accepted* phase ([`PassLedger`]); [`diff_ledgers`] turns
//! two snapshots into a ranked list of [`LedgerDelta`] rows ("which
//! edges' hop·volume moved, where, and by how much") consumed by the
//! HTML report and the `--explain` narrative.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod render;

use ccs_topology::{Machine, Pe, RoutingTable};
use ccs_trace::{Event, Sink, TimedEvent};
use serde::Value;

/// One row of the per-edge traffic ledger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeTraffic {
    /// Edge index in the graph's edge order.
    pub edge: u32,
    /// Producer node.
    pub src: u32,
    /// Consumer node.
    pub dst: u32,
    /// PE hosting the producer.
    pub src_pe: u32,
    /// PE hosting the consumer.
    pub dst_pe: u32,
    /// Hop distance between the two PEs.
    pub hops: u32,
    /// Data volume of the edge (`c(e)`).
    pub volume: u32,
}

impl EdgeTraffic {
    /// Hop-weighted cost `hops · volume` (saturating).
    pub fn cost(&self) -> u64 {
        u64::from(self.hops).saturating_mul(u64::from(self.volume))
    }

    /// `true` when the edge crosses PEs.
    pub fn crossing(&self) -> bool {
        self.src_pe != self.dst_pe
    }

    fn to_value(self) -> Value {
        Value::Object(vec![
            ("edge".to_string(), Value::UInt(u64::from(self.edge))),
            ("src".to_string(), Value::UInt(u64::from(self.src))),
            ("dst".to_string(), Value::UInt(u64::from(self.dst))),
            ("src_pe".to_string(), Value::UInt(u64::from(self.src_pe))),
            ("dst_pe".to_string(), Value::UInt(u64::from(self.dst_pe))),
            ("hops".to_string(), Value::UInt(u64::from(self.hops))),
            ("volume".to_string(), Value::UInt(u64::from(self.volume))),
            ("cost".to_string(), Value::UInt(self.cost())),
            ("crossing".to_string(), Value::Bool(self.crossing())),
        ])
    }
}

/// Aggregated traffic over one physical machine link.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkLoad {
    /// Lower PE index of the undirected link.
    pub a: u32,
    /// Higher PE index of the undirected link.
    pub b: u32,
    /// Total data volume routed over the link.
    pub volume: u64,
    /// Number of edge messages routed over the link.
    pub messages: u64,
}

impl LinkLoad {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("a".to_string(), Value::UInt(u64::from(self.a))),
            ("b".to_string(), Value::UInt(u64::from(self.b))),
            ("volume".to_string(), Value::UInt(self.volume)),
            ("messages".to_string(), Value::UInt(self.messages)),
        ])
    }
}

/// The complete edge snapshot of one accepted phase: the start-up
/// schedule (`pass` 0) or one accepted rotate-remap pass.
///
/// Reverted passes emit no snapshot, so they never appear here.  The
/// ledgers feed the per-pass heatmaps and ledger diffs of the HTML
/// report; they are deliberately *not* part of the profile's JSON
/// export (the `version: 1` schema is pinned by golden tests and
/// `profile-check`).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassLedger {
    /// Phase number: 0 = start-up, `k` = rotate-remap pass `k`.
    pub pass: u32,
    /// Schedule length after the phase.
    pub length: u32,
    /// The full per-edge snapshot, in the graph's edge order.
    pub edges: Vec<EdgeTraffic>,
}

/// One changed row between two edge ledgers: the same dependence edge
/// before and after a pass moved its endpoints.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LedgerDelta {
    /// The edge before the pass.
    pub before: EdgeTraffic,
    /// The edge after the pass.
    pub after: EdgeTraffic,
}

impl LedgerDelta {
    /// Signed change of the edge's hop-weighted cost.
    pub fn delta(&self) -> i64 {
        let b = i64::try_from(self.before.cost()).unwrap_or(i64::MAX);
        let a = i64::try_from(self.after.cost()).unwrap_or(i64::MAX);
        a.saturating_sub(b)
    }
}

/// Diffs two edge ledgers (snapshots of the same graph), returning the
/// rows whose placement or cost changed, ranked by `|Δcost|` descending
/// and then by edge index — the order a human wants to read them in.
pub fn diff_ledgers(before: &[EdgeTraffic], after: &[EdgeTraffic]) -> Vec<LedgerDelta> {
    let mut out: Vec<LedgerDelta> = Vec::new();
    for a in after {
        let Some(b) = before.iter().find(|b| b.edge == a.edge) else {
            continue;
        };
        if b.src_pe != a.src_pe || b.dst_pe != a.dst_pe || b.cost() != a.cost() {
            out.push(LedgerDelta {
                before: *b,
                after: *a,
            });
        }
    }
    out.sort_by_key(|d| (std::cmp::Reverse(d.delta().unsigned_abs()), d.after.edge));
    out
}

/// Edges [`diff_ledgers`] skips because only one ledger has them —
/// the comparison report lists these separately rather than inventing
/// a zero-cost phantom partner.  Returns `(only_in_before,
/// only_in_after)`, each in edge-index order.
pub fn one_sided_edges(
    before: &[EdgeTraffic],
    after: &[EdgeTraffic],
) -> (Vec<EdgeTraffic>, Vec<EdgeTraffic>) {
    let lone = |xs: &[EdgeTraffic], ys: &[EdgeTraffic]| {
        let mut out: Vec<EdgeTraffic> = xs
            .iter()
            .filter(|x| !ys.iter().any(|y| y.edge == x.edge))
            .copied()
            .collect();
        out.sort_by_key(|e| e.edge);
        out
    };
    (lone(before, after), lone(after, before))
}

/// Renders the hop route one ledger row pays, 1-based to match the
/// paper's `PE1..PEm` convention: `"local@PE2"` for co-located
/// endpoints, otherwise the deterministic BFS path (`"PE1>PE2>PE4"`),
/// falling back to `"PE1..PE4 (h hops)"` when no route table applies.
pub fn route_label(routes: Option<&RoutingTable>, e: &EdgeTraffic) -> String {
    if !e.crossing() {
        return format!("local@PE{}", e.src_pe + 1);
    }
    if let Some(rt) = routes {
        let path = rt.path(
            Pe::from_index(e.src_pe as usize),
            Pe::from_index(e.dst_pe as usize),
        );
        if path.len() >= 2 {
            let hops: Vec<String> = path
                .iter()
                .map(|p| format!("PE{}", p.index() + 1))
                .collect();
            return hops.join(">");
        }
    }
    format!("PE{}..PE{} ({} hops)", e.src_pe + 1, e.dst_pe + 1, e.hops)
}

/// One PE's row of the profile: load and traffic totals of the final
/// best schedule.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PeProfile {
    /// Processor index.
    pub pe: u32,
    /// Tasks hosted.
    pub tasks: u32,
    /// Occupied control-step cells.
    pub busy: u32,
    /// Free cells up to the schedule length.
    pub idle: u32,
    /// Hop-weighted cost of crossing traffic produced here.
    pub send: u64,
    /// Hop-weighted cost of crossing traffic consumed here.
    pub recv: u64,
}

impl PeProfile {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("pe".to_string(), Value::UInt(u64::from(self.pe))),
            ("tasks".to_string(), Value::UInt(u64::from(self.tasks))),
            ("busy".to_string(), Value::UInt(u64::from(self.busy))),
            ("idle".to_string(), Value::UInt(u64::from(self.idle))),
            ("send".to_string(), Value::UInt(self.send)),
            ("recv".to_string(), Value::UInt(self.recv)),
        ])
    }
}

/// Comm/compute balance of one phase: the start-up schedule (`pass` 0)
/// or one rotate-remap pass.
///
/// Reverted passes emit no attribution snapshot (the schedule rolled
/// back to its pre-pass state), so their traffic fields are zero and
/// `accepted` is `false`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassProfile {
    /// Phase number: 0 = start-up, `k` = rotate-remap pass `k`.
    pub pass: u32,
    /// Whether the phase's schedule survived.
    pub accepted: bool,
    /// Schedule length after the phase.
    pub length: u32,
    /// Total hop-weighted comm cost of the phase's placement.
    pub comm: u64,
    /// Edges crossing PEs.
    pub crossing: u32,
    /// Edges local to one PE.
    pub local: u32,
}

impl PassProfile {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("pass".to_string(), Value::UInt(u64::from(self.pass))),
            ("accepted".to_string(), Value::Bool(self.accepted)),
            ("length".to_string(), Value::UInt(u64::from(self.length))),
            ("comm".to_string(), Value::UInt(self.comm)),
            (
                "crossing".to_string(),
                Value::UInt(u64::from(self.crossing)),
            ),
            ("local".to_string(), Value::UInt(u64::from(self.local))),
        ])
    }
}

/// The communication profile of one scheduling run.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommProfile {
    /// Machine name the run targeted.
    pub machine: String,
    /// Number of processors.
    pub pes: u32,
    /// Start-up schedule length.
    pub initial_length: u32,
    /// Best schedule length.
    pub best_length: u32,
    /// Total compute cells of the best schedule (Σ task durations).
    pub compute: u64,
    /// Total hop-weighted comm cost of the best schedule.
    pub total_comm: u64,
    /// Crossing edges in the best schedule.
    pub crossing_edges: u32,
    /// PE-local edges in the best schedule.
    pub local_edges: u32,
    /// The per-edge traffic ledger of the best schedule.
    pub edges: Vec<EdgeTraffic>,
    /// Hop-weighted load per physical link, in the machine's link
    /// order.  Empty for machines without meaningful routes (ideal
    /// zero-distance machines route nothing).
    pub links: Vec<LinkLoad>,
    /// Per-PE load/traffic rows, in PE order.
    pub pe_rows: Vec<PeProfile>,
    /// Comm/compute balance per phase (`pass` 0 = start-up).
    pub passes: Vec<PassProfile>,
    /// Full edge snapshots of the accepted phases, in pass order.
    /// Not part of the JSON export — see [`PassLedger`].
    pub pass_ledgers: Vec<PassLedger>,
}

fn fold(edges: &[EdgeTraffic]) -> (u64, u32, u32) {
    let mut comm = 0u64;
    let (mut crossing, mut local) = (0u32, 0u32);
    for e in edges {
        comm = comm.saturating_add(e.cost());
        if e.crossing() {
            crossing += 1;
        } else {
            local += 1;
        }
    }
    (comm, crossing, local)
}

impl CommProfile {
    /// Serializes the profile as an ordered JSON object.  Every field
    /// is a pure function of the event stream and the machine, so the
    /// output is deterministic.
    pub fn to_value(&self) -> Value {
        Value::Object(vec![
            ("version".to_string(), Value::UInt(1)),
            ("machine".to_string(), Value::String(self.machine.clone())),
            ("pes".to_string(), Value::UInt(u64::from(self.pes))),
            (
                "initial_length".to_string(),
                Value::UInt(u64::from(self.initial_length)),
            ),
            (
                "best_length".to_string(),
                Value::UInt(u64::from(self.best_length)),
            ),
            ("compute".to_string(), Value::UInt(self.compute)),
            ("total_comm".to_string(), Value::UInt(self.total_comm)),
            (
                "crossing_edges".to_string(),
                Value::UInt(u64::from(self.crossing_edges)),
            ),
            (
                "local_edges".to_string(),
                Value::UInt(u64::from(self.local_edges)),
            ),
            (
                "edges".to_string(),
                Value::Array(self.edges.iter().map(|e| e.to_value()).collect()),
            ),
            (
                "links".to_string(),
                Value::Array(self.links.iter().map(|l| l.to_value()).collect()),
            ),
            (
                "pes_detail".to_string(),
                Value::Array(self.pe_rows.iter().map(|p| p.to_value()).collect()),
            ),
            (
                "passes".to_string(),
                Value::Array(self.passes.iter().map(|p| p.to_value()).collect()),
            ),
        ])
    }

    /// Pretty-printed deterministic JSON export.
    pub fn to_json_pretty(&self) -> String {
        serde_json::to_string_pretty(&self.to_value()).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Folds the event stream into a [`CommProfile`].
///
/// Install one as a sink (it implements [`Sink`]) or feed it a
/// recorded stream via [`build`].  The builder tracks the stream's
/// phase brackets: each `traffic.edge` snapshot belongs to the
/// start-up schedule, one rotate-remap pass, or (after the last pass)
/// the final best schedule, whose snapshot becomes the authoritative
/// ledger.
#[derive(Default)]
pub struct ProfileBuilder {
    cur_edges: Vec<EdgeTraffic>,
    pe_loads: Vec<(u32, u32, u32)>,
    passes: Vec<PassProfile>,
    pass_ledgers: Vec<PassLedger>,
    initial_length: u32,
    best_length: u32,
}

/// Hop-weighted link loads of one edge ledger on `machine`: each
/// crossing edge charges its volume to every link on the deterministic
/// BFS route between its PEs.  Σ over links of one edge's volume =
/// hops · volume = the edge's cost, so link loads and the ledger agree
/// (the conservation invariant `report-check` verifies).  Machines
/// without meaningful routes (no links, or disconnected) load nothing.
pub fn link_loads(machine: &Machine, edges: &[EdgeTraffic]) -> Vec<LinkLoad> {
    let mut links: Vec<LinkLoad> = machine
        .links()
        .iter()
        .map(|&(a, b)| LinkLoad {
            a: u32::try_from(a).unwrap_or(u32::MAX),
            b: u32::try_from(b).unwrap_or(u32::MAX),
            ..LinkLoad::default()
        })
        .collect();
    if !routable(machine) {
        return links;
    }
    let routes = RoutingTable::new(machine);
    let index_of = |a: usize, b: usize| {
        machine
            .links()
            .iter()
            .position(|&l| l == (a.min(b), a.max(b)))
    };
    for e in edges {
        if !e.crossing() || e.hops == 0 || e.hops == u32::MAX {
            continue;
        }
        let (sp, dp) = (
            Pe::from_index(e.src_pe as usize),
            Pe::from_index(e.dst_pe as usize),
        );
        for (a, b) in routes.links_on_path(sp, dp) {
            if let Some(ix) = index_of(a, b) {
                links[ix].volume = links[ix].volume.saturating_add(u64::from(e.volume));
                links[ix].messages += 1;
            }
        }
    }
    links
}

/// `true` when link loads on `machine` are meaningful (it has physical
/// links and every pair of PEs is reachable over them).
pub fn routable(machine: &Machine) -> bool {
    machine.is_connected() && !machine.links().is_empty()
}

impl ProfileBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ProfileBuilder::default()
    }

    /// Consumes the builder, resolving link routes against `machine`
    /// (the machine the profiled run was scheduled on).
    pub fn finish(self, machine: &Machine) -> CommProfile {
        let edges = self.cur_edges;
        let (total_comm, crossing_edges, local_edges) = fold(&edges);
        let links = link_loads(machine, &edges);

        // Per-PE rows: loads from the traffic.pe events, send/recv
        // from the ledger.
        let mut pe_rows: Vec<PeProfile> = self
            .pe_loads
            .iter()
            .map(|&(pe, tasks, busy)| PeProfile {
                pe,
                tasks,
                busy,
                idle: self.best_length.saturating_sub(busy),
                ..PeProfile::default()
            })
            .collect();
        pe_rows.sort_by_key(|r| r.pe);
        for e in &edges {
            if !e.crossing() {
                continue;
            }
            if let Some(row) = pe_rows.iter_mut().find(|r| r.pe == e.src_pe) {
                row.send = row.send.saturating_add(e.cost());
            }
            if let Some(row) = pe_rows.iter_mut().find(|r| r.pe == e.dst_pe) {
                row.recv = row.recv.saturating_add(e.cost());
            }
        }
        let compute = pe_rows.iter().map(|r| u64::from(r.busy)).sum();

        CommProfile {
            machine: machine.name().to_string(),
            pes: u32::try_from(machine.num_pes()).unwrap_or(u32::MAX),
            initial_length: self.initial_length,
            best_length: self.best_length,
            compute,
            total_comm,
            crossing_edges,
            local_edges,
            edges,
            links,
            pe_rows,
            passes: self.passes,
            pass_ledgers: self.pass_ledgers,
        }
    }
}

impl Sink for ProfileBuilder {
    fn event(&mut self, ev: Event) {
        match ev {
            Event::StartupBegin { .. } | Event::PassBegin { .. } => self.cur_edges.clear(),
            Event::EdgeTraffic {
                edge,
                src,
                dst,
                src_pe,
                dst_pe,
                hops,
                volume,
            } => self.cur_edges.push(EdgeTraffic {
                edge,
                src,
                dst,
                src_pe,
                dst_pe,
                hops,
                volume,
            }),
            Event::StartupEnd { length } => {
                self.initial_length = length;
                self.best_length = length; // until compaction improves it
                let (comm, crossing, local) = fold(&self.cur_edges);
                self.passes.push(PassProfile {
                    pass: 0,
                    accepted: true,
                    length,
                    comm,
                    crossing,
                    local,
                });
                self.pass_ledgers.push(PassLedger {
                    pass: 0,
                    length,
                    edges: std::mem::take(&mut self.cur_edges),
                });
            }
            Event::PassEnd {
                pass,
                accepted,
                length,
            } => {
                let (comm, crossing, local) = fold(&self.cur_edges);
                self.passes.push(PassProfile {
                    pass,
                    accepted,
                    length,
                    comm,
                    crossing,
                    local,
                });
                if accepted {
                    self.pass_ledgers.push(PassLedger {
                        pass,
                        length,
                        edges: std::mem::take(&mut self.cur_edges),
                    });
                } else {
                    self.cur_edges.clear();
                }
            }
            Event::PeLoad { pe, tasks, busy } => self.pe_loads.push((pe, tasks, busy)),
            Event::CompactEnd { initial, best, .. } => {
                self.initial_length = initial;
                self.best_length = best;
                // cur_edges now holds the final best-schedule snapshot;
                // finish() adopts it as the ledger.
            }
            // The communication profile needs only traffic, load, and
            // phase boundaries.  Everything else is deliberately
            // skipped (`cargo xtask lint` keeps this list honest):
            // EVENT-IGNORED: ReadyPick — startup heuristic detail, no traffic.
            // EVENT-IGNORED: StartupPlace — placement narrative; fold.rs renders it.
            // EVENT-IGNORED: StartupDefer — placement narrative, no traffic.
            // EVENT-IGNORED: CompactBegin — config echo; bounds come from CompactEnd.
            // EVENT-IGNORED: Rotate — per-pass detail below this profile's grain.
            // EVENT-IGNORED: Candidate — scan detail below this profile's grain.
            // EVENT-IGNORED: Placed — scan detail below this profile's grain.
            // EVENT-IGNORED: NoSlot — scan detail below this profile's grain.
            // EVENT-IGNORED: SlackRepair — repair detail, traffic arrives as EdgeTraffic.
            // EVENT-IGNORED: PassStats — derived counters; the profile re-derives its own.
            // EVENT-IGNORED: BestSnapshot — length trajectory; PassEnd carries it too.
            // EVENT-IGNORED: OccupancySnapshot — occupancy grid; load arrives as PeLoad.
            _ => {}
        }
    }
}

/// Folds a recorded event stream into a [`CommProfile`] for `machine`.
pub fn build(events: &[TimedEvent], machine: &Machine) -> CommProfile {
    let mut b = ProfileBuilder::new();
    for te in events {
        b.event(te.event.clone());
    }
    b.finish(machine)
}

/// Prose ledger-diff notes for the `--explain` narrative: for every
/// accepted rotate-remap pass, the top-`k` edges whose communication
/// cost or placement changed relative to the previous accepted phase,
/// with before→after hop routes.  Returns `(pass, note)` pairs; the
/// note is pre-indented to sit under the explainer's `pass N accepted`
/// line.  Shares [`diff_ledgers`] with the HTML report, so the two
/// always tell the same story.
pub fn pass_diff_notes(
    p: &CommProfile,
    machine: &Machine,
    k: usize,
    mut name: impl FnMut(u32) -> String,
) -> Vec<(u32, String)> {
    use std::fmt::Write as _;
    let routes = routable(machine).then(|| RoutingTable::new(machine));
    let mut notes = Vec::new();
    for pair in p.pass_ledgers.windows(2) {
        let (prev, cur) = (&pair[0], &pair[1]);
        let deltas = diff_ledgers(&prev.edges, &cur.edges);
        let (prev_comm, _, _) = fold(&prev.edges);
        let (cur_comm, _, _) = fold(&cur.edges);
        let mut note = String::new();
        let shift = i64::try_from(cur_comm).unwrap_or(i64::MAX)
            - i64::try_from(prev_comm).unwrap_or(i64::MAX);
        let _ = writeln!(
            note,
            "  ledger diff vs pass {}: comm {prev_comm} -> {cur_comm} ({shift:+}), {} of {} edge(s) moved",
            prev.pass,
            deltas.len(),
            cur.edges.len()
        );
        for d in deltas.iter().take(k) {
            let _ = writeln!(
                note,
                "    e{} {}->{}: cost {} -> {} ({:+}), {} -> {}",
                d.after.edge,
                name(d.after.src),
                name(d.after.dst),
                d.before.cost(),
                d.after.cost(),
                d.delta(),
                route_label(routes.as_ref(), &d.before),
                route_label(routes.as_ref(), &d.after),
            );
        }
        if deltas.len() > k {
            let _ = writeln!(
                note,
                "    ({} more changed edge(s) not shown)",
                deltas.len() - k
            );
        }
        notes.push((cur.pass, note));
    }
    notes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn te(event: Event) -> TimedEvent {
        TimedEvent { ns: 0, event }
    }

    fn traffic(edge: u32, src_pe: u32, dst_pe: u32, hops: u32, volume: u32) -> Event {
        Event::EdgeTraffic {
            edge,
            src: edge,
            dst: edge + 1,
            src_pe,
            dst_pe,
            hops,
            volume,
        }
    }

    #[test]
    fn folds_phases_and_final_ledger() {
        let m = Machine::linear_array(3);
        let events = vec![
            te(Event::StartupBegin { tasks: 3, pes: 3 }),
            te(traffic(0, 0, 2, 2, 3)),
            te(traffic(1, 1, 1, 0, 4)),
            te(Event::StartupEnd { length: 6 }),
            te(Event::PassBegin {
                pass: 1,
                prev_len: 6,
                rows: 1,
            }),
            te(traffic(0, 0, 1, 1, 3)),
            te(traffic(1, 1, 1, 0, 4)),
            te(Event::PassEnd {
                pass: 1,
                accepted: true,
                length: 5,
            }),
            // Final best snapshot.
            te(traffic(0, 0, 1, 1, 3)),
            te(traffic(1, 1, 1, 0, 4)),
            te(Event::PeLoad {
                pe: 0,
                tasks: 1,
                busy: 2,
            }),
            te(Event::PeLoad {
                pe: 1,
                tasks: 2,
                busy: 3,
            }),
            te(Event::PeLoad {
                pe: 2,
                tasks: 0,
                busy: 0,
            }),
            te(Event::CompactEnd {
                initial: 6,
                best: 5,
                passes: 1,
            }),
        ];
        let p = build(&events, &m);
        assert_eq!(p.initial_length, 6);
        assert_eq!(p.best_length, 5);
        assert_eq!(p.total_comm, 3);
        assert_eq!(p.crossing_edges, 1);
        assert_eq!(p.local_edges, 1);
        assert_eq!(p.compute, 5);
        assert_eq!(p.passes.len(), 2);
        assert_eq!(p.passes[0].pass, 0);
        assert_eq!(p.passes[0].comm, 6);
        assert_eq!(p.passes[1].comm, 3);
        // linear 3 has links (0,1) and (1,2); edge 0 crosses 0->1.
        assert_eq!(p.links.len(), 2);
        assert_eq!(p.links[0].volume, 3);
        assert_eq!(p.links[0].messages, 1);
        assert_eq!(p.links[1].volume, 0);
        // Per-PE rows.
        assert_eq!(p.pe_rows[0].send, 3);
        assert_eq!(p.pe_rows[1].recv, 3);
        assert_eq!(p.pe_rows[2].idle, 5);
        // Link loads conserve the ledger: Σ link volume·(charged hops)
        // equals total comm when every hop is a physical link.
        let link_vol: u64 = p.links.iter().map(|l| l.volume).sum();
        assert_eq!(link_vol, 3);
    }

    #[test]
    fn reverted_pass_records_zero_traffic() {
        let m = Machine::linear_array(2);
        let events = vec![
            te(Event::PassBegin {
                pass: 1,
                prev_len: 4,
                rows: 1,
            }),
            te(Event::PassEnd {
                pass: 1,
                accepted: false,
                length: 4,
            }),
        ];
        let p = build(&events, &m);
        assert_eq!(p.passes.len(), 1);
        assert!(!p.passes[0].accepted);
        assert_eq!(p.passes[0].comm, 0);
        assert!(
            p.pass_ledgers.is_empty(),
            "reverted passes keep no ledger snapshot"
        );
    }

    #[test]
    fn accepted_phases_keep_their_ledgers() {
        let m = Machine::linear_array(3);
        let events = vec![
            te(Event::StartupBegin { tasks: 2, pes: 3 }),
            te(traffic(0, 0, 2, 2, 3)),
            te(Event::StartupEnd { length: 6 }),
            te(Event::PassBegin {
                pass: 1,
                prev_len: 6,
                rows: 1,
            }),
            te(traffic(0, 0, 1, 1, 3)),
            te(Event::PassEnd {
                pass: 1,
                accepted: true,
                length: 5,
            }),
            te(Event::PassBegin {
                pass: 2,
                prev_len: 5,
                rows: 1,
            }),
            te(Event::PassEnd {
                pass: 2,
                accepted: false,
                length: 5,
            }),
            te(traffic(0, 0, 1, 1, 3)),
            te(Event::CompactEnd {
                initial: 6,
                best: 5,
                passes: 2,
            }),
        ];
        let p = build(&events, &m);
        assert_eq!(p.pass_ledgers.len(), 2, "start-up + one accepted pass");
        assert_eq!(p.pass_ledgers[0].pass, 0);
        assert_eq!(p.pass_ledgers[0].length, 6);
        assert_eq!(p.pass_ledgers[0].edges[0].dst_pe, 2);
        assert_eq!(p.pass_ledgers[1].pass, 1);
        assert_eq!(p.pass_ledgers[1].edges[0].dst_pe, 1);
        // The final snapshot is still the authoritative ledger.
        assert_eq!(p.edges.len(), 1);
        // JSON schema unchanged: ledgers never serialize.
        assert!(!p.to_json_pretty().contains("pass_ledgers"));
    }

    #[test]
    fn diff_ledgers_ranks_by_cost_shift() {
        let before = vec![
            EdgeTraffic {
                edge: 0,
                src: 0,
                dst: 1,
                src_pe: 0,
                dst_pe: 2,
                hops: 2,
                volume: 3,
            },
            EdgeTraffic {
                edge: 1,
                src: 1,
                dst: 2,
                src_pe: 1,
                dst_pe: 2,
                hops: 1,
                volume: 1,
            },
            EdgeTraffic {
                edge: 2,
                src: 2,
                dst: 0,
                src_pe: 2,
                dst_pe: 2,
                hops: 0,
                volume: 5,
            },
        ];
        let mut after = before.clone();
        after[0].dst_pe = 0; // 6 -> 0: biggest shift
        after[0].hops = 0;
        after[1].dst_pe = 0; // 1 -> 2: smaller shift
        after[1].hops = 2;
        let deltas = diff_ledgers(&before, &after);
        assert_eq!(deltas.len(), 2, "unchanged edge 2 is not reported");
        assert_eq!(deltas[0].after.edge, 0);
        assert_eq!(deltas[0].delta(), -6);
        assert_eq!(deltas[1].after.edge, 1);
        assert_eq!(deltas[1].delta(), 1);
    }

    #[test]
    fn diff_ledgers_skips_one_sided_edges_and_the_helper_reports_them() {
        let e = |edge: u32| EdgeTraffic {
            edge,
            src: edge,
            dst: edge + 1,
            src_pe: 0,
            dst_pe: 1,
            hops: 1,
            volume: 2,
        };
        let before = vec![e(0), e(2), e(5)];
        let mut moved = e(0);
        moved.dst_pe = 2;
        moved.hops = 2;
        let after = vec![moved, e(3), e(4)];
        let deltas = diff_ledgers(&before, &after);
        assert_eq!(deltas.len(), 1, "only the shared edge 0 is diffed");
        assert_eq!(deltas[0].after.edge, 0);
        let (only_a, only_b) = one_sided_edges(&before, &after);
        assert_eq!(
            only_a.iter().map(|e| e.edge).collect::<Vec<_>>(),
            vec![2, 5]
        );
        assert_eq!(
            only_b.iter().map(|e| e.edge).collect::<Vec<_>>(),
            vec![3, 4]
        );
    }

    #[test]
    fn diff_ledgers_of_identical_ledgers_is_empty() {
        let ledger = vec![EdgeTraffic {
            edge: 0,
            src: 0,
            dst: 1,
            src_pe: 0,
            dst_pe: 2,
            hops: 2,
            volume: 3,
        }];
        assert!(diff_ledgers(&ledger, &ledger).is_empty());
        let (a, b) = one_sided_edges(&ledger, &ledger);
        assert!(a.is_empty() && b.is_empty());
    }

    #[test]
    fn route_label_handles_zero_cost_routes() {
        // A crossing edge with zero charged hops (ideal machine: every
        // pair adjacent at distance 0) must not claim a local route.
        let zero = EdgeTraffic {
            edge: 0,
            src: 0,
            dst: 1,
            src_pe: 0,
            dst_pe: 2,
            hops: 0,
            volume: 4,
        };
        assert_eq!(route_label(None, &zero), "PE1..PE3 (0 hops)");
        // Zero volume still routes: the label names the path, the cost
        // model charges nothing.
        let m = Machine::linear_array(3);
        let routes = RoutingTable::new(&m);
        let free = EdgeTraffic {
            hops: 2,
            volume: 0,
            ..zero
        };
        assert_eq!(route_label(Some(&routes), &free), "PE1>PE2>PE3");
        assert_eq!(free.cost(), 0);
    }

    #[test]
    fn route_labels_name_hops() {
        let m = Machine::linear_array(4);
        let routes = RoutingTable::new(&m);
        let crossing = EdgeTraffic {
            edge: 0,
            src: 0,
            dst: 1,
            src_pe: 0,
            dst_pe: 3,
            hops: 3,
            volume: 1,
        };
        assert_eq!(route_label(Some(&routes), &crossing), "PE1>PE2>PE3>PE4");
        let local = EdgeTraffic {
            src_pe: 1,
            dst_pe: 1,
            hops: 0,
            ..crossing
        };
        assert_eq!(route_label(Some(&routes), &local), "local@PE2");
        assert_eq!(route_label(None, &crossing), "PE1..PE4 (3 hops)");
    }

    #[test]
    fn pass_diff_notes_name_the_moved_edges() {
        let m = Machine::linear_array(3);
        let events = vec![
            te(Event::StartupBegin { tasks: 2, pes: 3 }),
            te(traffic(0, 0, 2, 2, 3)),
            te(Event::StartupEnd { length: 6 }),
            te(Event::PassBegin {
                pass: 1,
                prev_len: 6,
                rows: 1,
            }),
            te(traffic(0, 0, 1, 1, 3)),
            te(Event::PassEnd {
                pass: 1,
                accepted: true,
                length: 5,
            }),
            te(traffic(0, 0, 1, 1, 3)),
            te(Event::CompactEnd {
                initial: 6,
                best: 5,
                passes: 1,
            }),
        ];
        let p = build(&events, &m);
        let notes = pass_diff_notes(&p, &m, 5, |n| format!("n{n}"));
        assert_eq!(notes.len(), 1);
        assert_eq!(notes[0].0, 1);
        let note = &notes[0].1;
        assert!(
            note.contains("ledger diff vs pass 0: comm 6 -> 3 (-3), 1 of 1 edge(s) moved"),
            "{note}"
        );
        assert!(
            note.contains("e0 n0->n1: cost 6 -> 3 (-3), PE1>PE2>PE3 -> PE1>PE2"),
            "{note}"
        );
    }

    #[test]
    fn json_is_deterministic() {
        let m = Machine::ring(4);
        let events = vec![
            te(Event::StartupBegin { tasks: 2, pes: 4 }),
            te(traffic(0, 0, 2, 2, 5)),
            te(Event::StartupEnd { length: 3 }),
            te(traffic(0, 0, 2, 2, 5)),
            te(Event::PeLoad {
                pe: 0,
                tasks: 1,
                busy: 1,
            }),
            te(Event::CompactEnd {
                initial: 3,
                best: 3,
                passes: 0,
            }),
        ];
        let a = build(&events, &m).to_json_pretty();
        let b = build(&events, &m).to_json_pretty();
        assert_eq!(a, b);
        assert!(a.contains("\"total_comm\": 10"), "{a}");
    }

    #[test]
    fn ideal_machine_routes_nothing() {
        // Ideal machines have zero hop distance everywhere: edges may
        // cross PEs but cost nothing and charge no link.
        let m = Machine::ideal(3);
        let events = vec![
            te(traffic(0, 0, 2, 0, 7)),
            te(Event::CompactEnd {
                initial: 2,
                best: 2,
                passes: 0,
            }),
        ];
        let p = build(&events, &m);
        assert_eq!(p.total_comm, 0);
        assert_eq!(p.crossing_edges, 1);
        assert!(p.links.iter().all(|l| l.volume == 0));
    }
}

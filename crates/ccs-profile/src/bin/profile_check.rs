//! `profile-check` — validates a `CommProfile` JSON document produced
//! by `cyclosched schedule --profile`.
//!
//! ```text
//! profile-check profile.json
//! ```
//!
//! Checks structure (required keys, array shapes) and conservation:
//! the sum of per-edge costs must equal `total_comm`, and crossing +
//! local edge counts must match the ledger.  Exit codes: `0` valid,
//! `1` invalid, `2` usage/IO error.  CI runs this on the artifact
//! uploaded by the profile job.

use serde::Value;
use std::process::ExitCode;

fn check(v: &Value) -> Result<(String, usize, u64), String> {
    let need = |k: &str| v.get(k).ok_or_else(|| format!("missing key `{k}`"));
    let need_u = |k: &str| {
        need(k)?
            .as_u64()
            .ok_or_else(|| format!("key `{k}` is not an unsigned integer"))
    };
    let machine = need("machine")?
        .as_str()
        .ok_or_else(|| "key `machine` is not a string".to_string())?
        .to_string();
    for k in ["version", "pes", "initial_length", "best_length", "compute"] {
        need_u(k)?;
    }
    let total_comm = need_u("total_comm")?;
    let crossing = need_u("crossing_edges")?;
    let local = need_u("local_edges")?;
    let edges = need("edges")?
        .as_array()
        .ok_or_else(|| "key `edges` is not an array".to_string())?;

    let (mut sum, mut nc, mut nl) = (0u64, 0u64, 0u64);
    for (i, e) in edges.iter().enumerate() {
        let cost = e
            .get("cost")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("edges[{i}]: missing `cost`"))?;
        let hops = e
            .get("hops")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("edges[{i}]: missing `hops`"))?;
        let volume = e
            .get("volume")
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("edges[{i}]: missing `volume`"))?;
        if cost != hops.saturating_mul(volume) {
            return Err(format!("edges[{i}]: cost {cost} != hops*volume"));
        }
        let x = e
            .get("crossing")
            .and_then(Value::as_bool)
            .ok_or_else(|| format!("edges[{i}]: missing `crossing`"))?;
        sum = sum.saturating_add(cost);
        if x {
            nc += 1;
        } else {
            nl += 1;
        }
    }
    if sum != total_comm {
        return Err(format!(
            "ledger sums to {sum} but total_comm is {total_comm}"
        ));
    }
    if nc != crossing || nl != local {
        return Err(format!(
            "edge counts {nc}/{nl} disagree with crossing_edges/local_edges {crossing}/{local}"
        ));
    }
    for k in ["links", "pes_detail", "passes"] {
        need(k)?
            .as_array()
            .ok_or_else(|| format!("key `{k}` is not an array"))?;
    }
    Ok((machine, edges.len(), total_comm))
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: profile-check <profile.json>");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("profile-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let value: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("{path}: INVALID — not JSON: {e}");
            return ExitCode::FAILURE;
        }
    };
    match check(&value) {
        Ok((machine, edges, comm)) => {
            println!("{path}: OK — {machine}, {edges} ledger rows, total comm {comm}");
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            ExitCode::FAILURE
        }
    }
}

//! ASCII renderers for a [`CommProfile`](crate::CommProfile).
//!
//! [`heatmap`] draws the PE-to-PE hop-weighted traffic matrix plus a
//! per-link load bar chart — a terminal-native view of which parts of
//! the fabric the schedule actually stresses.  Pure functions of the
//! profile, so the output is as deterministic as the profile itself.

use crate::CommProfile;
use std::fmt::Write as _;

/// Intensity ramp for the matrix cells, dimmest to brightest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Largest PE count the matrix view renders before falling back to the
/// link list only (a 25+ wide matrix wraps on a standard terminal).
const MAX_MATRIX_PES: u32 = 24;

fn intensity(x: u64, max: u64) -> char {
    if x == 0 || max == 0 {
        return RAMP[0] as char;
    }
    // 1..=max maps onto the non-blank ramp cells.
    let steps = (RAMP.len() - 1) as u64;
    let ix = 1 + (x.saturating_mul(steps - 1)) / max;
    RAMP[ix as usize] as char
}

fn bar(x: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let filled = ((x.saturating_mul(width as u64)) / max) as usize;
    let filled = if x > 0 { filled.max(1) } else { 0 };
    "#".repeat(filled.min(width))
}

/// Renders the profile's traffic picture:
///
/// * a summary line (machine, lengths, comm vs. compute);
/// * the PE-to-PE matrix of hop-weighted crossing costs (sources are
///   rows, destinations columns) when the machine has at most
///   24 PEs;
/// * one load bar per physical link, scaled to the hottest link.
pub fn heatmap(p: &CommProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "comm profile: {} — {} PEs, length {} -> {}, comm {} / compute {}",
        p.machine, p.pes, p.initial_length, p.best_length, p.total_comm, p.compute
    );
    let _ = writeln!(
        out,
        "edges: {} crossing, {} local",
        p.crossing_edges, p.local_edges
    );

    // PE-to-PE hop-weighted cost matrix from the ledger.
    if p.pes > 0 && p.pes <= MAX_MATRIX_PES {
        let n = p.pes as usize;
        let mut cells = vec![0u64; n * n];
        for e in &p.edges {
            let (s, d) = (e.src_pe as usize, e.dst_pe as usize);
            if s < n && d < n && e.crossing() {
                cells[s * n + d] = cells[s * n + d].saturating_add(e.cost());
            }
        }
        let max = cells.iter().copied().max().unwrap_or(0);
        let _ = writeln!(out, "traffic matrix (rows: src PE, cols: dst PE):");
        let _ = write!(out, "      ");
        for d in 0..n {
            let _ = write!(out, "{:>3}", d + 1);
        }
        out.push('\n');
        for s in 0..n {
            let _ = write!(out, "  PE{:<2}", s + 1);
            for d in 0..n {
                let _ = write!(out, "  {}", intensity(cells[s * n + d], max));
            }
            out.push('\n');
        }
        if max > 0 {
            let _ = writeln!(out, "  scale: blank=0 .. '@'={max}");
        }
    }

    // Per-link load bars.
    if !p.links.is_empty() {
        let max = p.links.iter().map(|l| l.volume).max().unwrap_or(0);
        let _ = writeln!(out, "link loads (volume routed over each link):");
        for l in &p.links {
            let _ = writeln!(
                out,
                "  PE{:<2}-PE{:<2} {:>6}  {}",
                l.a + 1,
                l.b + 1,
                l.volume,
                bar(l.volume, max, 32)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeTraffic, LinkLoad};

    fn profile() -> CommProfile {
        CommProfile {
            machine: "Linear Array 3".to_string(),
            pes: 3,
            initial_length: 6,
            best_length: 5,
            compute: 5,
            total_comm: 6,
            crossing_edges: 1,
            local_edges: 1,
            edges: vec![
                EdgeTraffic {
                    edge: 0,
                    src: 0,
                    dst: 1,
                    src_pe: 0,
                    dst_pe: 2,
                    hops: 2,
                    volume: 3,
                },
                EdgeTraffic {
                    edge: 1,
                    src: 1,
                    dst: 2,
                    src_pe: 1,
                    dst_pe: 1,
                    hops: 0,
                    volume: 4,
                },
            ],
            links: vec![
                LinkLoad {
                    a: 0,
                    b: 1,
                    volume: 3,
                    messages: 1,
                },
                LinkLoad {
                    a: 1,
                    b: 2,
                    volume: 3,
                    messages: 1,
                },
            ],
            pe_rows: Vec::new(),
            passes: Vec::new(),
        }
    }

    #[test]
    fn heatmap_mentions_machine_and_links() {
        let text = heatmap(&profile());
        assert!(text.contains("Linear Array 3"), "{text}");
        assert!(text.contains("traffic matrix"), "{text}");
        assert!(text.contains("link loads"), "{text}");
        assert!(text.contains("PE1 -PE2"), "{text}");
    }

    #[test]
    fn heatmap_is_deterministic() {
        assert_eq!(heatmap(&profile()), heatmap(&profile()));
    }

    #[test]
    fn intensity_endpoints() {
        assert_eq!(intensity(0, 10), ' ');
        assert_eq!(intensity(10, 10), '@');
        assert_eq!(bar(0, 10, 8), "");
        assert_eq!(bar(10, 10, 8), "########");
    }
}

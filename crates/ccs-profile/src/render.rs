//! Renderers for a [`CommProfile`](crate::CommProfile).
//!
//! [`heatmap`] draws the PE-to-PE hop-weighted traffic matrix plus a
//! per-link load bar chart — a terminal-native view of which parts of
//! the fabric the schedule actually stresses.  [`heatmap_svg`] is the
//! rich equivalent: a self-contained SVG of the same matrix and link
//! bars, written by `cyclosched schedule --heatmap-svg` and embedded
//! per accepted pass by the `ccs-report` HTML report.  Pure functions
//! of the profile, so the output is as deterministic as the profile
//! itself.
//!
//! Everything interpolated into SVG/HTML text content goes through
//! [`esc`] — the one audited escape helper (the `escaped-html-output`
//! repo lint enforces this for every markup renderer in the workspace's
//! report path).

use crate::CommProfile;
use crate::{EdgeTraffic, LinkLoad};
use std::fmt::Write as _;

/// Intensity ramp for the matrix cells, dimmest to brightest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Largest PE count the matrix view renders before falling back to the
/// link list only (a 25+ wide matrix wraps on a standard terminal).
const MAX_MATRIX_PES: u32 = 24;

fn intensity(x: u64, max: u64) -> char {
    if x == 0 || max == 0 {
        return RAMP[0] as char;
    }
    // 1..=max maps onto the non-blank ramp cells.
    let steps = (RAMP.len() - 1) as u64;
    let ix = 1 + (x.saturating_mul(steps - 1)) / max;
    RAMP[ix as usize] as char
}

fn bar(x: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let filled = ((x.saturating_mul(width as u64)) / max) as usize;
    let filled = if x > 0 { filled.max(1) } else { 0 };
    "#".repeat(filled.min(width))
}

/// Renders the profile's traffic picture:
///
/// * a summary line (machine, lengths, comm vs. compute);
/// * the PE-to-PE matrix of hop-weighted crossing costs (sources are
///   rows, destinations columns) when the machine has at most
///   24 PEs;
/// * one load bar per physical link, scaled to the hottest link.
pub fn heatmap(p: &CommProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "comm profile: {} — {} PEs, length {} -> {}, comm {} / compute {}",
        p.machine, p.pes, p.initial_length, p.best_length, p.total_comm, p.compute
    );
    let _ = writeln!(
        out,
        "edges: {} crossing, {} local",
        p.crossing_edges, p.local_edges
    );

    // PE-to-PE hop-weighted cost matrix from the ledger.
    if p.pes > 0 && p.pes <= MAX_MATRIX_PES {
        let n = p.pes as usize;
        let mut cells = vec![0u64; n * n];
        for e in &p.edges {
            let (s, d) = (e.src_pe as usize, e.dst_pe as usize);
            if s < n && d < n && e.crossing() {
                cells[s * n + d] = cells[s * n + d].saturating_add(e.cost());
            }
        }
        let max = cells.iter().copied().max().unwrap_or(0);
        let _ = writeln!(out, "traffic matrix (rows: src PE, cols: dst PE):");
        let _ = write!(out, "      ");
        for d in 0..n {
            let _ = write!(out, "{:>3}", d + 1);
        }
        out.push('\n');
        for s in 0..n {
            let _ = write!(out, "  PE{:<2}", s + 1);
            for d in 0..n {
                let _ = write!(out, "  {}", intensity(cells[s * n + d], max));
            }
            out.push('\n');
        }
        if max > 0 {
            let _ = writeln!(out, "  scale: blank=0 .. '@'={max}");
        }
    }

    // Per-link load bars.
    if !p.links.is_empty() {
        let max = p.links.iter().map(|l| l.volume).max().unwrap_or(0);
        let _ = writeln!(out, "link loads (volume routed over each link):");
        for l in &p.links {
            let _ = writeln!(
                out,
                "  PE{:<2}-PE{:<2} {:>6}  {}",
                l.a + 1,
                l.b + 1,
                l.volume,
                bar(l.volume, max, 32)
            );
        }
    }
    out
}

/// Escapes `s` for HTML/SVG text and attribute contexts: the five
/// XML-special characters become entities.  This is the single audited
/// escape helper of the reporting path — `ccs-report` re-exports it,
/// and the `escaped-html-output` repo lint keeps every markup
/// interpolation routed through it.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Sequential heat ramp (OrRd-style), dimmest to hottest; index 0 is
/// the zero-traffic cell.  Mirrors the ASCII [`RAMP`].
const HEAT: [&str; 10] = [
    "#ffffff", "#fef0d9", "#fdd49e", "#fdbb84", "#fc8d59", "#ef6548", "#d7301f", "#b30000",
    "#7f0000", "#4c0000",
];

fn heat_color(x: u64, max: u64) -> &'static str {
    if x == 0 || max == 0 {
        return HEAT[0];
    }
    let steps = (HEAT.len() - 1) as u64;
    let ix = 1 + (x.saturating_mul(steps - 1)) / max;
    HEAT[ix as usize]
}

/// Geometry constants of the SVG heatmap.
const CELL: u32 = 18;
const LEFT: u32 = 48;
const TOP: u32 = 40;
const BAR_W: u32 = 240;
const ROW_H: u32 = 16;

/// Rendering options of [`heatmap_panel`], the generic heatmap
/// renderer behind the embedded, standalone, diff-side, and sweep-grid
/// panels.
#[derive(Clone, Copy, Debug, Default)]
pub struct PanelOptions<'a> {
    /// Whether link loads are meaningful on the profiled machine
    /// (see [`crate::routable`]); drives the conservation marker.
    pub routable: bool,
    /// Adds the `xmlns` attribute so the SVG opens outside HTML.
    pub standalone: bool,
    /// Marks the panel as one side of a multi-run diff page
    /// (`data-side="a"` / `data-side="b"`); `report-check` requires
    /// conserved traffic on *both* sides when either marker appears.
    pub side: Option<&'a str>,
    /// Marks the panel as one sweep-grid cell (`data-cell="<id>"`);
    /// `report-check` counts these against the grid's declared total.
    pub cell: Option<&'a str>,
    /// Compact geometry for grid tiles (smaller cells, shorter bars).
    pub mini: bool,
}

/// Geometry of one panel, full-size or mini.
struct PanelGeometry {
    cell: u32,
    left: u32,
    top: u32,
    bar_w: u32,
    row_h: u32,
    min_w: u32,
}

impl PanelGeometry {
    fn of(mini: bool) -> Self {
        if mini {
            PanelGeometry {
                cell: 10,
                left: 34,
                top: 28,
                bar_w: 110,
                row_h: 12,
                min_w: 220,
            }
        } else {
            PanelGeometry {
                cell: CELL,
                left: LEFT,
                top: TOP,
                bar_w: BAR_W,
                row_h: ROW_H,
                min_w: 360,
            }
        }
    }
}

/// Renders one edge ledger and its link loads as an SVG heatmap: the
/// PE-to-PE hop-weighted crossing-cost matrix (rows = source PE,
/// columns = destination PE) plus one load bar per physical link.
///
/// The `<svg>` element carries machine-readable conservation data:
/// `data-ledger-total` (Σ hop·volume over crossing ledger rows) and
/// `data-link-total` (Σ volume charged to links).  When `routable` is
/// `true` the two are equal by construction — `report-check` verifies
/// exactly that invariant on every embedded heatmap.  `standalone`
/// adds the `xmlns` attribute so the file opens outside an HTML page.
pub fn heatmap_svg_panel(
    caption: &str,
    pes: u32,
    edges: &[EdgeTraffic],
    links: &[LinkLoad],
    routable: bool,
    standalone: bool,
) -> String {
    heatmap_panel(
        caption,
        pes,
        edges,
        links,
        PanelOptions {
            routable,
            standalone,
            ..PanelOptions::default()
        },
    )
}

/// [`heatmap_svg_panel`] with full [`PanelOptions`]: diff-side and
/// grid-cell markers, mini geometry.
pub fn heatmap_panel(
    caption: &str,
    pes: u32,
    edges: &[EdgeTraffic],
    links: &[LinkLoad],
    opts: PanelOptions<'_>,
) -> String {
    let PanelOptions {
        routable,
        standalone,
        side,
        cell,
        mini,
    } = opts;
    let geo = PanelGeometry::of(mini);
    let n = pes as usize;
    let ledger_total: u64 = edges
        .iter()
        .filter(|e| e.crossing())
        .map(|e| e.cost())
        .fold(0u64, u64::saturating_add);
    let link_total: u64 = links
        .iter()
        .map(|l| l.volume)
        .fold(0u64, u64::saturating_add);

    // Matrix cells: hop-weighted crossing cost per (src PE, dst PE).
    let mut cells = vec![0u64; n * n];
    for e in edges {
        let (s, d) = (e.src_pe as usize, e.dst_pe as usize);
        if s < n && d < n && e.crossing() {
            cells[s * n + d] = cells[s * n + d].saturating_add(e.cost());
        }
    }
    let cell_max = cells.iter().copied().max().unwrap_or(0);
    let link_max = links.iter().map(|l| l.volume).max().unwrap_or(0);

    let (gc, gl, gt, gb, gr) = (geo.cell, geo.left, geo.top, geo.bar_w, geo.row_h);
    let matrix_h = u32::try_from(n).unwrap_or(0) * gc;
    let links_h = u32::try_from(links.len()).unwrap_or(0) * gr;
    let links_top = gt + matrix_h + 24;
    let width = (gl + u32::try_from(n).unwrap_or(0) * gc + 24)
        .max(gl + 64 + gb + 72)
        .max(geo.min_w);
    let height = links_top + links_h + 16;

    let mut out = String::new();
    let xmlns = if standalone {
        r#" xmlns="http://www.w3.org/2000/svg""#
    } else {
        ""
    };
    let class = if mini { "heatmap mini" } else { "heatmap" };
    let mut marks = String::new();
    if let Some(s) = side {
        let _ = write!(marks, r#" data-side="{}""#, esc(s));
    }
    if let Some(c) = cell {
        let _ = write!(marks, r#" data-cell="{}""#, esc(c));
    }
    let _ = writeln!(
        out,
        r#"<svg{xmlns} class="{class}" width="{width}" height="{height}" viewBox="0 0 {width} {height}" data-pes="{pes}"{marks} data-routable="{routable}" data-ledger-total="{ledger_total}" data-link-total="{link_total}" role="img">"#
    );
    let (tf, sf) = if mini { (10, 8) } else { (12, 10) };
    let _ = writeln!(
        out,
        r#"  <style>.hm-t{{font:{tf}px monospace;fill:#222}}.hm-s{{font:{sf}px monospace;fill:#555}}.hm-c{{stroke:#ccc;stroke-width:0.5}}</style>"#
    );
    let _ = writeln!(
        out,
        r#"  <text class="hm-t" x="4" y="15">{}</text>"#,
        esc(caption)
    );

    // Matrix: column labels, row labels, one rect per cell with a
    // hover title naming the (src, dst) pair and its cost.
    for d in 0..n {
        let x = gl + u32::try_from(d).unwrap_or(0) * gc + gc / 2;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{x}" y="{y}" text-anchor="middle">{}</text>"#,
            esc(&format!("{}", d + 1)),
            y = gt - 4
        );
    }
    for s in 0..n {
        let y = gt + u32::try_from(s).unwrap_or(0) * gc + gc / 2 + 4;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{x}" y="{y}" text-anchor="end">{}</text>"#,
            esc(&format!("PE{}", s + 1)),
            x = gl - 4
        );
        for d in 0..n {
            let v = cells[s * n + d];
            let x = gl + u32::try_from(d).unwrap_or(0) * gc;
            let yy = gt + u32::try_from(s).unwrap_or(0) * gc;
            let _ = writeln!(
                out,
                r#"  <rect class="hm-c" x="{x}" y="{yy}" width="{gc}" height="{gc}" fill="{fill}"><title>{}</title></rect>"#,
                esc(&format!("PE{} -> PE{}: cost {v}", s + 1, d + 1)),
                fill = heat_color(v, cell_max)
            );
        }
    }
    if cell_max > 0 {
        let y = gt + matrix_h + 14;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{gl}" y="{y}">{}</text>"#,
            esc(&format!("matrix scale: 0 .. {cell_max}"))
        );
    }

    // Per-link load bars, scaled to the hottest link.
    for (i, l) in links.iter().enumerate() {
        let y = links_top + u32::try_from(i).unwrap_or(0) * gr;
        let filled = if link_max == 0 || l.volume == 0 {
            0
        } else {
            let w = l.volume.saturating_mul(u64::from(gb)) / link_max;
            u32::try_from(w).unwrap_or(gb).clamp(2, gb)
        };
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{gl}" y="{ty}" text-anchor="end">{}</text>"#,
            esc(&format!("PE{}-PE{}", l.a + 1, l.b + 1)),
            ty = y + 11
        );
        let _ = writeln!(
            out,
            r#"  <rect x="{bx}" y="{ry}" width="{bw}" height="{bh}" fill="{fill}"><title>{}</title></rect>"#,
            esc(&format!(
                "link PE{}-PE{}: volume {}, {} message(s)",
                l.a + 1,
                l.b + 1,
                l.volume,
                l.messages
            )),
            bx = gl + 8,
            ry = y + 3,
            bw = filled.max(1),
            bh = gr.saturating_sub(6).max(4),
            fill = if l.volume == 0 {
                "#eee"
            } else {
                heat_color(l.volume, link_max)
            }
        );
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{tx}" y="{ty}">{}</text>"#,
            esc(&format!("{}", l.volume)),
            tx = gl + 8 + gb + 8,
            ty = y + 11
        );
    }
    out.push_str("</svg>\n");
    out
}

/// Diverging ramp for signed deltas: index 0 is zero, higher indices
/// hotter.  Blues for removed traffic, reds for added.
const DIV_NEG: [&str; 5] = ["#ffffff", "#c6dbef", "#9ecae1", "#4292c6", "#084594"];
const DIV_POS: [&str; 5] = ["#ffffff", "#fdd49e", "#fc8d59", "#d7301f", "#7f0000"];

fn div_color(v: i64, max: u64) -> &'static str {
    if v == 0 || max == 0 {
        return DIV_NEG[0];
    }
    let steps = (DIV_NEG.len() - 1) as u64;
    let ix = (1 + (v.unsigned_abs().saturating_mul(steps - 1)) / max) as usize;
    if v < 0 {
        DIV_NEG[ix]
    } else {
        DIV_POS[ix]
    }
}

/// One row of the per-link delta chart: a link present on either side,
/// with the signed volume shift `after - before` (a link only one side
/// has charges its full volume with sign).
struct LinkDelta {
    a: u32,
    b: u32,
    delta: i64,
    tag: &'static str,
}

fn link_deltas(before: &[LinkLoad], after: &[LinkLoad]) -> Vec<LinkDelta> {
    let signed = |v: u64| i64::try_from(v).unwrap_or(i64::MAX);
    let mut rows: Vec<LinkDelta> = before
        .iter()
        .map(|l| match after.iter().find(|r| (r.a, r.b) == (l.a, l.b)) {
            Some(r) => LinkDelta {
                a: l.a,
                b: l.b,
                delta: signed(r.volume).saturating_sub(signed(l.volume)),
                tag: "both",
            },
            None => LinkDelta {
                a: l.a,
                b: l.b,
                delta: signed(l.volume).saturating_neg(),
                tag: "A only",
            },
        })
        .collect();
    rows.extend(
        after
            .iter()
            .filter(|r| !before.iter().any(|l| (l.a, l.b) == (r.a, r.b)))
            .map(|r| LinkDelta {
                a: r.a,
                b: r.b,
                delta: signed(r.volume),
                tag: "B only",
            }),
    );
    rows
}

/// Renders the signed traffic shift between two edge ledgers as an SVG:
/// a PE-to-PE matrix of `Δcost = cost_B - cost_A` on a diverging ramp
/// (blues = traffic removed, reds = added), plus one signed bar per
/// physical link of either machine (links only one side has charge
/// their full volume with sign).  `pes` spans both runs; the panel is
/// marked `data-side="delta"` and carries no conservation totals (a
/// signed difference conserves nothing).
pub fn delta_heatmap_svg(
    caption: &str,
    pes: u32,
    before: &[EdgeTraffic],
    after: &[EdgeTraffic],
    before_links: &[LinkLoad],
    after_links: &[LinkLoad],
) -> String {
    let n = pes as usize;
    let mut cells = vec![0i64; n * n];
    let charge = |cells: &mut Vec<i64>, edges: &[EdgeTraffic], sign: i64| {
        for e in edges {
            let (s, d) = (e.src_pe as usize, e.dst_pe as usize);
            if s < n && d < n && e.crossing() {
                let cost = i64::try_from(e.cost()).unwrap_or(i64::MAX);
                cells[s * n + d] = cells[s * n + d].saturating_add(sign.saturating_mul(cost));
            }
        }
    };
    charge(&mut cells, before, -1);
    charge(&mut cells, after, 1);
    let cell_max = cells.iter().map(|v| v.unsigned_abs()).max().unwrap_or(0);

    let rows = link_deltas(before_links, after_links);
    let link_max = rows
        .iter()
        .map(|r| r.delta.unsigned_abs())
        .max()
        .unwrap_or(0);

    let matrix_h = u32::try_from(n).unwrap_or(0) * CELL;
    let links_h = u32::try_from(rows.len()).unwrap_or(0) * ROW_H;
    let links_top = TOP + matrix_h + 24;
    let width = (LEFT + u32::try_from(n).unwrap_or(0) * CELL + 24)
        .max(LEFT + 64 + BAR_W + 104)
        .max(360);
    let height = links_top + links_h + 16;

    let mut out = String::new();
    let _ = writeln!(
        out,
        r#"<svg class="heatmap delta" width="{width}" height="{height}" viewBox="0 0 {width} {height}" data-pes="{pes}" data-side="delta" data-routable="false" role="img">"#
    );
    let _ = writeln!(
        out,
        r#"  <style>.hm-t{{font:12px monospace;fill:#222}}.hm-s{{font:10px monospace;fill:#555}}.hm-c{{stroke:#ccc;stroke-width:0.5}}</style>"#
    );
    let _ = writeln!(
        out,
        r#"  <text class="hm-t" x="4" y="15">{}</text>"#,
        esc(caption)
    );
    for d in 0..n {
        let x = LEFT + u32::try_from(d).unwrap_or(0) * CELL + CELL / 2;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{x}" y="{y}" text-anchor="middle">{}</text>"#,
            esc(&format!("{}", d + 1)),
            y = TOP - 4
        );
    }
    for s in 0..n {
        let y = TOP + u32::try_from(s).unwrap_or(0) * CELL + CELL / 2 + 4;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{x}" y="{y}" text-anchor="end">{}</text>"#,
            esc(&format!("PE{}", s + 1)),
            x = LEFT - 4
        );
        for d in 0..n {
            let v = cells[s * n + d];
            let x = LEFT + u32::try_from(d).unwrap_or(0) * CELL;
            let yy = TOP + u32::try_from(s).unwrap_or(0) * CELL;
            let _ = writeln!(
                out,
                r#"  <rect class="hm-c" x="{x}" y="{yy}" width="{CELL}" height="{CELL}" fill="{fill}"><title>{}</title></rect>"#,
                esc(&format!("PE{} -> PE{}: delta {v:+}", s + 1, d + 1)),
                fill = div_color(v, cell_max)
            );
        }
    }
    if cell_max > 0 {
        let y = TOP + matrix_h + 14;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{LEFT}" y="{y}">{}</text>"#,
            esc(&format!("delta scale: -{cell_max} .. +{cell_max}"))
        );
    }
    for (i, r) in rows.iter().enumerate() {
        let y = links_top + u32::try_from(i).unwrap_or(0) * ROW_H;
        let filled = if link_max == 0 || r.delta == 0 {
            0
        } else {
            let w = r.delta.unsigned_abs().saturating_mul(u64::from(BAR_W)) / link_max;
            u32::try_from(w).unwrap_or(BAR_W).clamp(2, BAR_W)
        };
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{LEFT}" y="{ty}" text-anchor="end">{}</text>"#,
            esc(&format!("PE{}-PE{}", r.a + 1, r.b + 1)),
            ty = y + 11
        );
        let _ = writeln!(
            out,
            r#"  <rect x="{bx}" y="{ry}" width="{bw}" height="10" fill="{fill}"><title>{}</title></rect>"#,
            esc(&format!(
                "link PE{}-PE{} ({}): volume delta {:+}",
                r.a + 1,
                r.b + 1,
                r.tag,
                r.delta
            )),
            bx = LEFT + 8,
            ry = y + 3,
            bw = filled.max(1),
            fill = if r.delta == 0 {
                "#eee"
            } else {
                div_color(r.delta, link_max)
            }
        );
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{tx}" y="{ty}">{}</text>"#,
            esc(&format!("{:+} ({})", r.delta, r.tag)),
            tx = LEFT + 8 + BAR_W + 8,
            ty = y + 11
        );
    }
    out.push_str("</svg>\n");
    out
}

/// The profile's final best-schedule heatmap as a standalone SVG
/// document (`cyclosched schedule --heatmap-svg FILE`).  `routable`
/// comes from [`crate::routable`] on the machine the run targeted.
pub fn heatmap_svg(p: &CommProfile, routable: bool) -> String {
    let caption = format!(
        "{} — final best schedule: comm {} / compute {}, length {} -> {}",
        p.machine, p.total_comm, p.compute, p.initial_length, p.best_length
    );
    heatmap_svg_panel(&caption, p.pes, &p.edges, &p.links, routable, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CommProfile {
        CommProfile {
            machine: "Linear Array 3".to_string(),
            pes: 3,
            initial_length: 6,
            best_length: 5,
            compute: 5,
            total_comm: 6,
            crossing_edges: 1,
            local_edges: 1,
            edges: vec![
                EdgeTraffic {
                    edge: 0,
                    src: 0,
                    dst: 1,
                    src_pe: 0,
                    dst_pe: 2,
                    hops: 2,
                    volume: 3,
                },
                EdgeTraffic {
                    edge: 1,
                    src: 1,
                    dst: 2,
                    src_pe: 1,
                    dst_pe: 1,
                    hops: 0,
                    volume: 4,
                },
            ],
            links: vec![
                LinkLoad {
                    a: 0,
                    b: 1,
                    volume: 3,
                    messages: 1,
                },
                LinkLoad {
                    a: 1,
                    b: 2,
                    volume: 3,
                    messages: 1,
                },
            ],
            pe_rows: Vec::new(),
            passes: Vec::new(),
            pass_ledgers: Vec::new(),
        }
    }

    #[test]
    fn heatmap_mentions_machine_and_links() {
        let text = heatmap(&profile());
        assert!(text.contains("Linear Array 3"), "{text}");
        assert!(text.contains("traffic matrix"), "{text}");
        assert!(text.contains("link loads"), "{text}");
        assert!(text.contains("PE1 -PE2"), "{text}");
    }

    #[test]
    fn heatmap_is_deterministic() {
        assert_eq!(heatmap(&profile()), heatmap(&profile()));
    }

    #[test]
    fn intensity_endpoints() {
        assert_eq!(intensity(0, 10), ' ');
        assert_eq!(intensity(10, 10), '@');
        assert_eq!(bar(0, 10, 8), "");
        assert_eq!(bar(10, 10, 8), "########");
    }

    #[test]
    fn esc_covers_all_specials_and_passes_plain_text() {
        assert_eq!(esc("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
        assert_eq!(esc("Mesh 2x2"), "Mesh 2x2");
        assert_eq!(esc(""), "");
    }

    #[test]
    fn heatmap_svg_is_deterministic_and_carries_conservation_data() {
        let p = profile();
        let a = heatmap_svg(&p, true);
        assert_eq!(a, heatmap_svg(&p, true));
        assert!(a.starts_with("<svg"), "{a}");
        assert!(a.trim_end().ends_with("</svg>"), "{a}");
        assert!(a.contains(r#"xmlns="http://www.w3.org/2000/svg""#));
        // Ledger: one crossing edge of cost 6; links charge 3+3 volume.
        assert!(a.contains(r#"data-ledger-total="6""#), "{a}");
        assert!(a.contains(r#"data-link-total="6""#), "{a}");
        assert!(a.contains(r#"data-routable="true""#), "{a}");
        assert!(a.contains("Linear Array 3"), "{a}");
        assert!(a.contains("PE1-PE2"), "{a}");
    }

    #[test]
    fn heatmap_svg_escapes_hostile_captions() {
        let mut p = profile();
        p.machine = "<script>alert('x')&\"".to_string();
        let svg = heatmap_svg(&p, true);
        assert!(!svg.contains("<script"), "{svg}");
        assert!(svg.contains("&lt;script&gt;"), "{svg}");
    }

    #[test]
    fn heatmap_svg_panel_embeds_without_xmlns() {
        let p = profile();
        let svg = heatmap_svg_panel("pass 1", p.pes, &p.edges, &p.links, false, false);
        assert!(svg.starts_with("<svg class="), "{svg}");
        assert!(!svg.contains("xmlns"), "{svg}");
        assert!(svg.contains(r#"data-routable="false""#), "{svg}");
    }

    #[test]
    fn heatmap_svg_viewbox_matches_dimensions() {
        let p = profile();
        let svg = heatmap_svg(&p, true);
        let wh = svg
            .split_once(r#"width=""#)
            .and_then(|(_, r)| r.split_once('"'))
            .map(|(w, _)| w.to_string())
            .unwrap_or_default();
        assert!(svg.contains(&format!(r#"viewBox="0 0 {wh} "#)), "{svg}");
    }

    #[test]
    fn panel_options_tag_side_and_cell_escaped() {
        let p = profile();
        let svg = heatmap_panel(
            "cap",
            p.pes,
            &p.edges,
            &p.links,
            PanelOptions {
                routable: true,
                side: Some("a"),
                cell: Some("fig1/mesh<2>"),
                ..PanelOptions::default()
            },
        );
        assert!(svg.contains(r#" data-side="a""#), "{svg}");
        assert!(svg.contains(r#" data-cell="fig1/mesh&lt;2&gt;""#), "{svg}");
        assert!(!svg.contains("mesh<2>"), "{svg}");
    }

    #[test]
    fn mini_panel_is_smaller_than_full_panel() {
        let p = profile();
        let full = heatmap_panel("cap", p.pes, &p.edges, &p.links, PanelOptions::default());
        let mini = heatmap_panel(
            "cap",
            p.pes,
            &p.edges,
            &p.links,
            PanelOptions {
                mini: true,
                ..PanelOptions::default()
            },
        );
        let width = |svg: &str| -> u32 {
            svg.split_once(r#"width=""#)
                .and_then(|(_, r)| r.split_once('"'))
                .and_then(|(w, _)| w.parse().ok())
                .unwrap_or(0)
        };
        assert!(width(&mini) < width(&full), "{mini}\n{full}");
        assert!(mini.contains(r#"class="heatmap mini""#), "{mini}");
        assert_eq!(mini, {
            let p = profile();
            heatmap_panel(
                "cap",
                p.pes,
                &p.edges,
                &p.links,
                PanelOptions {
                    mini: true,
                    ..PanelOptions::default()
                },
            )
        });
    }

    #[test]
    fn delta_heatmap_charges_signed_shifts_and_one_sided_links() {
        let p = profile();
        let mut after = p.edges.clone();
        // The crossing edge now lands one hop closer: cost 6 -> 3.
        after[0].dst_pe = 1;
        after[0].hops = 1;
        let after_links = vec![LinkLoad {
            a: 0,
            b: 1,
            volume: 3,
            messages: 1,
        }];
        let svg = delta_heatmap_svg("A vs B", p.pes, &p.edges, &after, &p.links, &after_links);
        assert!(svg.starts_with("<svg class=\"heatmap delta\""), "{svg}");
        assert!(svg.contains(r#"data-side="delta""#), "{svg}");
        assert!(svg.contains(r#"data-routable="false""#), "{svg}");
        // PE1->PE3 loses its 6, PE1->PE2 gains 3.
        assert!(svg.contains("PE1 -&gt; PE3: delta -6"), "{svg}");
        assert!(svg.contains("PE1 -&gt; PE2: delta +3"), "{svg}");
        // Link PE2-PE3 exists only on side A: charged -3, tagged.
        assert!(
            svg.contains("link PE2-PE3 (A only): volume delta -3"),
            "{svg}"
        );
        assert!(
            svg.contains("link PE1-PE2 (both): volume delta +0"),
            "{svg}"
        );
        let wh = svg
            .split_once(r#"width=""#)
            .and_then(|(_, r)| r.split_once('"'))
            .map(|(w, _)| w.to_string())
            .unwrap_or_default();
        assert!(svg.contains(&format!(r#"viewBox="0 0 {wh} "#)), "{svg}");
        assert_eq!(
            svg,
            delta_heatmap_svg("A vs B", p.pes, &p.edges, &after, &p.links, &after_links)
        );
    }

    #[test]
    fn delta_heatmap_of_identical_sides_is_all_zero() {
        let p = profile();
        let svg = delta_heatmap_svg("same", p.pes, &p.edges, &p.edges, &p.links, &p.links);
        assert!(!svg.contains("delta scale"), "{svg}");
        assert!(svg.contains("delta +0"), "{svg}");
    }

    #[test]
    fn div_color_endpoints() {
        assert_eq!(div_color(0, 10), "#ffffff");
        assert_eq!(div_color(10, 10), DIV_POS[4]);
        assert_eq!(div_color(-10, 10), DIV_NEG[4]);
        assert_eq!(div_color(5, 0), "#ffffff");
    }
}

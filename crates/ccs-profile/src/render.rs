//! Renderers for a [`CommProfile`](crate::CommProfile).
//!
//! [`heatmap`] draws the PE-to-PE hop-weighted traffic matrix plus a
//! per-link load bar chart — a terminal-native view of which parts of
//! the fabric the schedule actually stresses.  [`heatmap_svg`] is the
//! rich equivalent: a self-contained SVG of the same matrix and link
//! bars, written by `cyclosched schedule --heatmap-svg` and embedded
//! per accepted pass by the `ccs-report` HTML report.  Pure functions
//! of the profile, so the output is as deterministic as the profile
//! itself.
//!
//! Everything interpolated into SVG/HTML text content goes through
//! [`esc`] — the one audited escape helper (the `escaped-html-output`
//! repo lint enforces this for every markup renderer in the workspace's
//! report path).

use crate::CommProfile;
use crate::{EdgeTraffic, LinkLoad};
use std::fmt::Write as _;

/// Intensity ramp for the matrix cells, dimmest to brightest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Largest PE count the matrix view renders before falling back to the
/// link list only (a 25+ wide matrix wraps on a standard terminal).
const MAX_MATRIX_PES: u32 = 24;

fn intensity(x: u64, max: u64) -> char {
    if x == 0 || max == 0 {
        return RAMP[0] as char;
    }
    // 1..=max maps onto the non-blank ramp cells.
    let steps = (RAMP.len() - 1) as u64;
    let ix = 1 + (x.saturating_mul(steps - 1)) / max;
    RAMP[ix as usize] as char
}

fn bar(x: u64, max: u64, width: usize) -> String {
    if max == 0 {
        return String::new();
    }
    let filled = ((x.saturating_mul(width as u64)) / max) as usize;
    let filled = if x > 0 { filled.max(1) } else { 0 };
    "#".repeat(filled.min(width))
}

/// Renders the profile's traffic picture:
///
/// * a summary line (machine, lengths, comm vs. compute);
/// * the PE-to-PE matrix of hop-weighted crossing costs (sources are
///   rows, destinations columns) when the machine has at most
///   24 PEs;
/// * one load bar per physical link, scaled to the hottest link.
pub fn heatmap(p: &CommProfile) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "comm profile: {} — {} PEs, length {} -> {}, comm {} / compute {}",
        p.machine, p.pes, p.initial_length, p.best_length, p.total_comm, p.compute
    );
    let _ = writeln!(
        out,
        "edges: {} crossing, {} local",
        p.crossing_edges, p.local_edges
    );

    // PE-to-PE hop-weighted cost matrix from the ledger.
    if p.pes > 0 && p.pes <= MAX_MATRIX_PES {
        let n = p.pes as usize;
        let mut cells = vec![0u64; n * n];
        for e in &p.edges {
            let (s, d) = (e.src_pe as usize, e.dst_pe as usize);
            if s < n && d < n && e.crossing() {
                cells[s * n + d] = cells[s * n + d].saturating_add(e.cost());
            }
        }
        let max = cells.iter().copied().max().unwrap_or(0);
        let _ = writeln!(out, "traffic matrix (rows: src PE, cols: dst PE):");
        let _ = write!(out, "      ");
        for d in 0..n {
            let _ = write!(out, "{:>3}", d + 1);
        }
        out.push('\n');
        for s in 0..n {
            let _ = write!(out, "  PE{:<2}", s + 1);
            for d in 0..n {
                let _ = write!(out, "  {}", intensity(cells[s * n + d], max));
            }
            out.push('\n');
        }
        if max > 0 {
            let _ = writeln!(out, "  scale: blank=0 .. '@'={max}");
        }
    }

    // Per-link load bars.
    if !p.links.is_empty() {
        let max = p.links.iter().map(|l| l.volume).max().unwrap_or(0);
        let _ = writeln!(out, "link loads (volume routed over each link):");
        for l in &p.links {
            let _ = writeln!(
                out,
                "  PE{:<2}-PE{:<2} {:>6}  {}",
                l.a + 1,
                l.b + 1,
                l.volume,
                bar(l.volume, max, 32)
            );
        }
    }
    out
}

/// Escapes `s` for HTML/SVG text and attribute contexts: the five
/// XML-special characters become entities.  This is the single audited
/// escape helper of the reporting path — `ccs-report` re-exports it,
/// and the `escaped-html-output` repo lint keeps every markup
/// interpolation routed through it.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&#39;"),
            _ => out.push(c),
        }
    }
    out
}

/// Sequential heat ramp (OrRd-style), dimmest to hottest; index 0 is
/// the zero-traffic cell.  Mirrors the ASCII [`RAMP`].
const HEAT: [&str; 10] = [
    "#ffffff", "#fef0d9", "#fdd49e", "#fdbb84", "#fc8d59", "#ef6548", "#d7301f", "#b30000",
    "#7f0000", "#4c0000",
];

fn heat_color(x: u64, max: u64) -> &'static str {
    if x == 0 || max == 0 {
        return HEAT[0];
    }
    let steps = (HEAT.len() - 1) as u64;
    let ix = 1 + (x.saturating_mul(steps - 1)) / max;
    HEAT[ix as usize]
}

/// Geometry constants of the SVG heatmap.
const CELL: u32 = 18;
const LEFT: u32 = 48;
const TOP: u32 = 40;
const BAR_W: u32 = 240;
const ROW_H: u32 = 16;

/// Renders one edge ledger and its link loads as an SVG heatmap: the
/// PE-to-PE hop-weighted crossing-cost matrix (rows = source PE,
/// columns = destination PE) plus one load bar per physical link.
///
/// The `<svg>` element carries machine-readable conservation data:
/// `data-ledger-total` (Σ hop·volume over crossing ledger rows) and
/// `data-link-total` (Σ volume charged to links).  When `routable` is
/// `true` the two are equal by construction — `report-check` verifies
/// exactly that invariant on every embedded heatmap.  `standalone`
/// adds the `xmlns` attribute so the file opens outside an HTML page.
pub fn heatmap_svg_panel(
    caption: &str,
    pes: u32,
    edges: &[EdgeTraffic],
    links: &[LinkLoad],
    routable: bool,
    standalone: bool,
) -> String {
    let n = pes as usize;
    let ledger_total: u64 = edges
        .iter()
        .filter(|e| e.crossing())
        .map(|e| e.cost())
        .fold(0u64, u64::saturating_add);
    let link_total: u64 = links
        .iter()
        .map(|l| l.volume)
        .fold(0u64, u64::saturating_add);

    // Matrix cells: hop-weighted crossing cost per (src PE, dst PE).
    let mut cells = vec![0u64; n * n];
    for e in edges {
        let (s, d) = (e.src_pe as usize, e.dst_pe as usize);
        if s < n && d < n && e.crossing() {
            cells[s * n + d] = cells[s * n + d].saturating_add(e.cost());
        }
    }
    let cell_max = cells.iter().copied().max().unwrap_or(0);
    let link_max = links.iter().map(|l| l.volume).max().unwrap_or(0);

    let matrix_h = u32::try_from(n).unwrap_or(0) * CELL;
    let links_h = u32::try_from(links.len()).unwrap_or(0) * ROW_H;
    let links_top = TOP + matrix_h + 24;
    let width = (LEFT + u32::try_from(n).unwrap_or(0) * CELL + 24)
        .max(LEFT + 64 + BAR_W + 72)
        .max(360);
    let height = links_top + links_h + 16;

    let mut out = String::new();
    let xmlns = if standalone {
        r#" xmlns="http://www.w3.org/2000/svg""#
    } else {
        ""
    };
    let _ = writeln!(
        out,
        r#"<svg{xmlns} class="heatmap" width="{width}" height="{height}" viewBox="0 0 {width} {height}" data-pes="{pes}" data-routable="{routable}" data-ledger-total="{ledger_total}" data-link-total="{link_total}" role="img">"#
    );
    let _ = writeln!(
        out,
        r#"  <style>.hm-t{{font:12px monospace;fill:#222}}.hm-s{{font:10px monospace;fill:#555}}.hm-c{{stroke:#ccc;stroke-width:0.5}}</style>"#
    );
    let _ = writeln!(
        out,
        r#"  <text class="hm-t" x="4" y="15">{}</text>"#,
        esc(caption)
    );

    // Matrix: column labels, row labels, one rect per cell with a
    // hover title naming the (src, dst) pair and its cost.
    for d in 0..n {
        let x = LEFT + u32::try_from(d).unwrap_or(0) * CELL + CELL / 2;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{x}" y="{y}" text-anchor="middle">{}</text>"#,
            esc(&format!("{}", d + 1)),
            y = TOP - 4
        );
    }
    for s in 0..n {
        let y = TOP + u32::try_from(s).unwrap_or(0) * CELL + CELL / 2 + 4;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{x}" y="{y}" text-anchor="end">{}</text>"#,
            esc(&format!("PE{}", s + 1)),
            x = LEFT - 4
        );
        for d in 0..n {
            let v = cells[s * n + d];
            let x = LEFT + u32::try_from(d).unwrap_or(0) * CELL;
            let yy = TOP + u32::try_from(s).unwrap_or(0) * CELL;
            let _ = writeln!(
                out,
                r#"  <rect class="hm-c" x="{x}" y="{yy}" width="{CELL}" height="{CELL}" fill="{fill}"><title>{}</title></rect>"#,
                esc(&format!("PE{} -> PE{}: cost {v}", s + 1, d + 1)),
                fill = heat_color(v, cell_max)
            );
        }
    }
    if cell_max > 0 {
        let y = TOP + matrix_h + 14;
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{LEFT}" y="{y}">{}</text>"#,
            esc(&format!("matrix scale: 0 .. {cell_max}"))
        );
    }

    // Per-link load bars, scaled to the hottest link.
    for (i, l) in links.iter().enumerate() {
        let y = links_top + u32::try_from(i).unwrap_or(0) * ROW_H;
        let filled = if link_max == 0 || l.volume == 0 {
            0
        } else {
            let w = l.volume.saturating_mul(u64::from(BAR_W)) / link_max;
            u32::try_from(w).unwrap_or(BAR_W).clamp(2, BAR_W)
        };
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{LEFT}" y="{ty}" text-anchor="end">{}</text>"#,
            esc(&format!("PE{}-PE{}", l.a + 1, l.b + 1)),
            ty = y + 11
        );
        let _ = writeln!(
            out,
            r#"  <rect x="{bx}" y="{ry}" width="{bw}" height="10" fill="{fill}"><title>{}</title></rect>"#,
            esc(&format!(
                "link PE{}-PE{}: volume {}, {} message(s)",
                l.a + 1,
                l.b + 1,
                l.volume,
                l.messages
            )),
            bx = LEFT + 8,
            ry = y + 3,
            bw = filled.max(1),
            fill = if l.volume == 0 {
                "#eee"
            } else {
                heat_color(l.volume, link_max)
            }
        );
        let _ = writeln!(
            out,
            r#"  <text class="hm-s" x="{tx}" y="{ty}">{}</text>"#,
            esc(&format!("{}", l.volume)),
            tx = LEFT + 8 + BAR_W + 8,
            ty = y + 11
        );
    }
    out.push_str("</svg>\n");
    out
}

/// The profile's final best-schedule heatmap as a standalone SVG
/// document (`cyclosched schedule --heatmap-svg FILE`).  `routable`
/// comes from [`crate::routable`] on the machine the run targeted.
pub fn heatmap_svg(p: &CommProfile, routable: bool) -> String {
    let caption = format!(
        "{} — final best schedule: comm {} / compute {}, length {} -> {}",
        p.machine, p.total_comm, p.compute, p.initial_length, p.best_length
    );
    heatmap_svg_panel(&caption, p.pes, &p.edges, &p.links, routable, true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> CommProfile {
        CommProfile {
            machine: "Linear Array 3".to_string(),
            pes: 3,
            initial_length: 6,
            best_length: 5,
            compute: 5,
            total_comm: 6,
            crossing_edges: 1,
            local_edges: 1,
            edges: vec![
                EdgeTraffic {
                    edge: 0,
                    src: 0,
                    dst: 1,
                    src_pe: 0,
                    dst_pe: 2,
                    hops: 2,
                    volume: 3,
                },
                EdgeTraffic {
                    edge: 1,
                    src: 1,
                    dst: 2,
                    src_pe: 1,
                    dst_pe: 1,
                    hops: 0,
                    volume: 4,
                },
            ],
            links: vec![
                LinkLoad {
                    a: 0,
                    b: 1,
                    volume: 3,
                    messages: 1,
                },
                LinkLoad {
                    a: 1,
                    b: 2,
                    volume: 3,
                    messages: 1,
                },
            ],
            pe_rows: Vec::new(),
            passes: Vec::new(),
            pass_ledgers: Vec::new(),
        }
    }

    #[test]
    fn heatmap_mentions_machine_and_links() {
        let text = heatmap(&profile());
        assert!(text.contains("Linear Array 3"), "{text}");
        assert!(text.contains("traffic matrix"), "{text}");
        assert!(text.contains("link loads"), "{text}");
        assert!(text.contains("PE1 -PE2"), "{text}");
    }

    #[test]
    fn heatmap_is_deterministic() {
        assert_eq!(heatmap(&profile()), heatmap(&profile()));
    }

    #[test]
    fn intensity_endpoints() {
        assert_eq!(intensity(0, 10), ' ');
        assert_eq!(intensity(10, 10), '@');
        assert_eq!(bar(0, 10, 8), "");
        assert_eq!(bar(10, 10, 8), "########");
    }

    #[test]
    fn esc_covers_all_specials_and_passes_plain_text() {
        assert_eq!(esc("a<b>&\"c'"), "a&lt;b&gt;&amp;&quot;c&#39;");
        assert_eq!(esc("Mesh 2x2"), "Mesh 2x2");
        assert_eq!(esc(""), "");
    }

    #[test]
    fn heatmap_svg_is_deterministic_and_carries_conservation_data() {
        let p = profile();
        let a = heatmap_svg(&p, true);
        assert_eq!(a, heatmap_svg(&p, true));
        assert!(a.starts_with("<svg"), "{a}");
        assert!(a.trim_end().ends_with("</svg>"), "{a}");
        assert!(a.contains(r#"xmlns="http://www.w3.org/2000/svg""#));
        // Ledger: one crossing edge of cost 6; links charge 3+3 volume.
        assert!(a.contains(r#"data-ledger-total="6""#), "{a}");
        assert!(a.contains(r#"data-link-total="6""#), "{a}");
        assert!(a.contains(r#"data-routable="true""#), "{a}");
        assert!(a.contains("Linear Array 3"), "{a}");
        assert!(a.contains("PE1-PE2"), "{a}");
    }

    #[test]
    fn heatmap_svg_escapes_hostile_captions() {
        let mut p = profile();
        p.machine = "<script>alert('x')&\"".to_string();
        let svg = heatmap_svg(&p, true);
        assert!(!svg.contains("<script"), "{svg}");
        assert!(svg.contains("&lt;script&gt;"), "{svg}");
    }

    #[test]
    fn heatmap_svg_panel_embeds_without_xmlns() {
        let p = profile();
        let svg = heatmap_svg_panel("pass 1", p.pes, &p.edges, &p.links, false, false);
        assert!(svg.starts_with("<svg class="), "{svg}");
        assert!(!svg.contains("xmlns"), "{svg}");
        assert!(svg.contains(r#"data-routable="false""#), "{svg}");
    }

    #[test]
    fn heatmap_svg_viewbox_matches_dimensions() {
        let p = profile();
        let svg = heatmap_svg(&p, true);
        let wh = svg
            .split_once(r#"width=""#)
            .and_then(|(_, r)| r.split_once('"'))
            .map(|(w, _)| w.to_string())
            .unwrap_or_default();
        assert!(svg.contains(&format!(r#"viewBox="0 0 {wh} "#)), "{svg}");
    }
}

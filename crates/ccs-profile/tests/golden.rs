//! Golden `CommProfile` JSON for the paper's running example on each
//! target topology.  The profile is a pure function of the
//! (deterministic) event stream and the machine — independent of build
//! profile and thread count — so the exact JSON is pinned.
//!
//! To regenerate after an intentional scheduler-semantics change:
//!
//! ```text
//! UPDATE_PROFILE_GOLDEN=1 cargo test -p ccs-profile --test golden
//! ```

use ccs_core::compact::{cyclo_compact, CompactConfig};
use ccs_topology::Machine;
use std::path::PathBuf;

fn profile_json(machine: &Machine) -> String {
    let g = ccs_workloads::paper::fig1_example();
    let (outcome, events) =
        ccs_trace::record(|| cyclo_compact(&g, machine, CompactConfig::default()));
    outcome.expect("legal");
    let mut json = ccs_profile::build(&events, machine).to_json_pretty();
    json.push('\n');
    json
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.json"))
}

fn check(name: &str, machine: &Machine) {
    let actual = profile_json(machine);
    let path = golden_path(name);
    if std::env::var_os("UPDATE_PROFILE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().expect("golden dir")).expect("mkdir");
        std::fs::write(&path, &actual).expect("write golden");
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()));
    assert_eq!(
        actual, expected,
        "CommProfile drifted for {name}; if intentional, regenerate with \
         UPDATE_PROFILE_GOLDEN=1 cargo test -p ccs-profile --test golden"
    );
}

#[test]
fn fig1_profile_on_line() {
    check("line4", &Machine::linear_array(4));
}

#[test]
fn fig1_profile_on_ring() {
    check("ring4", &Machine::ring(4));
}

#[test]
fn fig1_profile_on_mesh() {
    check("mesh2x2", &Machine::mesh(2, 2));
}

#[test]
fn fig1_profile_on_complete() {
    check("complete4", &Machine::complete(4));
}

/// The profile JSON must not depend on how many passes the recorder
/// observed being re-run: folding the same stream twice gives the same
/// bytes (pure function of the stream).
#[test]
fn profile_is_a_pure_function_of_the_stream() {
    let m = Machine::mesh(2, 2);
    assert_eq!(profile_json(&m), profile_json(&m));
}

//! Conservation law: the profile's attributed traffic must equal the
//! schedule validator's *independently computed* communication cost.
//!
//! `ccs-core` emits the attribution events; `ccs-schedule`'s checker
//! recomputes `M(PE(u), PE(v)) = hops · c(e)` straight from the graph,
//! machine, and table.  If they ever disagree, either the emission
//! sites or the cost model drifted.

use ccs_core::compact::{cyclo_compact, CompactConfig};
use ccs_model::Csdfg;
use ccs_schedule::checker::edge_comm_cost;
use ccs_topology::Machine;
use proptest::prelude::*;

fn arb_csdfg() -> impl Strategy<Value = Csdfg> {
    (2usize..8).prop_flat_map(|n| {
        let times = proptest::collection::vec(1u32..4, n);
        let edges = proptest::collection::vec((0..n, 0..n, 0u32..3, 1u32..4), 1..n * 2);
        (times, edges).prop_map(move |(times, edges)| {
            let mut g = Csdfg::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| g.add_task(format!("v{i}"), t).unwrap())
                .collect();
            for (a, b, d, c) in edges {
                let delay = if a < b { d } else { d.max(1) };
                g.add_dep(ids[a], ids[b], delay, c).unwrap();
            }
            g
        })
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        (2usize..6).prop_map(Machine::linear_array),
        (3usize..7).prop_map(Machine::ring),
        (2usize..6).prop_map(Machine::complete),
        Just(Machine::mesh(2, 2)),
        Just(Machine::hypercube(2)),
    ]
}

/// Independent oracle: comm cost of the final (graph, schedule) pair.
fn validator_comm(g: &Csdfg, m: &Machine, s: &ccs_schedule::Schedule) -> u64 {
    g.deps()
        .map(|e| u64::from(edge_comm_cost(g, m, s, e)))
        .sum()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn attributed_traffic_equals_validator_comm_cost(
        g in arb_csdfg(),
        m in arb_machine(),
    ) {
        let (result, events) = ccs_trace::record(|| {
            cyclo_compact(&g, &m, CompactConfig::default()).unwrap()
        });
        let profile = ccs_profile::build(&events, &m);

        // The ledger covers every edge of the final graph exactly once.
        prop_assert_eq!(profile.edges.len(), result.graph.deps().count());

        // Total attributed traffic == independently recomputed cost.
        let expect = validator_comm(&result.graph, &m, &result.schedule);
        prop_assert_eq!(profile.total_comm, expect);

        // Per-edge agreement, not just totals.
        for e in result.graph.deps() {
            let row = profile
                .edges
                .iter()
                .find(|r| r.edge as usize == e.index())
                .expect("ledger row for every edge");
            prop_assert_eq!(
                row.cost(),
                u64::from(edge_comm_cost(&result.graph, &m, &result.schedule, e))
            );
        }

        // Link attribution conserves hop-weighted volume: each crossing
        // edge charges its volume once per hop, so Σ link volumes ==
        // Σ hops·volume == total comm (all paper machines route every
        // hop over a physical link).
        let link_vol: u64 = profile.links.iter().map(|l| l.volume).sum();
        prop_assert_eq!(link_vol, profile.total_comm);

        // PE rows cover the whole task set and the compute total.
        let tasks: u64 = profile.pe_rows.iter().map(|r| u64::from(r.tasks)).sum();
        prop_assert_eq!(tasks, result.graph.task_count() as u64);
        let busy: u64 = profile.pe_rows.iter().map(|r| u64::from(r.busy)).sum();
        prop_assert_eq!(busy, profile.compute);
    }
}

//! The certification pass: folds a `ccs-bounds` [`OptimalityReport`]
//! into `CCS04x` diagnostics.
//!
//! Severity mapping:
//!
//! * [`codes::CERT_BOUND_EXCEEDED`] (`CCS040`) — **error**: the period
//!   beats a proven bound, so the bound engine or the validator is
//!   wrong.  This is the only certification outcome that is a bug.
//! * [`codes::CERT_OPTIMAL`] (`CCS041`) — **note**: gap 0.
//! * [`codes::CERT_GAP`] (`CCS042`) — **note**: gap within
//!   [`ACCEPTABLE_GAP_PCT`].
//! * [`codes::CERT_GAP_LARGE`] (`CCS043`) — **warning**: the schedule
//!   (or the bound family) leaves more than [`ACCEPTABLE_GAP_PCT`] on
//!   the table.

use crate::diag::{codes, Diagnostic, Report, Subject};
use ccs_bounds::{OptimalityReport, Verdict};

/// Gaps at or below this percentage are reported as the benign
/// [`codes::CERT_GAP`]; anything above becomes the
/// [`codes::CERT_GAP_LARGE`] warning.
pub const ACCEPTABLE_GAP_PCT: f64 = 25.0;

/// Folds one optimality report into `CCS04x` diagnostics.
pub fn certify_report(opt: &OptimalityReport) -> Report {
    let mut report = Report::new();
    let best = opt.best();
    let bound_desc = match best {
        Some(c) => format!("strongest bound {} (`{}`)", c.value, c.kind),
        None => "no applicable bound".to_string(),
    };
    match opt.verdict {
        Verdict::BoundExceeded => {
            report.push(
                Diagnostic::error(
                    codes::CERT_BOUND_EXCEEDED,
                    Subject::Schedule,
                    format!(
                        "period {} beats the proven lower bound — internal bug: \
                         the bound proof or the schedule validator is wrong ({bound_desc})",
                        opt.period
                    ),
                )
                .with_suggestion(
                    "re-run with the `paranoid` feature and file the witness certificate",
                ),
            );
        }
        Verdict::Optimal => {
            report.push(Diagnostic::note(
                codes::CERT_OPTIMAL,
                Subject::Schedule,
                format!("period {} is provably optimal ({bound_desc})", opt.period),
            ));
        }
        Verdict::Gap => {
            let msg = format!(
                "period {} is within {:.1}% of the {bound_desc} (gap {} steps)",
                opt.period, opt.gap_pct, opt.gap
            );
            if opt.gap_pct <= ACCEPTABLE_GAP_PCT {
                report.push(Diagnostic::note(codes::CERT_GAP, Subject::Schedule, msg));
            } else {
                report.push(
                    Diagnostic::warning(codes::CERT_GAP_LARGE, Subject::Schedule, msg)
                        .with_suggestion(
                            "raise compaction passes, try another machine shape, or accept \
                             that the bound family is loose for this pair",
                        ),
                );
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_bounds::certify_period;
    use ccs_model::Csdfg;
    use ccs_topology::Machine;

    fn pair() -> (Csdfg, Machine) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        (g, Machine::linear_array(2))
    }

    #[test]
    fn optimal_period_is_a_note() {
        let (g, m) = pair();
        let r = certify_report(&certify_period(&g, &m, 3));
        assert!(!r.has_errors());
        let note = r.notes().next().unwrap();
        assert_eq!(note.code, codes::CERT_OPTIMAL);
        assert!(note.message.contains("provably optimal"));
    }

    #[test]
    fn small_gap_is_a_note_large_gap_a_warning() {
        let (g, m) = pair();
        // Bound is 3: period 4 is a 33% gap -> warning; 3.6% can't be
        // built from integers here, so use a looser pair for the note.
        let r = certify_report(&certify_period(&g, &m, 4));
        assert_eq!(r.warnings().next().unwrap().code, codes::CERT_GAP_LARGE);
        let mut g2 = Csdfg::new();
        let ids: Vec<_> = (0..10)
            .map(|i| g2.add_task(format!("v{i}"), 1).unwrap())
            .collect();
        g2.add_dep(ids[0], ids[1], 1, 1).unwrap();
        // W = 10 on 1 usable chain -> resource bound 10 on 1 PE.
        let r2 = certify_report(&certify_period(&g2, &Machine::linear_array(1), 11));
        let note = r2.notes().next().unwrap();
        assert_eq!(note.code, codes::CERT_GAP);
    }

    #[test]
    fn bound_exceeded_is_an_error() {
        let (g, m) = pair();
        let r = certify_report(&certify_period(&g, &m, 1));
        assert!(r.has_errors());
        assert_eq!(r.errors().next().unwrap().code, codes::CERT_BOUND_EXCEEDED);
    }
}

//! Pass A: static analysis of the scheduling *inputs* — CSDFG
//! well-formedness, machine sanity, and graph × machine cross checks —
//! plus the schedule-validity wrapper used by Pass B (the `paranoid`
//! oracle in `ccs-core`) and the `ccsc-check` CLI.

use crate::diag::{codes, Diagnostic, Report, Subject};
use ccs_model::spec::CsdfgSpec;
use ccs_model::{Csdfg, ModelError, NodeId};
use ccs_retiming::iteration_bound;
use ccs_schedule::{validate, Schedule, Violation};
use ccs_topology::Machine;
use std::collections::BTreeMap;

/// Runs every Pass A check: [`analyze_graph`], [`analyze_machine`],
/// and [`analyze_cross`], in that order.
pub fn analyze(g: &Csdfg, m: &Machine) -> Report {
    let mut r = analyze_graph(g);
    r.merge(analyze_machine(m));
    r.merge(analyze_cross(g, m));
    r
}

/// CSDFG well-formedness (paper §2): zero-delay cycles, degenerate
/// times/volumes, zero-delay self-edges, isolated nodes, fragmented
/// graphs, redundant parallel edges.
pub fn analyze_graph(g: &Csdfg) -> Report {
    let mut r = Report::new();

    // Errors first. Zero-delay self-edges are the smallest zero-delay
    // cycles; report them individually before the generic cycle check.
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        if u == v && g.delay(e) == 0 {
            r.push(
                Diagnostic::error(
                    codes::ZERO_DELAY_SELF_EDGE,
                    edge_subject(g, e),
                    "self-edge with d = 0: the task would need its own same-iteration result",
                )
                .with_suggestion("give the self-edge at least one delay (d >= 1)"),
            );
        }
    }
    if let Err(ModelError::ZeroDelayCycle(witness)) = g.check_legal() {
        r.push(
            Diagnostic::error(
                codes::ZERO_DELAY_CYCLE,
                Subject::Node(g.name(witness).to_string()),
                "a directed cycle through this node carries zero total delay: \
                 no iteration can ever start (paper §2 legality)",
            )
            .with_suggestion(
                "every directed cycle needs >= 1 delay; retime or add a loop-carried edge",
            ),
        );
    }
    // t(v) >= 1 and c(e) >= 1 are enforced by the `Csdfg` constructors;
    // re-verified here as defense in depth for graphs that arrive
    // through other channels (deserialization, FFI, future builders).
    for v in g.tasks() {
        if g.time(v) < 1 {
            r.push(Diagnostic::error(
                codes::ZERO_TIME,
                Subject::Node(g.name(v).to_string()),
                "computation time t(v) < 1",
            ));
        }
    }
    for e in g.deps() {
        if g.volume(e) < 1 {
            r.push(Diagnostic::error(
                codes::ZERO_VOLUME,
                edge_subject(g, e),
                "communication volume c(e) < 1",
            ));
        }
    }

    // Warnings.
    for v in g.tasks() {
        if g.in_deps(v).next().is_none() && g.out_deps(v).next().is_none() {
            r.push(
                Diagnostic::warning(
                    codes::W_ISOLATED_NODE,
                    Subject::Node(g.name(v).to_string()),
                    "task has no dependencies at all",
                )
                .with_suggestion(
                    "isolated tasks trivially fill idle slots; confirm it is intended",
                ),
            );
        }
    }
    let components = weak_components(g);
    if components > 1 {
        r.push(Diagnostic::warning(
            codes::W_FRAGMENTED_GRAPH,
            Subject::Graph,
            format!("graph splits into {components} weakly-connected components"),
        ));
    }
    // Redundant parallel edges: same endpoints, same delay — only the
    // largest volume can ever be the binding constraint.
    let mut seen: BTreeMap<(NodeId, NodeId, u32), usize> = BTreeMap::new();
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        *seen.entry((u, v, g.delay(e))).or_insert(0) += 1;
    }
    let mut dups: Vec<_> = seen
        .into_iter()
        .filter(|&(_, count)| count > 1)
        .map(|((u, v, d), count)| (g.name(u).to_string(), g.name(v).to_string(), d, count))
        .collect();
    dups.sort();
    for (src, dst, d, count) in dups {
        r.push(
            Diagnostic::warning(
                codes::W_REDUNDANT_EDGE,
                Subject::Edge {
                    src: src.clone(),
                    dst: dst.clone(),
                },
                format!("{count} parallel edges with identical endpoints and delay d = {d}"),
            )
            .with_suggestion("merge them, keeping the largest volume"),
        );
    }
    r
}

/// Machine sanity (Definition 3.5): connected topology, well-formed
/// hop tables, non-degenerate parallelism.
pub fn analyze_machine(m: &Machine) -> Report {
    let mut r = Report::new();
    for (a, b) in m.unreachable_pairs() {
        r.push(
            Diagnostic::error(
                codes::MACHINE_DISCONNECTED,
                Subject::PePair(a.0, b.0),
                "no path between these PEs: the communication cost M(p_i, p_j) is undefined",
            )
            .with_suggestion("add links until the topology is connected"),
        );
    }
    // Degenerate hop tables (impossible for BFS-built machines; checked
    // as defense in depth).
    for a in m.pes() {
        if m.try_distance(a, a) != Some(0) {
            r.push(Diagnostic::error(
                codes::HOP_TABLE_DEGENERATE,
                Subject::Pe(a.0),
                "hops(p, p) != 0",
            ));
        }
        for b in m.pes() {
            if a.index() < b.index() && m.try_distance(a, b) != m.try_distance(b, a) {
                r.push(Diagnostic::error(
                    codes::HOP_TABLE_DEGENERATE,
                    Subject::PePair(a.0, b.0),
                    "asymmetric hop table",
                ));
            }
        }
    }
    if m.num_pes() == 1 {
        r.push(Diagnostic::warning(
            codes::W_SINGLE_PE,
            Subject::Machine,
            "single-PE machine: scheduling degenerates to serialization",
        ));
    } else if m.is_connected() && m.diameter() == 0 {
        r.push(Diagnostic::warning(
            codes::W_FREE_COMM,
            Subject::Machine,
            "all hop distances are zero (ideal machine): \
             communication-sensitivity cannot influence the schedule",
        ));
    }
    r
}

/// Graph × machine cross checks: PSL/iteration-bound lower bounds
/// against single-PE serialization, machine sizing.
pub fn analyze_cross(g: &Csdfg, m: &Machine) -> Report {
    let mut r = Report::new();
    let tasks = g.task_count();
    if tasks > 0 && m.num_pes() > tasks {
        r.push(Diagnostic::warning(
            codes::W_MORE_PES_THAN_TASKS,
            Subject::Machine,
            format!(
                "{} PEs for {} tasks: at least {} PEs can never be used",
                m.num_pes(),
                tasks,
                m.num_pes() - tasks
            ),
        ));
    }
    // Lower bounds need a legal graph (the iteration bound is undefined
    // — infinite — on zero-delay cycles, which analyze_graph reports).
    if g.task_count() == 0 || g.check_legal().is_err() {
        return r;
    }
    let serial = g.total_time();
    if let Some(bound) = iteration_bound(g) {
        // Any static schedule satisfies L >= ceil(B) (the PSL bound of
        // the critical cycle, Lemma 4.3 with zero communication); a
        // single PE achieves L = total_time.  When the former meets the
        // latter, compaction cannot help.
        if bound.ceil() >= serial && serial > 0 {
            r.push(
                Diagnostic::warning(
                    codes::W_COMPACTION_CANNOT_HELP,
                    Subject::Graph,
                    format!(
                        "iteration bound {bound} already >= single-PE serialization ({serial}): \
                         no multi-PE schedule can be shorter"
                    ),
                )
                .with_suggestion("schedule on one PE, or unfold the loop to expose parallelism"),
            );
        }
    }
    if m.num_pes() > 1 && m.diameter() >= 1 {
        if let Some(e) = g.deps().max_by_key(|&e| g.volume(e)) {
            let heaviest = u64::from(g.volume(e));
            if heaviest >= serial && serial > 0 {
                r.push(
                    Diagnostic::warning(
                        codes::W_COMM_DOMINATES,
                        edge_subject(g, e),
                        format!(
                            "heaviest edge volume ({heaviest}) >= single-PE serialization \
                             ({serial}): moving it even one hop costs more than running \
                             everything on one PE"
                        ),
                    )
                    .with_suggestion("keep this edge's endpoints co-located, or reduce its volume"),
                );
            }
        }
    }
    r
}

/// Spec-level well-formedness: the checks that `CsdfgSpec::build`
/// enforces by erroring out, reported as structured diagnostics
/// instead (so one run reports *all* problems).  When the spec builds
/// cleanly, the graph-level checks of [`analyze_graph`] run too.
pub fn analyze_spec(spec: &CsdfgSpec) -> Report {
    let mut r = Report::new();
    let mut names: BTreeMap<&str, usize> = BTreeMap::new();
    for n in &spec.nodes {
        *names.entry(n.name.as_str()).or_insert(0) += 1;
        if n.time < 1 {
            r.push(
                Diagnostic::error(
                    codes::ZERO_TIME,
                    Subject::Node(n.name.clone()),
                    format!("computation time t(v) = {} < 1", n.time),
                )
                .with_suggestion("every task needs at least one control step"),
            );
        }
    }
    for (name, count) in names.iter() {
        if *count > 1 {
            r.push(Diagnostic::error(
                codes::DUPLICATE_TASK,
                Subject::Node((*name).to_string()),
                format!("{count} tasks share this name"),
            ));
        }
    }
    for e in &spec.edges {
        if e.volume < 1 {
            r.push(Diagnostic::error(
                codes::ZERO_VOLUME,
                Subject::Edge {
                    src: e.src.clone(),
                    dst: e.dst.clone(),
                },
                format!("communication volume c(e) = {} < 1", e.volume),
            ));
        }
        for end in [&e.src, &e.dst] {
            if !names.contains_key(end.as_str()) {
                r.push(Diagnostic::error(
                    codes::UNKNOWN_TASK,
                    Subject::Edge {
                        src: e.src.clone(),
                        dst: e.dst.clone(),
                    },
                    format!("edge references unknown task {end:?}"),
                ));
            }
        }
        if e.src == e.dst && e.delay == 0 {
            r.push(Diagnostic::error(
                codes::ZERO_DELAY_SELF_EDGE,
                Subject::Edge {
                    src: e.src.clone(),
                    dst: e.dst.clone(),
                },
                "self-edge with d = 0",
            ));
        }
    }
    if !r.has_errors() {
        match spec.build() {
            Ok(g) => r.merge(analyze_graph(&g)),
            Err(err) => r.push(Diagnostic::error(
                codes::PARSE,
                Subject::Graph,
                format!("spec does not build: {err}"),
            )),
        }
    }
    r
}

/// Pass B entry point: re-validates a schedule through the extended
/// `ccs-schedule` checker and reports each [`Violation`] as a
/// structured diagnostic carrying its stable `CCS02x` code.
pub fn check_schedule(g: &Csdfg, m: &Machine, s: &Schedule) -> Report {
    let mut r = Report::new();
    if let Err(violations) = validate(g, m, s) {
        for v in violations {
            r.push(violation_to_diag(g, &v));
        }
    }
    r
}

/// Maps one checker violation to a diagnostic.
fn violation_to_diag(g: &Csdfg, v: &Violation) -> Diagnostic {
    let subject = match v {
        Violation::Unplaced(n)
        | Violation::BadPe { node: n, .. }
        | Violation::DuplicatePlacement { node: n } => Subject::Node(g.name(*n).to_string()),
        Violation::Precedence { edge, .. }
        | Violation::LengthTooShort { edge, .. }
        | Violation::UnreachablePes { edge, .. } => edge_subject(g, *edge),
        Violation::Overlap { .. } => Subject::Schedule,
    };
    let full = v.to_string();
    // Display prefixes the code in brackets; the structured form
    // carries it separately.
    let message = full
        .strip_prefix(&format!("[{}] ", v.code()))
        .unwrap_or(&full)
        .to_string();
    Diagnostic::error(v.code(), subject, message)
}

/// Subject naming an edge through its endpoint task names.
fn edge_subject(g: &Csdfg, e: ccs_model::EdgeId) -> Subject {
    let (u, v) = g.endpoints(e);
    Subject::Edge {
        src: g.name(u).to_string(),
        dst: g.name(v).to_string(),
    }
}

/// Number of weakly-connected components (0 for an empty graph).
fn weak_components(g: &Csdfg) -> usize {
    let bound = g.graph().node_bound();
    let mut parent: Vec<usize> = (0..bound).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        let (ru, rv) = (find(&mut parent, u.index()), find(&mut parent, v.index()));
        if ru != rv {
            parent[ru] = rv;
        }
    }
    let mut roots: Vec<usize> = g.tasks().map(|v| find(&mut parent, v.index())).collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use ccs_model::spec::{EdgeSpec, NodeSpec};
    use ccs_topology::Pe;

    fn two_node_loop() -> Csdfg {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        g
    }

    #[test]
    fn clean_graph_clean_machine() {
        // Two delays on the back edge: bound = 3/2, strictly below the
        // single-PE serialization of 3, so no futility warning fires.
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 2, 1).unwrap();
        let m = Machine::mesh(2, 1);
        let r = analyze(&g, &m);
        assert!(r.is_clean(), "{}", r.render_human());
    }

    #[test]
    fn zero_delay_cycle_is_ccs001() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 0, 1).unwrap();
        let r = analyze_graph(&g);
        assert!(r.has_errors());
        assert_eq!(r.errors().next().unwrap().code, codes::ZERO_DELAY_CYCLE);
    }

    #[test]
    fn zero_delay_self_edge_is_ccs004() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        g.add_dep(a, a, 0, 1).unwrap();
        let r = analyze_graph(&g);
        let codes_seen: Vec<_> = r.errors().map(|d| d.code).collect();
        assert!(codes_seen.contains(&codes::ZERO_DELAY_SELF_EDGE));
        assert!(codes_seen.contains(&codes::ZERO_DELAY_CYCLE));
    }

    #[test]
    fn isolated_and_fragmented_warned() {
        let mut g = two_node_loop();
        g.add_task("Lonely", 1).unwrap();
        let r = analyze_graph(&g);
        assert!(!r.has_errors());
        let w: Vec<_> = r.warnings().map(|d| d.code).collect();
        assert!(w.contains(&codes::W_ISOLATED_NODE));
        assert!(w.contains(&codes::W_FRAGMENTED_GRAPH));
    }

    #[test]
    fn redundant_parallel_edges_warned() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, b, 0, 3).unwrap(); // same endpoints + delay
        g.add_dep(b, a, 1, 1).unwrap();
        let r = analyze_graph(&g);
        assert!(r.warnings().any(|d| d.code == codes::W_REDUNDANT_EDGE));
    }

    #[test]
    fn disconnected_machine_is_ccs010() {
        let m = Machine::from_links("islands", 4, &[(0, 1), (2, 3)]);
        let r = analyze_machine(&m);
        assert_eq!(r.errors().count(), 4); // 4 unreachable pairs
        assert!(r.errors().all(|d| d.code == codes::MACHINE_DISCONNECTED));
    }

    #[test]
    fn ideal_and_single_pe_machines_warned() {
        let r = analyze_machine(&Machine::ideal(4));
        assert!(!r.has_errors());
        assert!(r.warnings().any(|d| d.code == codes::W_FREE_COMM));
        let r = analyze_machine(&Machine::complete(1));
        assert!(r.warnings().any(|d| d.code == codes::W_SINGLE_PE));
    }

    #[test]
    fn oversized_machine_warned() {
        let g = two_node_loop();
        let r = analyze_cross(&g, &Machine::complete(5));
        assert!(r.warnings().any(|d| d.code == codes::W_MORE_PES_THAN_TASKS));
    }

    #[test]
    fn compaction_cannot_help_when_bound_meets_serialization() {
        // One cycle A->B->A with 1 delay: B = (1+2)/1 = 3 = total time.
        let g = two_node_loop();
        let r = analyze_cross(&g, &Machine::mesh(2, 1));
        assert!(r
            .warnings()
            .any(|d| d.code == codes::W_COMPACTION_CANNOT_HELP));
    }

    #[test]
    fn heavy_edge_dominating_serialization_warned() {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 1).unwrap();
        g.add_dep(a, b, 0, 50).unwrap(); // volume 50 >> serial 2
        g.add_dep(b, a, 5, 1).unwrap(); // big delay: bound stays small
        let r = analyze_cross(&g, &Machine::linear_array(4));
        assert!(r.warnings().any(|d| d.code == codes::W_COMM_DOMINATES));
    }

    #[test]
    fn spec_level_reports_everything_at_once() {
        let spec = CsdfgSpec {
            nodes: vec![
                NodeSpec {
                    name: "A".into(),
                    time: 0,
                },
                NodeSpec {
                    name: "A".into(),
                    time: 1,
                },
            ],
            edges: vec![
                EdgeSpec {
                    src: "A".into(),
                    dst: "Z".into(),
                    delay: 0,
                    volume: 0,
                },
                EdgeSpec {
                    src: "A".into(),
                    dst: "A".into(),
                    delay: 0,
                    volume: 1,
                },
            ],
        };
        let r = analyze_spec(&spec);
        let seen: Vec<_> = r.errors().map(|d| d.code).collect();
        for expected in [
            codes::ZERO_TIME,
            codes::DUPLICATE_TASK,
            codes::ZERO_VOLUME,
            codes::UNKNOWN_TASK,
            codes::ZERO_DELAY_SELF_EDGE,
        ] {
            assert!(seen.contains(&expected), "missing {expected}: {seen:?}");
        }
    }

    #[test]
    fn clean_spec_falls_through_to_graph_checks() {
        let spec = CsdfgSpec {
            nodes: vec![
                NodeSpec {
                    name: "A".into(),
                    time: 1,
                },
                NodeSpec {
                    name: "B".into(),
                    time: 1,
                },
            ],
            edges: vec![
                EdgeSpec {
                    src: "A".into(),
                    dst: "B".into(),
                    delay: 0,
                    volume: 1,
                },
                EdgeSpec {
                    src: "B".into(),
                    dst: "A".into(),
                    delay: 0,
                    volume: 1,
                },
            ],
        };
        let r = analyze_spec(&spec);
        assert!(r.errors().any(|d| d.code == codes::ZERO_DELAY_CYCLE));
    }

    #[test]
    fn schedule_diagnostics_carry_checker_codes() {
        let g = two_node_loop();
        let m = Machine::linear_array(2);
        let mut s = Schedule::new(4);
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(3), 2, 2).unwrap(); // nonexistent PE on this machine
        let r = check_schedule(&g, &m, &s);
        assert!(r.has_errors());
        let d = r.errors().next().unwrap();
        assert_eq!(d.code, "CCS024");
        assert_eq!(d.severity, Severity::Error);
        assert!(matches!(&d.subject, Subject::Node(n) if n == "B"));
        assert!(!d.message.starts_with('['), "code stripped from message");
    }

    #[test]
    fn valid_schedule_clean() {
        let g = two_node_loop();
        let m = Machine::linear_array(2);
        let mut s = Schedule::new(2);
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(0), 2, 2).unwrap();
        assert!(check_schedule(&g, &m, &s).is_clean());
    }
}

//! The diagnostic data model: stable codes, severities, subjects, and
//! the human/JSON renderers.

use serde::{Serialize, Value};
use std::fmt;

/// Stable lint codes.  `CCS0xx` are errors (the input or schedule is
/// illegal under the paper's model), `CCSWxx` are warnings (legal but
/// suspicious, degenerate, or futile).  Codes are never reused or
/// renumbered; see `DESIGN.md` §"Diagnostics" for the catalogue with
/// paper lemma references.
pub mod codes {
    /// Input could not be parsed at all.
    pub const PARSE: &str = "CCS000";
    /// A directed cycle carries zero total delay (paper §2 legality).
    pub const ZERO_DELAY_CYCLE: &str = "CCS001";
    /// A task has computation time `t(v) < 1` (Definition in §2).
    pub const ZERO_TIME: &str = "CCS002";
    /// An edge has communication volume `c(e) < 1` (Definition in §2).
    pub const ZERO_VOLUME: &str = "CCS003";
    /// A self-edge with `d = 0`: the node depends on its own result in
    /// the same iteration (the smallest zero-delay cycle).
    pub const ZERO_DELAY_SELF_EDGE: &str = "CCS004";
    /// An edge references a task name that does not exist.
    pub const UNKNOWN_TASK: &str = "CCS005";
    /// Two tasks share one name.
    pub const DUPLICATE_TASK: &str = "CCS006";
    /// The machine topology is disconnected: some PE pair has no
    /// connecting path, so `M(p_i, p_j)` (Definition 3.5) is undefined.
    pub const MACHINE_DISCONNECTED: &str = "CCS010";
    /// The hop table is degenerate: `hops(p, p) != 0` or
    /// `hops(a, b) != hops(b, a)` (impossible for BFS-built machines,
    /// checked as defense in depth for externally supplied ones).
    pub const HOP_TABLE_DEGENERATE: &str = "CCS011";

    // CCS020..CCS026 are schedule-validity codes owned by
    // `ccs_schedule::checker::Violation::code` and re-emitted here.

    // CCS04x: bounds & certification (mixed severities — the family
    // groups every verdict the `ccs-bounds` certifier can return).

    /// The achieved period is *below* a proven lower bound: the bound
    /// proof or the schedule validator is wrong.  Always an internal
    /// bug — never a property of the input.
    pub const CERT_BOUND_EXCEEDED: &str = "CCS040";
    /// The achieved period equals the strongest proven lower bound:
    /// the schedule is provably optimal.
    pub const CERT_OPTIMAL: &str = "CCS041";
    /// The achieved period is within the acceptable gap of the
    /// strongest bound ("gap <= N%").
    pub const CERT_GAP: &str = "CCS042";
    /// The achieved period exceeds the strongest bound by more than
    /// the acceptable gap: the schedule (or the bound family) leaves
    /// real headroom on the table.
    pub const CERT_GAP_LARGE: &str = "CCS043";

    /// A node with no dependencies at all.
    pub const W_ISOLATED_NODE: &str = "CCSW01";
    /// The graph splits into multiple weakly-connected components.
    pub const W_FRAGMENTED_GRAPH: &str = "CCSW02";
    /// Parallel edges with identical endpoints and delay: only the
    /// largest volume can ever bind.
    pub const W_REDUNDANT_EDGE: &str = "CCSW03";
    /// Single-PE machine: scheduling degenerates to serialization.
    pub const W_SINGLE_PE: &str = "CCSW10";
    /// All hop distances are zero (ideal machine): the schedule is
    /// communication-oblivious by construction.
    pub const W_FREE_COMM: &str = "CCSW11";
    /// More PEs than tasks: the extra PEs can never be used.
    pub const W_MORE_PES_THAN_TASKS: &str = "CCSW12";
    /// The iteration bound already meets or exceeds single-PE
    /// serialization: cyclo-compaction cannot shorten the schedule.
    pub const W_COMPACTION_CANNOT_HELP: &str = "CCSW20";
    /// The heaviest edge's one-hop cost meets or exceeds single-PE
    /// serialization: any cross-PE placement of it is futile.
    pub const W_COMM_DOMINATES: &str = "CCSW21";
}

/// How bad a diagnostic is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Purely informational: a positive or neutral certified fact
    /// (e.g. "provably optimal").  Never affects exit codes.
    Note,
    /// Legal but suspicious, degenerate, or futile.
    Warning,
    /// Illegal under the paper's model; scheduling must not proceed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Note => write!(f, "note"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// What a diagnostic is about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Subject {
    /// The graph as a whole.
    Graph,
    /// One task, by name.
    Node(String),
    /// One dependency edge, by endpoint names.
    Edge {
        /// Producer task name.
        src: String,
        /// Consumer task name.
        dst: String,
    },
    /// The machine as a whole.
    Machine,
    /// One processor (0-based index).
    Pe(u32),
    /// An unordered processor pair.
    PePair(u32, u32),
    /// The schedule table.
    Schedule,
}

impl fmt::Display for Subject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Subject::Graph => write!(f, "graph"),
            Subject::Node(n) => write!(f, "node {n}"),
            Subject::Edge { src, dst } => write!(f, "edge {src} -> {dst}"),
            Subject::Machine => write!(f, "machine"),
            Subject::Pe(p) => write!(f, "pe{}", p + 1),
            Subject::PePair(a, b) => write!(f, "pe{} <-> pe{}", a + 1, b + 1),
            Subject::Schedule => write!(f, "schedule"),
        }
    }
}

/// One structured diagnostic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`CCS0xx` / `CCSWxx`, see [`codes`]).
    pub code: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// What the diagnostic is about.
    pub subject: Subject,
    /// Human-readable explanation.
    pub message: String,
    /// Optional actionable fix.
    pub suggestion: Option<String>,
}

impl Diagnostic {
    /// Builds an error diagnostic.
    pub fn error(code: &'static str, subject: Subject, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            subject,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Builds a warning diagnostic.
    pub fn warning(code: &'static str, subject: Subject, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Warning,
            subject,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Builds a note diagnostic (informational; never affects exit
    /// codes or `has_errors`).
    pub fn note(code: &'static str, subject: Subject, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Note,
            subject,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attaches a suggestion.
    pub fn with_suggestion(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}: {}",
            self.severity, self.code, self.subject, self.message
        )?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  = help: {s}")?;
        }
        Ok(())
    }
}

impl Serialize for Diagnostic {
    fn to_value(&self) -> Value {
        let mut obj = vec![
            ("code".into(), Value::String(self.code.into())),
            ("severity".into(), Value::String(self.severity.to_string())),
            ("subject".into(), Value::String(self.subject.to_string())),
            ("message".into(), Value::String(self.message.clone())),
        ];
        if let Some(s) = &self.suggestion {
            obj.push(("suggestion".into(), Value::String(s.clone())));
        }
        Value::Object(obj)
    }
}

/// An ordered collection of diagnostics from one analysis pass (or a
/// union of passes).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Report {
    diags: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diags.push(d);
    }

    /// Appends every diagnostic of `other`.
    pub fn merge(&mut self, other: Report) {
        self.diags.extend(other.diags);
    }

    /// All diagnostics, in emission order (errors of a pass before its
    /// warnings).
    pub fn diagnostics(&self) -> &[Diagnostic] {
        &self.diags
    }

    /// The error diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Error)
    }

    /// The warning diagnostics.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags
            .iter()
            .filter(|d| d.severity == Severity::Warning)
    }

    /// The note diagnostics.
    pub fn notes(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diags.iter().filter(|d| d.severity == Severity::Note)
    }

    /// `true` if any error-severity diagnostic is present.
    pub fn has_errors(&self) -> bool {
        self.errors().next().is_some()
    }

    /// `true` if there are no diagnostics at all.
    pub fn is_clean(&self) -> bool {
        self.diags.is_empty()
    }

    /// Compiler-style human rendering; empty string for a clean report.
    pub fn render_human(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diags {
            let _ = writeln!(out, "{d}");
        }
        let (e, w) = (self.errors().count(), self.warnings().count());
        if e + w > 0 {
            let _ = writeln!(out, "{e} error(s), {w} warning(s)");
        }
        out
    }
}

impl Serialize for Report {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            (
                "diagnostics".into(),
                Value::Array(self.diags.iter().map(Serialize::to_value).collect()),
            ),
            ("errors".into(), Value::UInt(self.errors().count() as u64)),
            (
                "warnings".into(),
                Value::UInt(self.warnings().count() as u64),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_counts() {
        let mut r = Report::new();
        r.push(
            Diagnostic::error(codes::ZERO_DELAY_CYCLE, Subject::Node("A".into()), "boom")
                .with_suggestion("add a delay"),
        );
        r.push(Diagnostic::warning(
            codes::W_SINGLE_PE,
            Subject::Machine,
            "one PE",
        ));
        assert!(r.has_errors());
        assert!(!r.is_clean());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        let h = r.render_human();
        assert!(h.contains("error[CCS001]: node A: boom"));
        assert!(h.contains("= help: add a delay"));
        assert!(h.contains("1 error(s), 1 warning(s)"));
    }

    #[test]
    fn json_shape() {
        let mut r = Report::new();
        r.push(Diagnostic::warning(
            codes::W_FREE_COMM,
            Subject::PePair(0, 2),
            "zero hops",
        ));
        let v = serde_json::to_value(&r).unwrap();
        assert_eq!(v["errors"].as_u64(), Some(0));
        assert_eq!(v["warnings"].as_u64(), Some(1));
        assert_eq!(
            v["diagnostics"][0]["code"].as_str(),
            Some(codes::W_FREE_COMM)
        );
        assert_eq!(v["diagnostics"][0]["subject"].as_str(), Some("pe1 <-> pe3"));
    }

    #[test]
    fn severity_ordering() {
        assert!(Severity::Error > Severity::Warning);
    }
}

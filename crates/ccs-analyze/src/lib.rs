//! # ccs-analyze
//!
//! Compiler-style static diagnostics for the cyclo-compaction
//! scheduling pipeline: structured lints with stable codes over
//! CSDFGs, machine topologies, and schedule tables.
//!
//! * [`diag`] — the diagnostic data model: [`codes`] (`CCS0xx`
//!   errors, `CCSWxx` warnings), [`Severity`], [`Subject`],
//!   [`Diagnostic`], and [`Report`] with human and JSON renderers;
//! * [`passes`] — the analyses: [`analyze_graph`] (CSDFG
//!   well-formedness, paper §2), [`analyze_machine`] (Definition 3.5
//!   sanity), [`analyze_cross`] (graph × machine futility bounds,
//!   Lemma 4.3), [`analyze_spec`] (exhaustive spec-level reporting),
//!   and [`check_schedule`] (the `CCS02x` schedule-validity wrapper
//!   shared with the `paranoid` oracle in `ccs-core`);
//! * `ccsc-check` — the CLI binary running Pass A over files,
//!   bundled workloads, and machine specs, with `--format json` for
//!   tooling.
//!
//! The full code catalogue, with paper lemma references, lives in
//! `DESIGN.md` §"Diagnostics".

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod certify;
pub mod diag;
pub mod passes;

pub use certify::{certify_report, ACCEPTABLE_GAP_PCT};
pub use diag::{codes, Diagnostic, Report, Severity, Subject};
pub use passes::{
    analyze, analyze_cross, analyze_graph, analyze_machine, analyze_spec, check_schedule,
};

//! `ccsc-check`: run the Pass A static diagnostics over CSDFG files,
//! bundled workloads, and machine specs.
//!
//! ```text
//! ccsc-check graph.csdfg                        # graph-only checks
//! ccsc-check graph.csdfg --machine mesh:2x2     # graph + machine + cross
//! ccsc-check --workloads --paper-machines      # whole bundled catalog
//! ccsc-check --workload elliptic --machine ring:4 --format json
//! ```
//!
//! Inputs whose first non-whitespace byte is `{` are parsed as JSON
//! [`CsdfgSpec`]s; anything else goes through the `node`/`edge` text
//! parser.  Exit status: `0` clean (warnings allowed), `1` any
//! error-severity diagnostic, `2` usage or I/O failure.

use ccs_analyze::diag::{codes, Diagnostic, Report, Subject};
use ccs_analyze::passes::{analyze_cross, analyze_graph, analyze_machine, analyze_spec};
use ccs_model::spec::CsdfgSpec;
use ccs_model::Csdfg;
use ccs_topology::{parse_spec, Machine};
use serde::{Serialize, Value};
use std::process::ExitCode;

const USAGE: &str = "\
ccsc-check: static diagnostics for cyclo-compaction scheduling inputs

USAGE:
    ccsc-check [FILE]... [OPTIONS]

OPTIONS:
    --workloads          check every bundled workload
    --workload NAME      check one bundled workload (repeatable)
    --machine SPEC       machine to cross-check against, e.g. mesh:2x2,
                         ring:4, complete:3, ideal:2 (repeatable)
    --paper-machines     cross-check against the paper's machine suite
    --certify            schedule each input on each machine with the
                         full cyclo-compaction pipeline and certify the
                         achieved period against the static lower
                         bounds (CCS04x; needs at least one machine)
    --format FMT         human (default) or json
    -h, --help           this message

EXIT STATUS:
    0  clean, or warnings only
    1  at least one error-severity diagnostic
    2  usage or I/O failure";

struct Args {
    files: Vec<String>,
    workloads: bool,
    workload_names: Vec<String>,
    machines: Vec<String>,
    paper_machines: bool,
    certify: bool,
    json: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut a = Args {
        files: Vec::new(),
        workloads: false,
        workload_names: Vec::new(),
        machines: Vec::new(),
        paper_machines: false,
        certify: false,
        json: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--workloads" => a.workloads = true,
            "--paper-machines" => a.paper_machines = true,
            "--certify" => a.certify = true,
            "--workload" => a
                .workload_names
                .push(it.next().ok_or("--workload needs a NAME")?.clone()),
            "--machine" => a
                .machines
                .push(it.next().ok_or("--machine needs a SPEC")?.clone()),
            "--format" => {
                let f = it.next().ok_or("--format needs human|json")?;
                match f.as_str() {
                    "human" => a.json = false,
                    "json" => a.json = true,
                    other => return Err(format!("unknown format {other:?}")),
                }
            }
            "-h" | "--help" => return Err(String::new()),
            f if !f.starts_with('-') => a.files.push(f.to_string()),
            other => return Err(format!("unknown option {other:?}")),
        }
    }
    if a.files.is_empty() && !a.workloads && a.workload_names.is_empty() {
        return Err("nothing to check: pass FILEs, --workloads, or --workload NAME".into());
    }
    Ok(a)
}

/// One named input graph plus its report, and (under `--certify`) the
/// full optimality report per machine.
struct Checked {
    name: String,
    report: Report,
    certifications: Vec<(String, ccs_bounds::OptimalityReport)>,
}

impl Serialize for Checked {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("input".into(), Value::String(self.name.clone())),
            ("report".into(), self.report.to_value()),
        ];
        if !self.certifications.is_empty() {
            fields.push((
                "certify".into(),
                Value::Array(
                    self.certifications
                        .iter()
                        .map(|(m, opt)| {
                            Value::Object(vec![
                                ("machine".into(), Value::String(m.clone())),
                                ("certificate".into(), opt.to_value()),
                            ])
                        })
                        .collect(),
                ),
            ));
        }
        Value::Object(fields)
    }
}

/// Loads one input file as either a JSON spec or the text format.
/// Parse failures become a `CCS000` report instead of an abort so a
/// multi-file run reports everything.
fn load_file(path: &str) -> Result<(Option<Csdfg>, Report), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    if text.trim_start().starts_with('{') {
        match serde_json::from_str::<CsdfgSpec>(&text) {
            Ok(spec) => {
                let report = analyze_spec(&spec);
                let graph = if report.has_errors() {
                    None
                } else {
                    spec.build().ok()
                };
                Ok((graph, report))
            }
            Err(e) => {
                let mut r = Report::new();
                r.push(Diagnostic::error(
                    codes::PARSE,
                    Subject::Graph,
                    format!("not a valid JSON CSDFG spec: {e}"),
                ));
                Ok((None, r))
            }
        }
    } else {
        match ccs_model::parser::parse(&text) {
            Ok(g) => {
                let report = analyze_graph(&g);
                Ok((Some(g), report))
            }
            Err(e) => {
                let mut r = Report::new();
                r.push(
                    Diagnostic::error(codes::PARSE, Subject::Graph, e.to_string())
                        .with_suggestion("expected `node NAME t=N` / `edge A -> B d=N c=N` lines"),
                );
                Ok((None, r))
            }
        }
    }
}

fn run() -> Result<ExitCode, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = parse_args(&argv)?;

    // Machines to cross-check against.
    let mut machines: Vec<Machine> = Vec::new();
    for spec in &args.machines {
        machines.push(parse_spec(spec).map_err(|e| e.to_string())?);
    }
    if args.paper_machines {
        machines.extend(Machine::paper_suite());
    }
    if args.certify && machines.is_empty() {
        return Err("--certify needs at least one --machine or --paper-machines".into());
    }

    // Gather (name, graph, base report) triples.
    let mut inputs: Vec<(String, Option<Csdfg>, Report)> = Vec::new();
    for path in &args.files {
        let (g, r) = load_file(path)?;
        inputs.push((path.clone(), g, r));
    }
    let catalog = ccs_workloads::catalog::all();
    if args.workloads {
        for w in &catalog {
            let g = w.build();
            let r = analyze_graph(&g);
            inputs.push((format!("workload:{}", w.name), Some(g), r));
        }
    }
    for name in &args.workload_names {
        let w = catalog
            .iter()
            .find(|w| w.name == name.as_str())
            .ok_or_else(|| {
                let known: Vec<_> = catalog.iter().map(|w| w.name).collect();
                format!("unknown workload {name:?}; known: {}", known.join(", "))
            })?;
        let g = w.build();
        let r = analyze_graph(&g);
        inputs.push((format!("workload:{}", w.name), Some(g), r));
    }

    // Machine-only diagnostics are reported once per machine, then the
    // cross checks fan out over every (input, machine) pair.
    let mut results: Vec<Checked> = Vec::new();
    for m in &machines {
        results.push(Checked {
            name: format!("machine:{}", m.name()),
            report: analyze_machine(m),
            certifications: Vec::new(),
        });
    }
    for (name, graph, base) in inputs {
        let mut report = base;
        let mut certifications = Vec::new();
        if let Some(g) = &graph {
            for m in &machines {
                let cross = analyze_cross(g, m);
                if !cross.is_clean() {
                    let mut tagged = Report::new();
                    for d in cross.diagnostics() {
                        let mut d = d.clone();
                        d.message = format!("[vs {}] {}", m.name(), d.message);
                        tagged.push(d);
                    }
                    report.merge(tagged);
                }
                if args.certify && !report.has_errors() {
                    let run = ccs_core::cyclo_compact(g, m, ccs_core::CompactConfig::default())
                        .map_err(|e| format!("{name} on {}: {e}", m.name()))?;
                    let opt = ccs_bounds::certify(g, m, &run.schedule);
                    let mut tagged = Report::new();
                    for d in ccs_analyze::certify_report(&opt).diagnostics() {
                        let mut d = d.clone();
                        d.message = format!("[vs {}] {}", m.name(), d.message);
                        tagged.push(d);
                    }
                    report.merge(tagged);
                    certifications.push((m.name().to_string(), opt));
                }
            }
        }
        results.push(Checked {
            name,
            report,
            certifications,
        });
    }

    let any_errors = results.iter().any(|c| c.report.has_errors());
    // Write through an explicit handle and swallow write errors so a
    // downstream `| head` closing the pipe doesn't panic the checker.
    use std::io::Write as _;
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if args.json {
        let total_e: usize = results.iter().map(|c| c.report.errors().count()).sum();
        let total_w: usize = results.iter().map(|c| c.report.warnings().count()).sum();
        let doc = Value::Object(vec![
            (
                "results".into(),
                Value::Array(results.iter().map(Serialize::to_value).collect()),
            ),
            ("errors".into(), Value::UInt(total_e as u64)),
            ("warnings".into(), Value::UInt(total_w as u64)),
        ]);
        let rendered = serde_json::to_string_pretty(&doc).map_err(|e| e.to_string())?;
        let _ = writeln!(out, "{rendered}");
    } else {
        for c in &results {
            if c.report.is_clean() {
                let _ = writeln!(out, "{}: clean", c.name);
            } else {
                let _ = writeln!(out, "{}:", c.name);
                for line in c.report.render_human().lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
            for (machine, opt) in &c.certifications {
                let _ = writeln!(out, "  certificate vs {machine}:");
                for line in opt.render_human().lines() {
                    let _ = writeln!(out, "    {line}");
                }
            }
        }
    }
    Ok(if any_errors {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("ccsc-check: {msg}");
                eprintln!("{USAGE}");
                ExitCode::from(2)
            }
        }
    }
}

//! Every built-in workload, on every machine of the paper's 8-PE
//! suite, must (a) carry **zero analyzer errors** on input, (b) emit
//! exactly the advisory warnings recorded in `workloads_expected.txt`
//! (so a new warning — or a silently vanished one — fails review), and
//! (c) produce cyclo-compaction schedules that [`check_schedule`]
//! certifies error-free.
//!
//! To refresh the expectations after an intentional analyzer change,
//! run this test and paste the "actual" block from the failure message
//! into `workloads_expected.txt`.

use ccs_analyze::{analyze_cross, analyze_graph, analyze_machine, check_schedule};
use ccs_core::{cyclo_compact, CompactConfig};
use ccs_topology::Machine;

const EXPECTED: &str = include_str!("workloads_expected.txt");

/// One line per diagnostic, stable order: workloads in registry order,
/// machines in paper-suite order, diagnostics in emission order.
fn actual_lines() -> Vec<String> {
    let mut lines = Vec::new();
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        let graph_report = analyze_graph(&g);
        assert!(
            !graph_report.has_errors(),
            "workload {:?} has graph errors:\n{}",
            w.name,
            graph_report.render_human()
        );
        for d in graph_report.diagnostics() {
            lines.push(format!("{} graph: {}", w.name, d.code));
        }
        for m in Machine::paper_suite() {
            let mut report = analyze_machine(&m);
            report.merge(analyze_cross(&g, &m));
            assert!(
                !report.has_errors(),
                "workload {:?} on {} has machine/cross errors:\n{}",
                w.name,
                m.name(),
                report.render_human()
            );
            for d in report.diagnostics() {
                lines.push(format!("{} vs {}: {}", w.name, m.name(), d.code));
            }
        }
    }
    lines
}

#[test]
fn workload_warnings_match_expectations_file() {
    let actual = actual_lines();
    let expected: Vec<&str> = EXPECTED
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .collect();
    assert_eq!(
        actual,
        expected,
        "\nworkload diagnostics drifted from workloads_expected.txt;\nactual:\n{}\n",
        actual.join("\n")
    );
}

#[test]
fn compacted_workload_schedules_are_error_free() {
    for w in ccs_workloads::all_workloads() {
        let g = w.build();
        for m in Machine::paper_suite() {
            let r = cyclo_compact(&g, &m, CompactConfig::default())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", w.name, m.name()));
            let report = check_schedule(&r.graph, &m, &r.schedule);
            assert!(
                !report.has_errors(),
                "{} on {}: compacted schedule has analyzer errors:\n{}",
                w.name,
                m.name(),
                report.render_human()
            );
        }
    }
}

//! Property tests: the whole scheduling pipeline produces outputs the
//! analyzer certifies error-free.
//!
//! For random CSDFGs on random machines, every stage —
//! `startup_schedule`, `cyclo_compact`, and the oblivious baselines —
//! must yield schedules whose [`ccs_analyze::check_schedule`] report
//! contains **zero errors** (warnings are allowed: random graphs on
//! tiny machines legitimately trip CCSW1x/CCSW2x advisories).  The
//! random inputs themselves must also be free of graph/machine/cross
//! *errors*, which pins down that the analyzer front end never
//! misfires on legal instances.

use ccs_analyze::{analyze, analyze_graph, check_schedule};
use ccs_core::{cyclo_compact, startup_schedule, CompactConfig, StartupConfig};
use ccs_model::Csdfg;
use ccs_topology::Machine;
use proptest::prelude::*;

/// Random legal CSDFGs: zero-delay edges only go "forward" (index
/// order), so the zero-delay view is acyclic by construction.
fn arb_csdfg() -> impl Strategy<Value = Csdfg> {
    (2usize..9).prop_flat_map(|n| {
        let times = proptest::collection::vec(1u32..4, n);
        let edges = proptest::collection::vec((0..n, 0..n, 0u32..3, 1u32..4), 1..n * 2);
        (times, edges).prop_map(move |(times, edges)| {
            let mut g = Csdfg::new();
            let ids: Vec<_> = times
                .iter()
                .enumerate()
                .map(|(i, &t)| g.add_task(format!("v{i}"), t).unwrap())
                .collect();
            for (a, b, d, c) in edges {
                let delay = if a < b { d } else { d.max(1) };
                g.add_dep(ids[a], ids[b], delay, c).unwrap();
            }
            g
        })
    })
}

fn arb_machine() -> impl Strategy<Value = Machine> {
    prop_oneof![
        (2usize..6).prop_map(Machine::linear_array),
        (3usize..7).prop_map(Machine::ring),
        (2usize..6).prop_map(Machine::complete),
        Just(Machine::mesh(2, 2)),
        Just(Machine::mesh(4, 2)),
        Just(Machine::hypercube(3)),
    ]
}

/// Asserts `report` has no error-severity diagnostics, with a helpful
/// rendering on failure.
macro_rules! assert_no_errors {
    ($report:expr, $what:expr) => {
        prop_assert!(
            !$report.has_errors(),
            "{} produced analyzer errors:\n{}",
            $what,
            $report.render_human()
        );
    };
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_legal_inputs_have_no_front_end_errors(
        g in arb_csdfg(), m in arb_machine()
    ) {
        assert_no_errors!(analyze_graph(&g), "analyze_graph");
        assert_no_errors!(analyze(&g, &m), "analyze (graph+machine+cross)");
    }

    #[test]
    fn startup_schedules_pass_check_schedule_clean(
        g in arb_csdfg(), m in arb_machine()
    ) {
        let s = startup_schedule(&g, &m, StartupConfig::default()).unwrap();
        let report = check_schedule(&g, &m, &s);
        assert_no_errors!(report, "check_schedule(startup)");
    }

    #[test]
    fn compaction_outputs_pass_check_schedule_clean(
        g in arb_csdfg(), m in arb_machine()
    ) {
        let cfg = CompactConfig { passes: 10, ..Default::default() };
        let r = cyclo_compact(&g, &m, cfg).unwrap();
        // The retimed graph is itself a legal CSDFG the analyzer must
        // accept, and the compacted schedule must check out.
        assert_no_errors!(analyze_graph(&r.graph), "analyze_graph(retimed)");
        let report = check_schedule(&r.graph, &m, &r.schedule);
        assert_no_errors!(report, "check_schedule(compacted)");
    }

    #[test]
    fn oblivious_baselines_pass_check_schedule_clean(
        g in arb_csdfg(), m in arb_machine()
    ) {
        let bl = ccs_core::baselines::oblivious_list_scheduling(&g, &m).unwrap();
        assert_no_errors!(check_schedule(&g, &m, &bl.schedule), "check_schedule(oblivious list)");
        let (br, retimed) = ccs_core::baselines::oblivious_rotation_scheduling(&g, &m, 6).unwrap();
        assert_no_errors!(
            check_schedule(&retimed, &m, &br.schedule),
            "check_schedule(oblivious rotation)"
        );
    }
}

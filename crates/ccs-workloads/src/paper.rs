//! The example graphs printed in the paper.

use ccs_model::Csdfg;

/// The running example of the paper — Figure 1(b): six general-time
/// tasks on a cyclic CSDFG.
///
/// Execution times: `t(B) = t(E) = 2`, all others 1.  Delays:
/// `d(D->A) = 3`, `d(F->E) = 1`, all others 0.  Volumes as printed in
/// §2 (`c(B->E) = c(D->F) = 2`, `c(D->A) = 3`, others 1).
pub fn fig1_example() -> Csdfg {
    let mut g = Csdfg::new();
    let names = ["A", "B", "C", "D", "E", "F"];
    let ids: Vec<_> = names
        .iter()
        .map(|n| {
            let t = if *n == "B" || *n == "E" { 2 } else { 1 };
            g.add_task(*n, t).expect("unique names")
        })
        .collect();
    let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
    g.add_dep(a, b, 0, 1).unwrap(); // e1
    g.add_dep(a, c, 0, 1).unwrap(); // e2
    g.add_dep(a, e, 0, 1).unwrap(); // e3
    g.add_dep(b, d, 0, 1).unwrap(); // e4
    g.add_dep(b, e, 0, 2).unwrap(); // e5
    g.add_dep(c, e, 0, 1).unwrap(); // e6
    g.add_dep(d, a, 3, 3).unwrap(); // e7
    g.add_dep(d, f, 0, 2).unwrap(); // e8
    g.add_dep(e, f, 0, 1).unwrap(); // e9
    g.add_dep(f, e, 1, 1).unwrap(); // e10
    g
}

/// The 19-node general-time example of §5 (Figure 7).
///
/// **Reconstruction note** (see `DESIGN.md` §3): the paper's figure is
/// not machine-readable in the surviving text; node names, execution
/// times (`t(C) = t(F) = t(J) = t(L) = t(P) = 2`, all others 1) and the
/// published schedule tables are.  This graph keeps the published node
/// set and times and wires a layered structure consistent with those
/// tables (chains `A-B-...` on one side and `C-F-J-L-Q` on the other,
/// three loop-carried feedback paths).  Experiments on it reproduce the
/// paper's *shape* — start-up lengths in the low teens, compacted
/// lengths around a third of that, completely-connected shortest — not
/// its exact cells.
pub fn fig7_example() -> Csdfg {
    let mut g = Csdfg::new();
    for name in [
        "A", "B", "C", "D", "E", "F", "G", "H", "I", "J", "K", "L", "M", "N", "O", "P", "Q", "R",
        "S",
    ] {
        let t = matches!(name, "C" | "F" | "J" | "L" | "P")
            .then_some(2)
            .unwrap_or(1);
        g.add_task(name, t).expect("unique names");
    }
    let n = |s: &str| g.task_by_name(s).expect("known name");
    let edges: Vec<(&str, &str, u32, u32)> = vec![
        // layer 1 -> 2
        ("A", "B", 0, 1),
        ("A", "C", 0, 1),
        // layer 2 -> 3
        ("B", "D", 0, 1),
        ("B", "H", 0, 1),
        ("C", "G", 0, 2),
        ("C", "I", 0, 1),
        ("C", "E", 0, 2),
        // layer 3 -> 4
        ("D", "F", 0, 1),
        ("C", "F", 0, 1),
        ("H", "J", 0, 1),
        ("F", "J", 0, 1),
        ("I", "K", 0, 1),
        // layer 4 -> 5
        ("J", "K", 0, 2),
        ("J", "L", 0, 1),
        ("I", "L", 0, 1),
        ("K", "N", 0, 1),
        ("G", "N", 0, 1),
        ("N", "O", 0, 1),
        // layer 5 -> 6
        ("L", "Q", 0, 1),
        ("O", "Q", 0, 2),
        ("E", "M", 0, 1),
        // layer 6 -> 7
        ("M", "R", 0, 1),
        ("Q", "R", 0, 1),
        // layer 7 -> 8 -> 9
        ("O", "P", 0, 1),
        ("N", "P", 0, 2),
        ("P", "S", 0, 1),
        ("R", "S", 0, 1),
        // loop-carried feedback
        ("S", "A", 3, 2),
        ("R", "C", 2, 1),
        ("O", "G", 2, 1),
    ];
    let pairs: Vec<_> = edges
        .iter()
        .map(|&(u, v, d, c)| (n(u), n(v), d, c))
        .collect();
    for (u, v, d, c) in pairs {
        g.add_dep(u, v, d, c).expect("positive volumes");
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_model::timing;

    #[test]
    fn fig1_matches_paper_parameters() {
        let g = fig1_example();
        assert_eq!(g.task_count(), 6);
        assert_eq!(g.dep_count(), 10);
        assert!(g.check_legal().is_ok());
        assert_eq!(g.time(g.task_by_name("B").unwrap()), 2);
        assert_eq!(g.time(g.task_by_name("A").unwrap()), 1);
        assert_eq!(g.total_delay(), 4);
        // Critical path of the zero-delay DAG: A B E F = 6.
        let t = timing::analyze(&g).unwrap();
        assert_eq!(t.critical_path, 6);
    }

    #[test]
    fn fig1_iteration_bound_is_three() {
        let g = fig1_example();
        let b = ccs_retiming::iteration_bound(&g).unwrap();
        assert_eq!((b.num, b.den), (3, 1));
    }

    #[test]
    fn fig7_matches_published_times() {
        let g = fig7_example();
        assert_eq!(g.task_count(), 19);
        assert!(g.check_legal().is_ok());
        for (name, t) in [
            ("C", 2),
            ("F", 2),
            ("J", 2),
            ("L", 2),
            ("P", 2),
            ("A", 1),
            ("S", 1),
            ("M", 1),
        ] {
            assert_eq!(g.time(g.task_by_name(name).unwrap()), t, "t({name})");
        }
        // Total work: 5 nodes of 2 + 14 of 1 = 24.
        assert_eq!(g.total_time(), 24);
    }

    #[test]
    fn fig7_single_source_layering() {
        let g = fig7_example();
        // A is the only zero-delay root, S the only zero-delay sink.
        let roots: Vec<_> = g
            .tasks()
            .filter(|&v| g.intra_iter_in_deps(v).count() == 0)
            .map(|v| g.name(v).to_owned())
            .collect();
        assert_eq!(roots, vec!["A"]);
        let sinks: Vec<_> = g
            .tasks()
            .filter(|&v| g.intra_iter_out_deps(v).count() == 0)
            .map(|v| g.name(v).to_owned())
            .collect();
        assert_eq!(sinks, vec!["S"]);
    }

    #[test]
    fn fig7_critical_path_in_low_teens() {
        // Consistent with the paper's start-up lengths of 12-15.
        let g = fig7_example();
        let t = timing::analyze(&g).unwrap();
        assert!(
            (10..=14).contains(&t.critical_path),
            "critical path {}",
            t.critical_path
        );
    }

    #[test]
    fn fig7_is_cyclic_with_bound() {
        let g = fig7_example();
        let b = ccs_retiming::iteration_bound(&g).expect("cyclic");
        assert!(b.as_f64() > 1.0);
    }
}

//! A registry mapping workload names to constructors, used by the
//! experiment binaries and examples.

use crate::dsp_extra::{allpole_lattice, correlator, volterra2};
use crate::filters::{
    diffeq_solver, elliptic_wave_filter, fir_filter, iir_biquad_cascade, lattice_filter, OpTimes,
};
use crate::paper::{fig1_example, fig7_example};
use ccs_model::Csdfg;

/// A named workload.
#[derive(Clone)]
pub struct Workload {
    /// Registry key, e.g. `"elliptic"`.
    pub name: &'static str,
    /// Short human description.
    pub description: &'static str,
    builder: fn() -> Csdfg,
}

impl Workload {
    /// Builds a fresh instance of the workload graph.
    pub fn build(&self) -> Csdfg {
        (self.builder)()
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .finish()
    }
}

fn elliptic_default() -> Csdfg {
    elliptic_wave_filter(OpTimes::default())
}
fn lattice_default() -> Csdfg {
    lattice_filter(5, OpTimes::default())
}
fn fir_default() -> Csdfg {
    fir_filter(8, OpTimes::default())
}
fn iir_default() -> Csdfg {
    iir_biquad_cascade(3, OpTimes::default())
}
fn diffeq_default() -> Csdfg {
    diffeq_solver(OpTimes::default())
}
fn correlator_default() -> Csdfg {
    correlator(4, OpTimes { add: 3, mul: 7 })
}
fn allpole_default() -> Csdfg {
    allpole_lattice(4, OpTimes::default())
}
fn volterra_default() -> Csdfg {
    volterra2(3, OpTimes::default())
}

/// All registered workloads.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "fig1",
            description: "paper Figure 1(b): 6-node running example",
            builder: fig1_example,
        },
        Workload {
            name: "fig7",
            description: "paper Figure 7: 19-node example (reconstructed)",
            builder: fig7_example,
        },
        Workload {
            name: "elliptic",
            description: "fifth-order elliptic wave filter (34 ops)",
            builder: elliptic_default,
        },
        Workload {
            name: "lattice",
            description: "normalized lattice filter, 5 stages",
            builder: lattice_default,
        },
        Workload {
            name: "fir",
            description: "8-tap FIR filter",
            builder: fir_default,
        },
        Workload {
            name: "iir",
            description: "3-section IIR biquad cascade",
            builder: iir_default,
        },
        Workload {
            name: "diffeq",
            description: "HAL differential equation solver",
            builder: diffeq_default,
        },
        Workload {
            name: "correlator",
            description: "Leiserson-Saxe correlator, 4 taps (historical weights)",
            builder: correlator_default,
        },
        Workload {
            name: "allpole",
            description: "all-pole lattice filter, 4 stages",
            builder: allpole_default,
        },
        Workload {
            name: "volterra",
            description: "second-order Volterra section, 3 taps",
            builder: volterra_default,
        },
    ]
}

/// Looks a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_workload_builds_legal() {
        for w in all() {
            let g = w.build();
            assert!(g.check_legal().is_ok(), "{}", w.name);
            assert!(g.task_count() >= 6, "{}", w.name);
        }
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("elliptic").is_some());
        assert!(by_name("fig7").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn names_are_unique() {
        let names: Vec<_> = all().iter().map(|w| w.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn debug_formats_name() {
        let w = by_name("fig1").unwrap();
        assert!(format!("{w:?}").contains("fig1"));
    }
}

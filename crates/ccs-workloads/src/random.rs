//! Seeded random legal-CSDFG generation for sweeps and stress tests.

use ccs_model::Csdfg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for [`random_csdfg`].
#[derive(Clone, Copy, Debug)]
pub struct RandomGraphConfig {
    /// Number of tasks.
    pub nodes: usize,
    /// Probability of a zero-delay forward edge between any ordered
    /// pair `i < j`.
    pub forward_density: f64,
    /// Number of loop-carried back edges (each carries 1..=max_delay
    /// delays).
    pub back_edges: usize,
    /// Maximum computation time (inclusive, uniform in `1..=max_time`).
    pub max_time: u32,
    /// Maximum data volume (inclusive).
    pub max_volume: u32,
    /// Maximum delay on back edges (inclusive).
    pub max_delay: u32,
}

impl Default for RandomGraphConfig {
    fn default() -> Self {
        RandomGraphConfig {
            nodes: 20,
            forward_density: 0.15,
            back_edges: 5,
            max_time: 3,
            max_volume: 3,
            max_delay: 3,
        }
    }
}

/// Generates a random legal CSDFG: zero-delay edges only go "forward"
/// in node order (so the zero-delay view is a DAG by construction),
/// and `back_edges` extra edges carry at least one delay each.
/// Deterministic in `seed`.
pub fn random_csdfg(config: RandomGraphConfig, seed: u64) -> Csdfg {
    assert!(config.nodes >= 2, "need at least two nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Csdfg::new();
    let ids: Vec<_> = (0..config.nodes)
        .map(|i| {
            let t = rng.gen_range(1..=config.max_time.max(1));
            g.add_task(format!("v{i}"), t).expect("unique names")
        })
        .collect();
    // Forward DAG edges; guarantee connectivity with a random spine.
    for j in 1..config.nodes {
        let i = rng.gen_range(0..j);
        let vol = rng.gen_range(1..=config.max_volume.max(1));
        g.add_dep(ids[i], ids[j], 0, vol).expect("volume >= 1");
    }
    for i in 0..config.nodes {
        for j in (i + 1)..config.nodes {
            if rng.gen_bool(config.forward_density) {
                let vol = rng.gen_range(1..=config.max_volume.max(1));
                let delay = if rng.gen_bool(0.2) {
                    rng.gen_range(1..=config.max_delay.max(1))
                } else {
                    0
                };
                g.add_dep(ids[i], ids[j], delay, vol).expect("volume >= 1");
            }
        }
    }
    // Loop-carried back edges.
    for _ in 0..config.back_edges {
        let a = rng.gen_range(0..config.nodes);
        let b = rng.gen_range(0..config.nodes);
        let (src, dst) = if a >= b { (a, b) } else { (b, a) };
        let delay = rng.gen_range(1..=config.max_delay.max(1));
        let vol = rng.gen_range(1..=config.max_volume.max(1));
        g.add_dep(ids[src], ids[dst], delay, vol)
            .expect("volume >= 1");
    }
    debug_assert!(g.check_legal().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomGraphConfig::default();
        let a = random_csdfg(cfg, 42);
        let b = random_csdfg(cfg, 42);
        assert_eq!(ccs_model::parser::write(&a), ccs_model::parser::write(&b));
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = RandomGraphConfig::default();
        let a = random_csdfg(cfg, 1);
        let b = random_csdfg(cfg, 2);
        assert_ne!(ccs_model::parser::write(&a), ccs_model::parser::write(&b));
    }

    #[test]
    fn always_legal_across_seeds() {
        let cfg = RandomGraphConfig {
            nodes: 30,
            back_edges: 12,
            ..Default::default()
        };
        for seed in 0..50 {
            let g = random_csdfg(cfg, seed);
            assert!(g.check_legal().is_ok(), "seed {seed}");
            assert_eq!(g.task_count(), 30);
        }
    }

    #[test]
    fn spine_guarantees_single_weak_component() {
        let cfg = RandomGraphConfig {
            nodes: 15,
            forward_density: 0.0,
            back_edges: 0,
            ..Default::default()
        };
        let g = random_csdfg(cfg, 7);
        // Every node except v0 has at least one predecessor.
        for v in g.tasks() {
            if g.name(v) != "v0" {
                assert!(g.preds(v).count() > 0, "{} is orphaned", g.name(v));
            }
        }
    }

    #[test]
    fn respects_bounds() {
        let cfg = RandomGraphConfig {
            nodes: 25,
            max_time: 4,
            max_volume: 2,
            max_delay: 2,
            ..Default::default()
        };
        let g = random_csdfg(cfg, 9);
        for v in g.tasks() {
            assert!((1..=4).contains(&g.time(v)));
        }
        for e in g.deps() {
            assert!((1..=2).contains(&g.volume(e)));
            assert!(g.delay(e) <= 2);
        }
    }
}

//! Additional DSP kernels beyond the paper's Table 11 set: the
//! Leiserson–Saxe correlator, an all-pole lattice filter, and a
//! second-order Volterra filter section.  These broaden the benchmark
//! pool for the random/extension experiments.

use crate::filters::OpTimes;
use ccs_model::{Csdfg, NodeId};

/// The classic Leiserson–Saxe **correlator**: `taps` comparator stages
/// feeding an adder chain, one delay between consecutive comparators —
/// the motivating example of the original retiming paper.
///
/// Comparators take `times.add` cycles, adders `times.mul` cycles
/// (the original uses 3 and 7; pass `OpTimes { add: 3, mul: 7 }` for
/// the historical weights).
pub fn correlator(taps: usize, times: OpTimes) -> Csdfg {
    assert!(taps >= 2, "need at least two taps");
    let mut g = Csdfg::new();
    let host = g.add_task("host", 1).unwrap();
    let mut comparators: Vec<NodeId> = Vec::with_capacity(taps);
    for k in 0..taps {
        let c = g.add_task(format!("cmp{k}"), times.add).unwrap();
        if let Some(&prev) = comparators.last() {
            g.add_dep(prev, c, 1, 1).unwrap(); // the sliding delay line
        } else {
            g.add_dep(host, c, 0, 1).unwrap();
        }
        comparators.push(c);
    }
    // Adder chain accumulating comparator outputs back toward the host.
    let mut acc: Option<NodeId> = None;
    for (k, &c) in comparators.iter().enumerate().rev() {
        let a = g.add_task(format!("add{k}"), times.mul).unwrap();
        g.add_dep(c, a, 0, 1).unwrap();
        if let Some(prev) = acc {
            g.add_dep(prev, a, 0, 1).unwrap();
        }
        acc = Some(a);
    }
    g.add_dep(acc.expect("taps >= 2"), host, 1, 1).unwrap();
    debug_assert!(g.check_legal().is_ok());
    g
}

/// All-pole lattice filter: `stages` sections, each with one
/// multiplier pair and one adder pair, chained through per-stage state
/// delays (the backward path is the filter's memory).
pub fn allpole_lattice(stages: usize, times: OpTimes) -> Csdfg {
    assert!(stages >= 1, "need at least one stage");
    let mut g = Csdfg::new();
    let input = g.add_task("in", times.add).unwrap();
    let mut fwd = input;
    let mut prev_state: Option<NodeId> = None;
    for k in 0..stages {
        let m1 = g.add_task(format!("s{k}m1"), times.mul).unwrap();
        let a1 = g.add_task(format!("s{k}a1"), times.add).unwrap();
        let m2 = g.add_task(format!("s{k}m2"), times.mul).unwrap();
        let a2 = g.add_task(format!("s{k}a2"), times.add).unwrap();
        // f_{k+1} = f_k - kappa_k * b_k (b_k from the state delay)
        g.add_dep(fwd, a1, 0, 1).unwrap();
        g.add_dep(m1, a1, 0, 1).unwrap();
        g.add_dep(a1, m2, 0, 1).unwrap();
        g.add_dep(m2, a2, 0, 1).unwrap();
        // state: a2 of this iteration feeds m1/a2 of the next one.
        g.add_dep(a2, m1, 1, 1).unwrap();
        if let Some(p) = prev_state {
            g.add_dep(p, a2, 1, 1).unwrap();
        }
        prev_state = Some(a2);
        fwd = a1;
    }
    let out = g.add_task("out", times.add).unwrap();
    g.add_dep(fwd, out, 0, 1).unwrap();
    g.add_dep(out, input, 1, 1).unwrap();
    debug_assert!(g.check_legal().is_ok());
    g
}

/// Second-order Volterra filter section: a linear FIR part plus the
/// quadratic cross-terms `x[n-i] * x[n-j]`, `i <= j < taps` — dense in
/// multipliers, a good stress test for communication volumes (each
/// quadratic product ships `volume = 2`).
pub fn volterra2(taps: usize, times: OpTimes) -> Csdfg {
    assert!(
        (2..=5).contains(&taps),
        "taps in 2..=5 keeps the kernel reasonable"
    );
    let mut g = Csdfg::new();
    let x = g.add_task("x", times.add).unwrap();
    let mut partials: Vec<NodeId> = Vec::new();
    // linear taps
    for i in 0..taps {
        let m = g.add_task(format!("h{i}"), times.mul).unwrap();
        g.add_dep(x, m, i as u32, 1).unwrap();
        partials.push(m);
    }
    // quadratic taps
    for i in 0..taps {
        for j in i..taps {
            let p = g.add_task(format!("q{i}{j}"), times.mul).unwrap();
            g.add_dep(x, p, i as u32, 2).unwrap();
            g.add_dep(x, p, j as u32, 2).unwrap();
            partials.push(p);
        }
    }
    // adder tree (left-leaning chain is fine for scheduling studies)
    let mut acc = partials[0];
    for (k, &p) in partials.iter().enumerate().skip(1) {
        let a = g.add_task(format!("acc{k}"), times.add).unwrap();
        g.add_dep(acc, a, 0, 1).unwrap();
        g.add_dep(p, a, 0, 1).unwrap();
        acc = a;
    }
    let y = g.add_task("y", times.add).unwrap();
    g.add_dep(acc, y, 0, 1).unwrap();
    g.add_dep(y, x, 1, 1).unwrap();
    debug_assert!(g.check_legal().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_retiming::{clock_period, iteration_bound};

    #[test]
    fn correlator_with_historical_weights() {
        let g = correlator(3, OpTimes { add: 3, mul: 7 });
        assert!(g.check_legal().is_ok());
        // host + 3 comparators + 3 adders.
        assert_eq!(g.task_count(), 7);
        // The original correlator's claim: retiming cuts the clock
        // period from 24 to 13.
        let initial = clock_period::clock_period(&g);
        let (best, _) = clock_period::min_clock_period(&g);
        assert_eq!(initial, 24);
        assert_eq!(best, 13);
    }

    #[test]
    fn correlator_scales() {
        for taps in 2..=6 {
            let g = correlator(taps, OpTimes::default());
            assert!(g.check_legal().is_ok(), "{taps}");
            assert_eq!(g.task_count(), 2 * taps + 1);
            assert!(iteration_bound(&g).is_some());
        }
    }

    #[test]
    fn allpole_lattice_legal_and_cyclic() {
        for stages in 1..=5 {
            let g = allpole_lattice(stages, OpTimes::default());
            assert!(g.check_legal().is_ok(), "{stages}");
            assert_eq!(g.task_count(), 4 * stages + 2);
            assert!(iteration_bound(&g).is_some());
        }
    }

    #[test]
    fn volterra_counts() {
        let g = volterra2(3, OpTimes::default());
        // x + 3 linear + 6 quadratic + 8 accs + y = 19.
        assert_eq!(g.task_count(), 19);
        assert!(g.check_legal().is_ok());
        // quadratic products carry volume 2
        let heavy = g.deps().filter(|&e| g.volume(e) == 2).count();
        assert_eq!(heavy, 12);
    }

    #[test]
    #[should_panic(expected = "taps in 2..=5")]
    fn volterra_bounds_checked() {
        let _ = volterra2(9, OpTimes::default());
    }

    #[test]
    fn kernels_schedule_end_to_end() {
        use ccs_core::{cyclo_compact, CompactConfig};
        use ccs_topology::Machine;
        for g in [
            correlator(4, OpTimes::default()),
            allpole_lattice(3, OpTimes::default()),
            volterra2(3, OpTimes::default()),
        ] {
            let m = Machine::mesh(2, 2);
            let r = cyclo_compact(&g, &m, CompactConfig::default()).unwrap();
            assert!(ccs_schedule::validate(&r.graph, &m, &r.schedule).is_ok());
            assert!(r.best_length <= r.initial_length);
        }
    }
}

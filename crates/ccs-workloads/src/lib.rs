//! # ccs-workloads
//!
//! Benchmark CSDFGs for the cyclo-compaction reproduction:
//!
//! * [`paper`] — the graphs printed in the paper: Figure 1(b)'s 6-node
//!   running example and the (reconstructed) 19-node Figure 7 example;
//! * [`filters`] — the Table 11 applications (fifth-order elliptic
//!   wave filter, lattice filter) plus FIR, IIR-biquad and the HAL
//!   differential-equation solver;
//! * [`random`] — a seeded random legal-CSDFG generator for sweeps;
//! * [`catalog`] — a name -> constructor registry for harness code.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod catalog;
pub mod dsp_extra;
pub mod filters;
pub mod paper;
pub mod random;

pub use catalog::{all as all_workloads, by_name as workload_by_name, Workload};
pub use filters::OpTimes;
pub use random::{random_csdfg, RandomGraphConfig};

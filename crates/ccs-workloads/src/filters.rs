//! DSP filter benchmarks: the elliptic wave filter and the lattice
//! filter of the paper's Table 11, plus FIR and IIR-biquad generators.
//!
//! The paper names "5th elliptic" and "lattice" filters but does not
//! print their graphs; these are the standard constructions from the
//! high-level-synthesis / loop-scheduling literature with the
//! conventional weights `t(add) = 1`, `t(mul) = 2` (see `DESIGN.md`
//! §3).  All constructors produce *legal* CSDFGs whose only cycles run
//! through delay (state) elements.

use ccs_model::{Csdfg, NodeId};

/// Execution-time convention for arithmetic operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpTimes {
    /// Adder latency in control steps.
    pub add: u32,
    /// Multiplier latency in control steps.
    pub mul: u32,
}

impl Default for OpTimes {
    fn default() -> Self {
        OpTimes { add: 1, mul: 2 }
    }
}

/// Fifth-order elliptic *wave digital filter*: the classic 34-operation
/// benchmark (26 additions, 8 multiplications) arranged as five
/// adaptor sections around five state delays.
///
/// The construction (per section `k`):
///
/// ```text
/// in_k   = add(chain_{k-1}, state_k)        state_k = 1-delay edge
/// scaled = mul(in_k)                        (adaptor coefficient)
/// up_k   = add(in_k, scaled)                forward output
/// dn_k   = add(scaled, state_k)             reflected wave
/// new_k  = add(up_k, dn_k)  --(1 delay)--> in_k of the next iteration
/// ```
///
/// plus input/output scaling multipliers and adders; cycles exist only
/// through the state (delay) edges, so the graph is a legal CSDFG.
pub fn elliptic_wave_filter(times: OpTimes) -> Csdfg {
    let mut g = Csdfg::new();
    let add = |g: &mut Csdfg, name: String| g.add_task(name, times.add).expect("unique");
    let mul = |g: &mut Csdfg, name: String| g.add_task(name, times.mul).expect("unique");

    // Input stage: scale + injection adder.
    let in_mul = mul(&mut g, "inM".into());
    let in_add = add(&mut g, "inA".into());
    g.add_dep(in_mul, in_add, 0, 1).unwrap();

    let mut chain = in_add; // forward signal flowing through sections
    let mut prev_new: Option<NodeId> = None;
    for k in 0..5 {
        let in_k = add(&mut g, format!("s{k}in"));
        let m_k = mul(&mut g, format!("s{k}m"));
        let up_k = add(&mut g, format!("s{k}up"));
        let dn_k = add(&mut g, format!("s{k}dn"));
        let new_k = add(&mut g, format!("s{k}st"));
        g.add_dep(chain, in_k, 0, 1).unwrap();
        g.add_dep(in_k, m_k, 0, 1).unwrap();
        g.add_dep(in_k, up_k, 0, 1).unwrap();
        g.add_dep(m_k, up_k, 0, 1).unwrap();
        g.add_dep(m_k, dn_k, 0, 1).unwrap();
        g.add_dep(up_k, new_k, 0, 1).unwrap();
        g.add_dep(dn_k, new_k, 0, 1).unwrap();
        // State: this iteration's new_k feeds next iteration's in_k/dn_k.
        g.add_dep(new_k, in_k, 1, 1).unwrap();
        g.add_dep(new_k, dn_k, 1, 1).unwrap();
        // Adjacent sections exchange reflected waves.
        if let Some(prev) = prev_new {
            g.add_dep(prev, up_k, 1, 1).unwrap();
        }
        prev_new = Some(new_k);
        chain = up_k;
    }

    // Output stage: 2 scaling muls + 5 combining adders to reach the
    // benchmark's 26-add / 8-mul operation mix.
    let out_m1 = mul(&mut g, "outM1".into());
    let out_m2 = mul(&mut g, "outM2".into());
    g.add_dep(chain, out_m1, 0, 1).unwrap();
    g.add_dep(chain, out_m2, 0, 1).unwrap();
    let mut tail = out_m1;
    for i in 0..4 {
        let a = add(&mut g, format!("outA{i}"));
        g.add_dep(tail, a, 0, 1).unwrap();
        if i == 0 {
            g.add_dep(out_m2, a, 0, 1).unwrap();
        }
        tail = a;
    }
    let out = add(&mut g, "out".into());
    g.add_dep(tail, out, 0, 1).unwrap();
    // Overall feedback: the output conditions next iteration's input.
    g.add_dep(out, in_add, 1, 1).unwrap();
    g.add_dep(out, in_mul, 2, 1).unwrap();

    debug_assert!(g.check_legal().is_ok());
    g
}

/// Normalized lattice filter with `stages` cross-coupled sections
/// (2 multiplications + 2 additions per stage, one state delay per
/// stage, plus an input adder and an output accumulator chain).
pub fn lattice_filter(stages: usize, times: OpTimes) -> Csdfg {
    assert!(stages >= 1, "need at least one lattice stage");
    let mut g = Csdfg::new();
    let input = g.add_task("in", times.add).unwrap();
    let mut fwd = input; // forward path f_k
    let mut acc: Option<NodeId> = None;
    for k in 0..stages {
        let m_up = g.add_task(format!("k{k}mu"), times.mul).unwrap();
        let m_dn = g.add_task(format!("k{k}md"), times.mul).unwrap();
        let a_up = g.add_task(format!("k{k}au"), times.add).unwrap();
        let a_dn = g.add_task(format!("k{k}ad"), times.add).unwrap();
        // f_{k+1} = f_k + kappa * b_k ; b_{k+1} = b_k + kappa * f_k
        // b_k arrives through the stage's state delay.
        g.add_dep(fwd, m_up, 0, 1).unwrap();
        g.add_dep(fwd, a_dn, 0, 1).unwrap();
        g.add_dep(m_up, a_up, 0, 1).unwrap();
        g.add_dep(m_dn, a_dn, 0, 1).unwrap();
        // state: previous iteration's a_dn output is this stage's b_k.
        g.add_dep(a_dn, m_dn, 1, 1).unwrap();
        g.add_dep(a_dn, a_up, 1, 1).unwrap();
        // accumulate the backward taps into the output.
        acc = Some(match acc {
            None => a_up,
            Some(prev) => {
                let a = g.add_task(format!("k{k}acc"), times.add).unwrap();
                g.add_dep(prev, a, 0, 1).unwrap();
                g.add_dep(a_up, a, 0, 1).unwrap();
                a
            }
        });
        fwd = a_up;
    }
    let out = g.add_task("out", times.add).unwrap();
    g.add_dep(acc.expect("stages >= 1"), out, 0, 1).unwrap();
    // Output feeds back into the input adder one iteration later.
    g.add_dep(out, input, 1, 1).unwrap();
    debug_assert!(g.check_legal().is_ok());
    g
}

/// Direct-form FIR filter with `taps` taps: `taps` multiplications and
/// an adder chain; the sample stream enters through a delay line.
pub fn fir_filter(taps: usize, times: OpTimes) -> Csdfg {
    assert!(taps >= 2, "need at least two taps");
    let mut g = Csdfg::new();
    let src = g.add_task("x", times.add).unwrap();
    let mut prev_sum: Option<NodeId> = None;
    for k in 0..taps {
        let m = g.add_task(format!("m{k}"), times.mul).unwrap();
        // tap k reads the sample delayed k iterations.
        g.add_dep(src, m, k as u32, 1).unwrap();
        prev_sum = Some(match prev_sum {
            None => m,
            Some(p) => {
                let a = g.add_task(format!("a{k}"), times.add).unwrap();
                g.add_dep(p, a, 0, 1).unwrap();
                g.add_dep(m, a, 0, 1).unwrap();
                a
            }
        });
    }
    let y = g.add_task("y", times.add).unwrap();
    g.add_dep(prev_sum.expect("taps >= 2"), y, 0, 1).unwrap();
    // Close the loop so the graph is cyclic (streaming source driven by
    // the previous iteration's completion).
    g.add_dep(y, src, 1, 1).unwrap();
    debug_assert!(g.check_legal().is_ok());
    g
}

/// Cascade of `sections` IIR biquad sections (Direct Form II): per
/// section 4 multiplications, 4 additions and two state delays.
pub fn iir_biquad_cascade(sections: usize, times: OpTimes) -> Csdfg {
    assert!(sections >= 1, "need at least one biquad");
    let mut g = Csdfg::new();
    let mut signal = g.add_task("in", times.add).unwrap();
    for s in 0..sections {
        let w = g.add_task(format!("b{s}w"), times.add).unwrap(); // w[n] = x - a1 w1 - a2 w2
        let a1 = g.add_task(format!("b{s}a1"), times.mul).unwrap();
        let a2 = g.add_task(format!("b{s}a2"), times.mul).unwrap();
        let b1 = g.add_task(format!("b{s}b1"), times.mul).unwrap();
        let b2 = g.add_task(format!("b{s}b2"), times.mul).unwrap();
        let sum1 = g.add_task(format!("b{s}s1"), times.add).unwrap();
        let sum2 = g.add_task(format!("b{s}s2"), times.add).unwrap();
        let y = g.add_task(format!("b{s}y"), times.add).unwrap();
        g.add_dep(signal, w, 0, 1).unwrap();
        // feedback taps read w delayed by 1 and 2 iterations.
        g.add_dep(w, a1, 1, 1).unwrap();
        g.add_dep(w, a2, 2, 1).unwrap();
        g.add_dep(a1, w, 0, 1).unwrap();
        g.add_dep(a2, w, 0, 1).unwrap();
        // feedforward taps.
        g.add_dep(w, b1, 1, 1).unwrap();
        g.add_dep(w, b2, 2, 1).unwrap();
        g.add_dep(w, sum1, 0, 1).unwrap();
        g.add_dep(b1, sum1, 0, 1).unwrap();
        g.add_dep(sum1, sum2, 0, 1).unwrap();
        g.add_dep(b2, sum2, 0, 1).unwrap();
        g.add_dep(sum2, y, 0, 1).unwrap();
        signal = y;
    }
    let out = g.add_task("out", times.add).unwrap();
    g.add_dep(signal, out, 0, 1).unwrap();
    g.add_dep(out, g.task_by_name("in").unwrap(), 1, 1).unwrap();
    debug_assert!(g.check_legal().is_ok());
    g
}

/// The HAL differential-equation solver benchmark (`y'' + 3xy' + 3y =
/// 0` integrated by Euler steps), as a cyclic CSDFG: the states `x`,
/// `y`, `u = y'` cycle through one-iteration delays.
pub fn diffeq_solver(times: OpTimes) -> Csdfg {
    let mut g = Csdfg::new();
    let x = g.add_task("x", times.add).unwrap(); // x + dt
    let u = g.add_task("u", times.add).unwrap(); // u - mul5 - mul6
    let y = g.add_task("y", times.add).unwrap(); // y + u*dt
    let m1 = g.add_task("3x", times.mul).unwrap(); // 3*x
    let m2 = g.add_task("ux", times.mul).unwrap(); // u * 3x
    let m3 = g.add_task("uxdt", times.mul).unwrap(); // (u*3x)*dt
    let m4 = g.add_task("3y", times.mul).unwrap(); // 3*y
    let m5 = g.add_task("3ydt", times.mul).unwrap(); // 3y*dt
    let m6 = g.add_task("udt", times.mul).unwrap(); // u*dt
    let sub = g.add_task("sub", times.add).unwrap(); // partial u update
                                                     // state reads from the previous iteration
    for (src, dst) in [(x, m1), (u, m2), (y, m4), (u, m6), (u, sub), (x, x), (y, y)] {
        g.add_dep(src, dst, 1, 1).unwrap();
    }
    // same-iteration arithmetic
    g.add_dep(m1, m2, 0, 1).unwrap();
    g.add_dep(m2, m3, 0, 1).unwrap();
    g.add_dep(m4, m5, 0, 1).unwrap();
    g.add_dep(m3, sub, 0, 1).unwrap();
    g.add_dep(sub, u, 0, 1).unwrap();
    g.add_dep(m5, u, 0, 1).unwrap();
    g.add_dep(m6, y, 0, 1).unwrap();
    debug_assert!(g.check_legal().is_ok());
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_retiming::iteration_bound;

    #[test]
    fn elliptic_has_the_benchmark_operation_mix() {
        let g = elliptic_wave_filter(OpTimes::default());
        assert_eq!(g.task_count(), 34);
        let muls = g.tasks().filter(|&v| g.time(v) == 2).count();
        let adds = g.tasks().filter(|&v| g.time(v) == 1).count();
        assert_eq!(muls, 8);
        assert_eq!(adds, 26);
        assert!(g.check_legal().is_ok());
    }

    #[test]
    fn elliptic_is_cyclic_through_delays_only() {
        let g = elliptic_wave_filter(OpTimes::default());
        assert!(iteration_bound(&g).is_some());
        // Zero-delay view must be a DAG (legality), already asserted;
        // additionally every delay edge participates in some cycle is
        // not required, but the graph must have >= 12 delay tokens
        // (5 sections x 2 + bridges + overall feedback).
        assert!(g.total_delay() >= 12);
    }

    #[test]
    fn elliptic_custom_op_times() {
        let g = elliptic_wave_filter(OpTimes { add: 2, mul: 5 });
        let muls = g.tasks().filter(|&v| g.time(v) == 5).count();
        assert_eq!(muls, 8);
    }

    #[test]
    fn lattice_scales_with_stages() {
        for stages in 1..=6 {
            let g = lattice_filter(stages, OpTimes::default());
            assert!(g.check_legal().is_ok(), "{stages} stages");
            // 4 ops per stage + acc chain (stages-1) + in + out.
            assert_eq!(g.task_count(), 4 * stages + (stages - 1) + 2);
            assert!(iteration_bound(&g).is_some());
        }
    }

    #[test]
    fn fir_taps_and_delays() {
        let g = fir_filter(8, OpTimes::default());
        // 8 muls + 7 adds + x + y.
        assert_eq!(g.task_count(), 17);
        assert!(g.check_legal().is_ok());
        // Deepest tap reads 7 iterations back.
        let max_d = g.deps().map(|e| g.delay(e)).max().unwrap();
        assert_eq!(max_d, 7);
    }

    #[test]
    fn iir_biquads_are_legal_and_cyclic() {
        for sections in 1..=3 {
            let g = iir_biquad_cascade(sections, OpTimes::default());
            assert!(g.check_legal().is_ok());
            assert_eq!(g.task_count(), 8 * sections + 2);
            assert!(iteration_bound(&g).is_some(), "{sections}");
        }
    }

    #[test]
    fn diffeq_solver_shape() {
        let g = diffeq_solver(OpTimes::default());
        assert_eq!(g.task_count(), 10);
        let muls = g.tasks().filter(|&v| g.time(v) == 2).count();
        assert_eq!(muls, 6);
        assert!(g.check_legal().is_ok());
        assert!(iteration_bound(&g).is_some());
    }

    #[test]
    fn slowdown_three_matches_table11_setup() {
        // Table 11 runs the filters with slow-down factor 3; the
        // transformed graphs must stay legal and keep their op counts.
        let e3 = ccs_model::transform::slowdown(&elliptic_wave_filter(OpTimes::default()), 3);
        assert!(e3.check_legal().is_ok());
        assert_eq!(e3.task_count(), 34);
        let l3 = ccs_model::transform::slowdown(&lattice_filter(5, OpTimes::default()), 3);
        assert!(l3.check_legal().is_ok());
        // Slow-down divides the iteration bound by 3.
        let b1 = iteration_bound(&lattice_filter(5, OpTimes::default())).unwrap();
        let b3 = iteration_bound(&l3).unwrap();
        assert!((b3.as_f64() * 3.0 - b1.as_f64()).abs() < 1e-9);
    }
}

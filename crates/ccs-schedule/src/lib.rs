//! # ccs-schedule
//!
//! Static cyclic schedule tables for the ICPP'95 cyclo-compaction
//! scheduler, and the independent validity checker the rest of the
//! stack is tested against.
//!
//! * [`Schedule`] — the control-step x processor grid of the paper's
//!   figures: `CB`/`CE`/`PE` accessors (Definitions 3.1–3.3),
//!   occupancy queries, first-row extraction and the post-rotation
//!   renumbering, padding with empty control steps, and a
//!   pretty-printer reproducing the paper's table layout;
//! * [`checker`] — intra-iteration precedence with communication
//!   costs, the projected schedule length `PSL` (Lemma 4.3), and the
//!   full validator.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checker;
pub mod stats;
pub mod svg;
mod table;

pub use checker::{edge_comm_cost, psl, psl_value, required_length, validate, Violation};
pub use stats::{stats, to_csv, ScheduleStats};
pub use svg::{to_svg, SvgOptions};
pub use table::{Occupancy, Schedule, Slot, TableError};

#[cfg(test)]
mod proptests {
    use super::*;
    use ccs_model::NodeId;
    use ccs_topology::Pe;
    use proptest::prelude::*;

    /// Random placements into a fixed-size table; placement conflicts
    /// are allowed to fail (we only keep successful ones).
    fn arb_schedule() -> impl Strategy<Value = Schedule> {
        (
            1usize..5,
            proptest::collection::vec((0u32..4, 1u32..10, 1u32..4), 0..12),
        )
            .prop_map(|(pes, reqs)| {
                let mut s = Schedule::new(pes);
                for (i, (pe, start, dur)) in reqs.into_iter().enumerate() {
                    let pe = Pe(pe % pes as u32);
                    let _ = s.place(NodeId::from_index(i), pe, start, dur);
                }
                s
            })
    }

    proptest! {
        #[test]
        fn occupancy_and_slots_agree(s in arb_schedule()) {
            for (node, slot) in s.placements() {
                for cs in slot.start..=slot.end() {
                    prop_assert_eq!(s.at(slot.pe, cs), Some(node));
                }
                prop_assert_eq!(s.cb(node).unwrap(), slot.start);
                prop_assert_eq!(s.ce(node).unwrap(), slot.end());
            }
        }

        #[test]
        fn length_is_max_end(s in arb_schedule()) {
            let max_end = s.placements().map(|(_, sl)| sl.end()).max().unwrap_or(0);
            prop_assert_eq!(s.length(), max_end + s.padding());
        }

        #[test]
        fn earliest_free_returns_free_interval(s in arb_schedule(), from in 1u32..12, dur in 1u32..4) {
            for pe in 0..s.num_pes() {
                let pe = Pe(pe as u32);
                let cs = s.earliest_free(pe, from, dur);
                prop_assert!(cs >= from);
                prop_assert!(s.is_free(pe, cs, dur));
                // Minimality: no earlier start >= from is free.
                for earlier in from..cs {
                    prop_assert!(!s.is_free(pe, earlier, dur));
                }
            }
        }

        #[test]
        fn occupancy_stats_are_consistent(s in arb_schedule()) {
            let occ = s.occupancy();
            let busy: u64 = s.placements().map(|(_, sl)| u64::from(sl.duration)).sum();
            prop_assert_eq!(occ.busy_cells, busy);
            prop_assert_eq!(occ.length, s.length());
            prop_assert!((occ.used_pes as usize) <= s.num_pes());
            // busy + holes = sum over PEs of the last occupied step.
            let mut last_per_pe = vec![0u64; s.num_pes()];
            for (pe, cs, _) in s.occupied_cells() {
                let cell = &mut last_per_pe[pe.index()];
                *cell = (*cell).max(u64::from(cs));
            }
            prop_assert_eq!(occ.busy_cells + occ.holes, last_per_pe.iter().sum::<u64>());
        }

        #[test]
        fn remove_then_place_round_trips(s in arb_schedule()) {
            let mut s = s;
            let placements: Vec<_> = s.placements().collect();
            for (n, slot) in &placements {
                s.remove(*n).unwrap();
                s.place(*n, slot.pe, slot.start, slot.duration).unwrap();
            }
            let after: Vec<_> = s.placements().collect();
            prop_assert_eq!(after, placements);
        }
    }
}

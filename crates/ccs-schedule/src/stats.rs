//! Schedule statistics and exports.

use crate::checker::edge_comm_cost;
use crate::table::Schedule;
use ccs_model::Csdfg;
use ccs_topology::Machine;

/// Aggregate statistics of a placed schedule.
#[derive(Clone, Debug, PartialEq)]
pub struct ScheduleStats {
    /// Static schedule length.
    pub length: u32,
    /// Busy control steps per PE.
    pub busy: Vec<u32>,
    /// Number of PEs running at least one task.
    pub used_pes: usize,
    /// Mean utilization over all PEs in `[0, 1]`.
    pub utilization: f64,
    /// Edges crossing processors (per iteration).
    pub cross_edges: usize,
    /// Total `hops * volume` per iteration.
    pub traffic: u64,
}

/// Computes [`ScheduleStats`] for `sched` hosting `g` on `machine`.
///
/// # Panics
///
/// Panics if some task of `g` is unplaced.
pub fn stats(g: &Csdfg, machine: &Machine, sched: &Schedule) -> ScheduleStats {
    let mut busy = vec![0u32; machine.num_pes()];
    for v in g.tasks() {
        // INVARIANT: documented contract — stats requires a complete
        // schedule (see the doc comment's Panics section).
        let pe = sched.pe(v).expect("task placed");
        busy[pe.index()] += g.time(v);
    }
    let used_pes = busy.iter().filter(|&&b| b > 0).count();
    let length = sched.length();
    let utilization = if length == 0 {
        0.0
    } else {
        busy.iter().map(|&b| f64::from(b)).sum::<f64>()
            / (f64::from(length) * machine.num_pes() as f64)
    };
    let mut cross_edges = 0;
    let mut traffic = 0u64;
    for e in g.deps() {
        let cost = edge_comm_cost(g, machine, sched, e);
        if cost > 0 {
            cross_edges += 1;
            traffic += u64::from(cost);
        }
    }
    ScheduleStats {
        length,
        busy,
        used_pes,
        utilization,
        cross_edges,
        traffic,
    }
}

/// Exports the schedule as CSV: `task,pe,start,end` rows (1-based
/// control steps, 1-based PE numbering like the paper's tables).
pub fn to_csv(g: &Csdfg, sched: &Schedule) -> String {
    let mut rows: Vec<(u32, u32, String, u32)> = g
        .tasks()
        .filter_map(|v| {
            sched
                .slot(v)
                .map(|s| (s.start, s.pe.0 + 1, g.name(v).to_owned(), s.end()))
        })
        .collect();
    rows.sort();
    let mut out = String::from("task,pe,start,end\n");
    for (start, pe, name, end) in rows {
        out.push_str(&format!("{name},{pe},{start},{end}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_topology::Pe;

    fn setup() -> (Csdfg, Machine, Schedule) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        let c = g.add_task("C", 1).unwrap();
        g.add_dep(a, b, 0, 2).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        let m = Machine::linear_array(3);
        let mut s = Schedule::new(3);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(0), 2, 2).unwrap();
        s.place(c, Pe(1), 3, 1).unwrap();
        s.pad_to(4);
        (g, m, s)
    }

    #[test]
    fn stats_accounting() {
        let (g, m, s) = setup();
        let st = stats(&g, &m, &s);
        assert_eq!(st.length, 4);
        assert_eq!(st.busy, vec![3, 1, 0]);
        assert_eq!(st.used_pes, 2);
        assert!((st.utilization - 4.0 / 12.0).abs() < 1e-12);
        // A->C crosses one hop with volume 1.
        assert_eq!(st.cross_edges, 1);
        assert_eq!(st.traffic, 1);
    }

    #[test]
    fn csv_rows_sorted_by_start() {
        let (g, _, s) = setup();
        let csv = to_csv(&g, &s);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "task,pe,start,end");
        assert_eq!(lines[1], "A,1,1,1");
        assert_eq!(lines[2], "B,1,2,3");
        assert_eq!(lines[3], "C,2,3,3");
    }

    #[test]
    fn empty_schedule_stats() {
        let g = Csdfg::new();
        let m = Machine::complete(2);
        let s = Schedule::new(2);
        let st = stats(&g, &m, &s);
        assert_eq!(st.length, 0);
        assert_eq!(st.used_pes, 0);
        assert_eq!(st.utilization, 0.0);
    }
}

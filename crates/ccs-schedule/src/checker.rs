//! Independent schedule validity checking: the paper's precedence,
//! communication, and projected-schedule-length constraints, plus
//! machine-aware and table-consistency checks.
//!
//! # Timing convention
//!
//! One consistent arrival rule is used everywhere (see `DESIGN.md` §2):
//! data produced by `u` and consumed by `v` with `k = d(e)` delays and
//! communication cost `M = hops(PE(u), PE(v)) * c(e)` is usable from
//! control step `CE(u) + M + 1` of iteration `i`, counted against
//! `CB(v)` of iteration `i + k`.  With static schedule length `L` this
//! yields:
//!
//! * `k == 0` (intra-iteration): `CB(v) >= CE(u) + M + 1`;
//! * `k >= 1` (inter-iteration): `L >= PSL(e)` where
//!   `PSL(e) = ceil((M + CE(u) - CB(v) + 1) / k)`
//!   (Lemma 4.3, with the `+1` restored for consistency with the
//!   start-up scheduler and Lemma 4.2).
//!
//! # Diagnostics codes
//!
//! Every violation carries a stable `CCS0xx` code
//! ([`Violation::code`]); `ccs-analyze` re-exports these as structured
//! diagnostics, and the `paranoid` oracle in `ccs-core` reports them
//! when an in-place compaction pass corrupts its schedule.  [`validate`]
//! is *total*: it never panics on malformed input (nonexistent PEs,
//! disconnected machines, desynchronized tables) — it reports instead.

use crate::table::Schedule;
use ccs_model::{Csdfg, EdgeId, NodeId};
use ccs_topology::{Machine, Pe};
use std::fmt;

/// One constraint violation found by [`validate`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A task was never placed.
    Unplaced(NodeId),
    /// An intra-iteration dependency starts too early.
    Precedence {
        /// The violated edge.
        edge: EdgeId,
        /// Earliest legal start of the consumer.
        earliest: u32,
        /// Actual start of the consumer.
        actual: u32,
    },
    /// The schedule length is below the projected schedule length of a
    /// loop-carried dependency.
    LengthTooShort {
        /// The constraining edge.
        edge: EdgeId,
        /// Required minimum length (its `PSL`).
        required: u32,
        /// Actual schedule length.
        actual: u32,
    },
    /// Two tasks overlap on one processor (only possible for schedules
    /// corrupted outside [`Schedule::place`]'s checks).
    Overlap {
        /// First task.
        a: NodeId,
        /// Second task.
        b: NodeId,
    },
    /// A task is placed on a processor the machine does not have.
    BadPe {
        /// The misplaced task.
        node: NodeId,
        /// Its (out-of-range) processor.
        pe: Pe,
        /// Number of PEs the machine actually has.
        num_pes: usize,
    },
    /// An edge's endpoints sit on PEs with no connecting path in the
    /// machine topology — the hop lookup (and hence the communication
    /// cost) is undefined.
    UnreachablePes {
        /// The stranded edge.
        edge: EdgeId,
        /// Producer's processor.
        from: Pe,
        /// Consumer's processor.
        to: Pe,
    },
    /// The occupancy index and the slot list disagree about this node —
    /// a duplicate or stale placement left behind by a buggy in-place
    /// mutation.
    DuplicatePlacement {
        /// The node with inconsistent table state.
        node: NodeId,
    },
}

impl Violation {
    /// The stable diagnostics code of this violation (see `DESIGN.md`
    /// §"Diagnostics" for the full catalogue and paper references).
    pub fn code(&self) -> &'static str {
        match self {
            Violation::Unplaced(_) => "CCS020",
            Violation::Precedence { .. } => "CCS021",
            Violation::LengthTooShort { .. } => "CCS022",
            Violation::Overlap { .. } => "CCS023",
            Violation::BadPe { .. } => "CCS024",
            Violation::UnreachablePes { .. } => "CCS025",
            Violation::DuplicatePlacement { .. } => "CCS026",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.code())?;
        match self {
            Violation::Unplaced(n) => write!(f, "task {n} is not placed"),
            Violation::Precedence {
                edge,
                earliest,
                actual,
            } => write!(
                f,
                "edge {edge}: consumer starts at cs{actual}, earliest legal cs{earliest}"
            ),
            Violation::LengthTooShort {
                edge,
                required,
                actual,
            } => write!(
                f,
                "edge {edge}: schedule length {actual} below projected length {required}"
            ),
            Violation::Overlap { a, b } => write!(f, "tasks {a} and {b} overlap on one PE"),
            Violation::BadPe { node, pe, num_pes } => write!(
                f,
                "task {node} placed on {pe}, but the machine has only {num_pes} PEs"
            ),
            Violation::UnreachablePes { edge, from, to } => write!(
                f,
                "edge {edge}: no path between {from} and {to} in the machine topology"
            ),
            Violation::DuplicatePlacement { node } => write!(
                f,
                "task {node}: occupancy cells disagree with its recorded slot \
                 (duplicate or stale placement)"
            ),
        }
    }
}

/// Communication cost of edge `e` for the placements in `s`
/// (the paper's `M(PE(u), PE(v)) * c(e)`, zero if either endpoint is
/// unplaced or they share a PE).
///
/// # Panics
///
/// Panics if the placements name out-of-range PEs or PEs in different
/// partitions of a disconnected machine.  Scheduler code only builds
/// placements on real, connected PEs; diagnostics code that must stay
/// total goes through [`Machine::try_comm_cost`] instead.
pub fn edge_comm_cost(g: &Csdfg, m: &Machine, s: &Schedule, e: EdgeId) -> u32 {
    let (u, v) = g.endpoints(e);
    match (s.pe(u), s.pe(v)) {
        (Some(pu), Some(pv)) => m.comm_cost(pu, pv, g.volume(e)),
        _ => 0,
    }
}

/// The PSL core arithmetic of Lemma 4.3: `ceil((m + ce - cb + 1) / k)`
/// for a possibly negative numerator and `k >= 1`.
///
/// This is the single shared implementation of the single-division
/// fast path (delay-1 edges skip the division entirely; larger delays
/// use one `div_euclid` plus a product check instead of two
/// divisions).  Both the schedule checker ([`psl`]) and the remapping
/// hot loop in `ccs-core` call it, so the checker and the scheduler
/// can never disagree on rounding.
#[inline]
pub fn psl_value(m: i64, ce: i64, cb: i64, k: i64) -> i64 {
    let num = m + ce - cb + 1;
    if k == 1 {
        num
    } else {
        let d = num.div_euclid(k);
        d + i64::from(num != d * k)
    }
}

/// Projected schedule length of a loop-carried edge (`d(e) >= 1`):
/// the minimum static schedule length that satisfies it.
///
/// Returns `None` for zero-delay edges, when an endpoint is unplaced,
/// or when the endpoints' PEs cannot reach each other (no finite
/// communication cost exists, hence no finite PSL).
pub fn psl(g: &Csdfg, m: &Machine, s: &Schedule, e: EdgeId) -> Option<u32> {
    let k = g.delay(e);
    if k == 0 {
        return None;
    }
    let (u, v) = g.endpoints(e);
    let ce_u = i64::from(s.ce(u)?);
    let cb_v = i64::from(s.cb(v)?);
    let mm = i64::from(m.try_comm_cost(s.pe(u)?, s.pe(v)?, g.volume(e))?);
    let q = psl_value(mm, ce_u, cb_v, i64::from(k));
    // INVARIANT: q is clamped to >= 0 and bounded by M + CE(u) + 1,
    // both of which are sums/products of u32 values well below 2^33,
    // so the conversion cannot truncate.
    Some(u32::try_from(q.max(0)).unwrap_or(u32::MAX))
}

/// The minimum legal length for the *current placements* of `s`:
/// `max(max_u CE(u), max_e PSL(e))`.
pub fn required_length(g: &Csdfg, m: &Machine, s: &Schedule) -> u32 {
    let occupied = g.tasks().filter_map(|v| s.ce(v)).max().unwrap_or(0);
    let psl_max = g.deps().filter_map(|e| psl(g, m, s, e)).max().unwrap_or(0);
    occupied.max(psl_max)
}

/// `true` when the slot's processor exists on `m`.
fn pe_in_range(m: &Machine, pe: Pe) -> bool {
    pe.index() < m.num_pes()
}

/// Validates `s` as a static cyclic schedule of `g` on machine `m`.
///
/// Checks, in order: every task placed; every placement on a PE the
/// machine actually has; the occupancy index consistent with the slot
/// list; no PE overlap; reachability of every cross-PE edge in the
/// topology; intra-iteration precedence with communication; and the
/// PSL bound for every loop-carried edge.  Returns all violations
/// found.  Never panics on malformed schedules — corruption is
/// reported, not crashed on.
pub fn validate(g: &Csdfg, m: &Machine, s: &Schedule) -> Result<(), Vec<Violation>> {
    let mut violations = Vec::new();
    for v in g.tasks() {
        match s.slot(v) {
            None => violations.push(Violation::Unplaced(v)),
            Some(slot) => {
                debug_assert_eq!(
                    slot.duration,
                    g.time(v),
                    "slot duration disagrees with t({})",
                    g.name(v)
                );
            }
        }
    }
    if !violations.is_empty() {
        return Err(violations);
    }

    // Machine-aware placement sanity: the table may have been built for
    // a machine with more PEs than `m` has.
    for (node, slot) in s.placements() {
        if !pe_in_range(m, slot.pe) {
            violations.push(Violation::BadPe {
                node,
                pe: slot.pe,
                num_pes: m.num_pes(),
            });
        }
    }

    // Table self-consistency: every occupied cell must belong to the
    // recorded slot of its node, and every slot must have all its cells
    // marked.  A mismatch in either direction means a duplicate or
    // stale placement (the occupancy index desynchronized from the slot
    // list).
    let mut desynced: Vec<NodeId> = Vec::new();
    for (pe, cs, node) in s.occupied_cells() {
        let consistent = s
            .slot(node)
            .is_some_and(|sl| sl.pe == pe && sl.start <= cs && cs <= sl.end());
        if !consistent {
            desynced.push(node);
        }
    }
    for (node, slot) in s.placements() {
        let covered = (slot.start..=slot.end()).all(|cs| s.at(slot.pe, cs) == Some(node));
        if !covered {
            desynced.push(node);
        }
    }
    desynced.sort();
    desynced.dedup();
    for node in desynced {
        violations.push(Violation::DuplicatePlacement { node });
    }

    // Overlaps (re-derive from slots; Schedule::place prevents them, but
    // schedules may be deserialized or hand-built).
    let placed: Vec<(NodeId, crate::table::Slot)> = s.placements().collect();
    for (i, &(a, sa)) in placed.iter().enumerate() {
        for &(b, sb) in &placed[i + 1..] {
            if sa.pe == sb.pe && sa.start <= sb.end() && sb.start <= sa.end() {
                violations.push(Violation::Overlap { a, b });
            }
        }
    }

    let length = s.length();
    for e in g.deps() {
        let (u, v) = g.endpoints(e);
        let (Some(su), Some(sv)) = (s.slot(u), s.slot(v)) else {
            continue; // unplaced endpoints were reported above
        };
        if !pe_in_range(m, su.pe) || !pe_in_range(m, sv.pe) {
            continue; // BadPe already reported; no hop table to consult
        }
        let Some(mm) = m.try_comm_cost(su.pe, sv.pe, g.volume(e)) else {
            violations.push(Violation::UnreachablePes {
                edge: e,
                from: su.pe,
                to: sv.pe,
            });
            continue;
        };
        if g.delay(e) == 0 {
            let earliest = su.end() + mm + 1;
            let actual = sv.start;
            if actual < earliest {
                violations.push(Violation::Precedence {
                    edge: e,
                    earliest,
                    actual,
                });
            }
        } else if let Some(required) = psl(g, m, s, e) {
            if length < required {
                violations.push(Violation::LengthTooShort {
                    edge: e,
                    required,
                    actual: length,
                });
            }
        }
    }

    if violations.is_empty() {
        Ok(())
    } else {
        Err(violations)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::Slot;
    use ccs_topology::Pe;

    /// The shared PSL fast path (used by both this checker and the
    /// `ccs-core` remap hot loop) agrees with the naive two-division
    /// ceiling on every sign/divisibility combination.
    #[test]
    fn psl_value_matches_naive_ceil() {
        fn naive(m: i64, ce: i64, cb: i64, k: i64) -> i64 {
            let num = m + ce - cb + 1;
            // ceil for possibly negative numerators.
            if num >= 0 {
                (num + k - 1) / k
            } else {
                -((-num) / k)
            }
        }
        for m in 0..6i64 {
            for ce in 0..8i64 {
                for cb in 0..8i64 {
                    for k in 1..5i64 {
                        assert_eq!(
                            psl_value(m, ce, cb, k),
                            naive(m, ce, cb, k),
                            "m={m} ce={ce} cb={cb} k={k}"
                        );
                    }
                }
            }
        }
        // The delay-1 fast path is the raw numerator.
        assert_eq!(psl_value(3, 4, 2, 1), 6);
        // Exact division must not round up.
        assert_eq!(psl_value(0, 5, 0, 3), 2);
        assert_eq!(psl_value(0, 5, 0, 2), 3);
        // Negative numerators round toward zero (ceil), not -inf.
        assert_eq!(psl_value(0, 0, 6, 2), -2);
        assert_eq!(psl_value(0, 0, 5, 2), -2);
    }

    /// Two tasks on a 2-PE linear array.
    fn setup() -> (Csdfg, Machine) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("B", 2).unwrap();
        g.add_dep(a, b, 0, 2).unwrap(); // intra-iteration, volume 2
        g.add_dep(b, a, 1, 1).unwrap(); // loop carried
        let _ = (a, b);
        (g, Machine::linear_array(2))
    }

    #[test]
    fn valid_same_pe_schedule() {
        let (g, m) = setup();
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(0), 2, 2).unwrap();
        assert!(validate(&g, &m, &s).is_ok());
        // B->A loop: M=0, CE(B)=3, CB(A)=1, k=1 => PSL = 3-1+1 = 3 = L. OK.
        let loop_edge = g.out_deps(b).next().unwrap();
        assert_eq!(psl(&g, &m, &s, loop_edge), Some(3));
        assert_eq!(required_length(&g, &m, &s), 3);
    }

    #[test]
    fn cross_pe_needs_comm_gap() {
        let (g, m) = setup();
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        // A->B has volume 2 across 1 hop: M=2, so B may start at cs4.
        s.place(b, Pe(1), 2, 2).unwrap();
        let errs = validate(&g, &m, &s).unwrap_err();
        assert!(matches!(
            errs[0],
            Violation::Precedence {
                earliest: 4,
                actual: 2,
                ..
            }
        ));
        // Move B to cs4: precedence ok, but the back edge B->A (volume 1,
        // one hop) now needs L >= M + CE(B) - CB(A) + 1 = 1 + 5 - 1 + 1 = 6.
        let mut s2 = Schedule::new(2);
        s2.place(a, Pe(0), 1, 1).unwrap();
        s2.place(b, Pe(1), 4, 2).unwrap();
        let errs = validate(&g, &m, &s2).unwrap_err();
        assert!(matches!(
            errs[0],
            Violation::LengthTooShort {
                required: 6,
                actual: 5,
                ..
            }
        ));
        // Padding to 6 fixes it.
        s2.pad_to(6);
        assert!(validate(&g, &m, &s2).is_ok());
    }

    #[test]
    fn psl_divides_by_delay_count() {
        let (mut g, m) = setup();
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        let loop_edge = g.out_deps(b).next().unwrap();
        g.set_delay(loop_edge, 3);
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(1), 4, 2).unwrap();
        // M=1*1=1 (volume 1), CE(B)=5, CB(A)=1, k=3: ceil(6/3) = 2.
        assert_eq!(psl(&g, &m, &s, loop_edge), Some(2));
        assert!(validate(&g, &m, &s).is_ok());
    }

    #[test]
    fn unplaced_tasks_reported_first() {
        let (g, m) = setup();
        let a = g.task_by_name("A").unwrap();
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        let errs = validate(&g, &m, &s).unwrap_err();
        assert_eq!(errs.len(), 1);
        assert!(matches!(errs[0], Violation::Unplaced(_)));
        assert_eq!(errs[0].code(), "CCS020");
    }

    #[test]
    fn psl_none_for_zero_delay_edges() {
        let (g, m) = setup();
        let a = g.task_by_name("A").unwrap();
        let intra = g.out_deps(a).next().unwrap();
        let s = Schedule::new(2);
        assert_eq!(psl(&g, &m, &s, intra), None);
    }

    #[test]
    fn negative_psl_clamps_to_zero() {
        // Consumer placed far after producer: the constraint is slack.
        let (g, m) = setup();
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        let mut s = Schedule::new(2);
        s.place(b, Pe(0), 1, 2).unwrap();
        s.place(a, Pe(0), 9, 1).unwrap();
        let loop_edge = g.out_deps(b).next().unwrap();
        // M=0, CE(B)=2, CB(A)=9, k=1: ceil(2-9+1) = -6 -> 0.
        assert_eq!(psl(&g, &m, &s, loop_edge), Some(0));
    }

    #[test]
    fn violation_display() {
        let v = Violation::Precedence {
            edge: EdgeId::from_index(0),
            earliest: 4,
            actual: 2,
        };
        assert!(v.to_string().contains("earliest legal cs4"));
        assert!(v.to_string().starts_with("[CCS021]"));
    }

    #[test]
    fn nonexistent_pe_reported_not_panicked() {
        let (g, m) = setup(); // machine has 2 PEs
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        let mut s = Schedule::new(4); // table sized for a bigger machine
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(3), 2, 2).unwrap(); // Pe(3) does not exist on m
        let errs = validate(&g, &m, &s).unwrap_err();
        assert!(errs.iter().any(|v| matches!(
            v,
            Violation::BadPe {
                pe: Pe(3),
                num_pes: 2,
                ..
            }
        )));
        assert!(errs.iter().any(|v| v.code() == "CCS024"));
    }

    #[test]
    fn unreachable_pe_pair_reported() {
        let (g, _) = setup();
        let m = Machine::from_links("islands", 4, &[(0, 1), (2, 3)]);
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        let mut s = Schedule::new(4);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(2), 2, 2).unwrap(); // island the data cannot reach
        let errs = validate(&g, &m, &s).unwrap_err();
        // Both edges (A->B intra, B->A loop) cross the partition.
        let unreachable: Vec<_> = errs
            .iter()
            .filter(|v| matches!(v, Violation::UnreachablePes { .. }))
            .collect();
        assert_eq!(unreachable.len(), 2);
        assert!(unreachable.iter().all(|v| v.code() == "CCS025"));
        // psl is total on the stranded edge: no finite value.
        let loop_edge = g.out_deps(b).next().unwrap();
        assert_eq!(psl(&g, &m, &s, loop_edge), None);
    }

    #[test]
    fn duplicate_placement_detected_both_directions() {
        let (g, m) = setup();
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        // Direction 1: slot list says Pe(1), occupancy still marks Pe(0)
        // (a stale duplicate left by a buggy in-place move).
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(0), 2, 2).unwrap();
        s.fault_force_slot(
            a,
            Slot {
                pe: Pe(1),
                start: 1,
                duration: 1,
            },
        );
        let errs = validate(&g, &m, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::DuplicatePlacement { node } if *node == a)));
        // Direction 2: an extra occupancy cell not backed by any slot.
        let mut s2 = Schedule::new(2);
        s2.place(a, Pe(0), 1, 1).unwrap();
        s2.place(b, Pe(0), 2, 2).unwrap();
        s2.fault_force_occupy(Pe(1), 3, a);
        let errs = validate(&g, &m, &s2).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::DuplicatePlacement { node } if *node == a)));
        assert!(errs.iter().any(|v| v.code() == "CCS026"));
    }

    #[test]
    fn forced_overlap_detected() {
        let (g, m) = setup();
        let (a, b) = (g.task_by_name("A").unwrap(), g.task_by_name("B").unwrap());
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(1), 2, 2).unwrap();
        // Corrupt B's slot onto A's cell.
        s.fault_force_slot(
            b,
            Slot {
                pe: Pe(0),
                start: 1,
                duration: 2,
            },
        );
        let errs = validate(&g, &m, &s).unwrap_err();
        assert!(errs
            .iter()
            .any(|v| matches!(v, Violation::Overlap { .. }) && v.code() == "CCS023"));
    }

    #[test]
    fn paper_fig2a_initial_schedule_is_valid() {
        // Figure 2(a): the start-up schedule of the 6-node example on a
        // 2x2 mesh: A@pe1cs1, B@pe1cs2-3, C@pe2cs3, D@pe1cs4,
        // E@pe1cs5-6, F@pe1cs7.
        let mut g = Csdfg::new();
        let ids: Vec<_> = ["A", "B", "C", "D", "E", "F"]
            .iter()
            .map(|nm| {
                let t = if *nm == "B" || *nm == "E" { 2 } else { 1 };
                g.add_task(*nm, t).unwrap()
            })
            .collect();
        let (a, b, c, d, e, f) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(a, c, 0, 1).unwrap();
        g.add_dep(a, e, 0, 1).unwrap();
        g.add_dep(b, d, 0, 1).unwrap();
        g.add_dep(b, e, 0, 2).unwrap();
        g.add_dep(c, e, 0, 1).unwrap();
        g.add_dep(d, a, 3, 3).unwrap();
        g.add_dep(d, f, 0, 2).unwrap();
        g.add_dep(e, f, 0, 1).unwrap();
        g.add_dep(f, e, 1, 1).unwrap();
        let m = Machine::mesh(2, 2);
        let mut s = Schedule::new(4);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(0), 2, 2).unwrap();
        s.place(c, Pe(1), 3, 1).unwrap();
        s.place(d, Pe(0), 4, 1).unwrap();
        s.place(e, Pe(0), 5, 2).unwrap();
        s.place(f, Pe(0), 7, 1).unwrap();
        assert!(validate(&g, &m, &s).is_ok(), "{:?}", validate(&g, &m, &s));
        assert_eq!(s.length(), 7);
        // C on pe2 is legal at cs3 (A ends cs1, M = 1 hop * 1 = 1,
        // earliest = 3) but cs2 would not be:
        let mut s2 = s.clone();
        s2.remove(c).unwrap();
        s2.place(c, Pe(1), 2, 1).unwrap();
        assert!(validate(&g, &m, &s2).is_err());
    }
}

//! The static schedule table: control steps x processors.
//!
//! Storage is dense: placements live in a `Vec<Option<Slot>>` indexed
//! by raw node id, and per-PE occupancy is a flat row of control-step
//! cells with a first-free cursor plus a mirroring bitset (one `u64`
//! word per 64 steps), so the hot operations of the cyclo-compaction
//! inner loop ([`Schedule::earliest_free`], [`Schedule::place`],
//! [`Schedule::drop_and_shift_by`]) are O(1)-amortized instead of tree
//! walks — and the free-window scan advances a word at a time via
//! `trailing_zeros` rather than a cell at a time.  The public API, the
//! serde JSON shape, and every tie-break ordering are identical to the
//! original `BTreeMap`-backed table.

use ccs_model::NodeId;
use ccs_topology::Pe;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::fmt;

/// One task assignment inside a [`Schedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Assigned processor (the paper's `PE(u)`).
    pub pe: Pe,
    /// First control step of execution, 1-based (the paper's `CB(u)`).
    pub start: u32,
    /// Number of consecutive control steps occupied (`t(u)`).
    pub duration: u32,
}

impl Slot {
    /// Last control step of execution (the paper's `CE(u) = CB + t - 1`).
    pub fn end(&self) -> u32 {
        self.start + self.duration - 1
    }
}

/// Slot-occupancy statistics of a [`Schedule`] (see
/// [`Schedule::occupancy`]): the observability layer's view of how
/// densely and how fragmented the table is.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Occupied cells across all PEs (`sum_u t(u)` for placed nodes).
    pub busy_cells: u64,
    /// Free cells strictly below each PE's last occupied step —
    /// fragmentation the remapper could in principle fill.
    pub holes: u64,
    /// PEs hosting at least one task.
    pub used_pes: u32,
    /// Current schedule length (including padding).
    pub length: u32,
}

/// Errors raised when mutating a schedule table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// The target PE is busy during the requested interval.
    Occupied {
        /// Requested processor.
        pe: Pe,
        /// The control step found occupied.
        cs: u32,
        /// Node occupying it.
        by: NodeId,
    },
    /// The node is already placed.
    AlreadyPlaced(NodeId),
    /// Control steps are 1-based; `start == 0` or `duration == 0`.
    BadInterval,
    /// PE index out of range for the machine size the table was built
    /// with.
    BadPe(Pe),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Occupied { pe, cs, by } => {
                write!(f, "{pe} is occupied at cs{cs} by node {by}")
            }
            TableError::AlreadyPlaced(n) => write!(f, "node {n} is already placed"),
            TableError::BadInterval => write!(f, "start and duration must be >= 1"),
            TableError::BadPe(p) => write!(f, "{p} out of range"),
        }
    }
}

impl std::error::Error for TableError {}

/// Free-cell sentinel in an occupancy row.
const FREE: usize = usize::MAX;

/// Bitset words needed to cover `cells` occupancy cells, one bit each.
fn bit_words(cells: usize) -> usize {
    cells.div_ceil(64)
}

/// First occupied cell index `>= from_cell` in a per-PE occupancy
/// bitset, or `None` when everything from `from_cell` on is free.
/// Word-level: masks the first word below `from_cell`, then jumps a
/// whole word per iteration and finishes with `trailing_zeros`.
fn next_occupied(bits: &[u64], from_cell: u32) -> Option<u32> {
    let mut w = (from_cell / 64) as usize;
    if w >= bits.len() {
        return None;
    }
    let mut word = bits[w] & (u64::MAX << (from_cell % 64));
    loop {
        if word != 0 {
            // INVARIANT: bits.len() <= bit_words(row.len()) and rows
            // are far shorter than u32::MAX cells, so the cell index
            // fits a u32.
            let w32 = u32::try_from(w).expect("bitset shorter than u32::MAX words");
            return Some(w32 * 64 + word.trailing_zeros());
        }
        w += 1;
        if w >= bits.len() {
            return None;
        }
        word = bits[w];
    }
}

/// A static schedule for one loop iteration: every task gets a
/// processor and a 1-based start control step; the table repeats every
/// [`Schedule::length`] steps.
///
/// The *length* is `max(max_u CE(u), explicit padding)` — the paper's
/// cyclo-compaction appends empty control steps when the projected
/// schedule length `PSL` demands more room than the occupied rows
/// (§4), which [`Schedule::pad_to`] models.
#[derive(Clone, Debug)]
pub struct Schedule {
    num_pes: usize,
    /// Node raw index -> slot; dense, grown on demand.
    slots: Vec<Option<Slot>>,
    /// Number of `Some` entries in `slots`.
    placed: usize,
    /// Cached `max_u CE(u)` (0 when empty).
    occupied_end: u32,
    /// Per-PE occupancy row; cell `cs - 1` holds the occupying node's
    /// raw index, or [`FREE`].
    rows: Vec<Vec<usize>>,
    /// Per-PE occupancy bitset mirroring `rows`: bit `c % 64` of word
    /// `c / 64` is set iff cell `c` (0-based; control step `c + 1`) is
    /// occupied.  Sized to exactly `rows[p].len().div_ceil(64)` words
    /// with no ghost bits past the row, so [`Schedule::earliest_free`]
    /// can scan whole words with `trailing_zeros` instead of walking
    /// cells.
    bits: Vec<Vec<u64>>,
    /// Per-PE cursor: the smallest free control step (1-based).  Every
    /// cell strictly below the cursor is occupied.
    first_free: Vec<u32>,
    /// Extra empty control steps appended at the end.
    padding: u32,
}

impl Schedule {
    /// An empty schedule for a machine with `num_pes` processors.
    pub fn new(num_pes: usize) -> Self {
        assert!(num_pes > 0, "schedule needs at least one PE");
        Schedule {
            num_pes,
            slots: Vec::new(),
            placed: 0,
            occupied_end: 0,
            rows: vec![Vec::new(); num_pes],
            bits: vec![Vec::new(); num_pes],
            first_free: vec![1; num_pes],
            padding: 0,
        }
    }

    /// Number of processors of the target machine.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of placed tasks.
    pub fn placed_count(&self) -> usize {
        self.placed
    }

    /// `true` if `node` has been placed.
    #[inline]
    pub fn is_placed(&self, node: NodeId) -> bool {
        self.slots.get(node.index()).is_some_and(Option::is_some)
    }

    /// The slot of `node`, if placed.
    #[inline]
    pub fn slot(&self, node: NodeId) -> Option<Slot> {
        self.slots.get(node.index()).copied().flatten()
    }

    /// The paper's `CB(u)`: start control step.
    #[inline]
    pub fn cb(&self, node: NodeId) -> Option<u32> {
        self.slot(node).map(|s| s.start)
    }

    /// The paper's `CE(u)`: end control step.
    #[inline]
    pub fn ce(&self, node: NodeId) -> Option<u32> {
        self.slot(node).map(|s| s.end())
    }

    /// The paper's `PE(u)`: assigned processor.
    #[inline]
    pub fn pe(&self, node: NodeId) -> Option<Pe> {
        self.slot(node).map(|s| s.pe)
    }

    /// Schedule length `L`: last occupied control step, plus padding.
    #[inline]
    pub fn length(&self) -> u32 {
        self.occupied_end + self.padding
    }

    /// Current padding (empty control steps at the end).
    pub fn padding(&self) -> u32 {
        self.padding
    }

    /// Ensures `length() >= target` by appending empty control steps.
    /// Never shrinks.
    pub fn pad_to(&mut self, target: u32) {
        if target > self.occupied_end + self.padding {
            self.padding = target - self.occupied_end;
        }
    }

    /// Drops any padding beyond the last occupied step.
    pub fn trim_padding(&mut self) {
        self.padding = 0;
    }

    /// Places `node` on `pe` starting at `start` for `duration` steps.
    pub fn place(
        &mut self,
        node: NodeId,
        pe: Pe,
        start: u32,
        duration: u32,
    ) -> Result<(), TableError> {
        if start == 0 || duration == 0 {
            return Err(TableError::BadInterval);
        }
        if pe.index() >= self.num_pes {
            return Err(TableError::BadPe(pe));
        }
        if self.is_placed(node) {
            return Err(TableError::AlreadyPlaced(node));
        }
        let end = start + duration - 1;
        let row = &mut self.rows[pe.index()];
        // Conflict scan in ascending cs order (first conflict reported,
        // as in the sparse original).  Cells beyond the row are free.
        for cs in start..=end.min(row.len() as u32) {
            let by = row[(cs - 1) as usize];
            if by != FREE {
                return Err(TableError::Occupied {
                    pe,
                    cs,
                    by: NodeId::from_index(by),
                });
            }
        }
        if (row.len() as u32) < end {
            row.resize(end as usize, FREE);
        }
        for cs in start..=end {
            row[(cs - 1) as usize] = node.index();
        }
        // Advance the first-free cursor past the newly filled run.
        let cursor = &mut self.first_free[pe.index()];
        if (start..=end).contains(cursor) {
            let mut cs = end + 1;
            while (cs as usize) <= row.len() && row[(cs - 1) as usize] != FREE {
                cs += 1;
            }
            *cursor = cs;
        }
        // Mirror the filled run into the occupancy bitset.
        let bits = &mut self.bits[pe.index()];
        bits.resize(bit_words(row.len()), 0);
        for cs in start..=end {
            let cell = (cs - 1) as usize;
            bits[cell / 64] |= 1 << (cell % 64);
        }
        if node.index() >= self.slots.len() {
            self.slots.resize(node.index() + 1, None);
        }
        self.slots[node.index()] = Some(Slot {
            pe,
            start,
            duration,
        });
        self.placed += 1;
        self.occupied_end = self.occupied_end.max(end);
        Ok(())
    }

    /// Removes `node` from the table, returning its slot.
    pub fn remove(&mut self, node: NodeId) -> Option<Slot> {
        let slot = self.slots.get_mut(node.index())?.take()?;
        let row = &mut self.rows[slot.pe.index()];
        let bits = &mut self.bits[slot.pe.index()];
        for cs in slot.start..=slot.end() {
            let cell = (cs - 1) as usize;
            row[cell] = FREE;
            bits[cell / 64] &= !(1 << (cell % 64));
        }
        let cursor = &mut self.first_free[slot.pe.index()];
        *cursor = (*cursor).min(slot.start);
        self.placed -= 1;
        if slot.end() == self.occupied_end {
            self.occupied_end = self
                .slots
                .iter()
                .flatten()
                .map(Slot::end)
                .max()
                .unwrap_or(0);
        }
        Some(slot)
    }

    /// Node occupying `(pe, cs)`, if any.  Total: out-of-range `pe` or
    /// `cs` simply yields `None` (the checker probes corrupted slots
    /// whose PE may not exist in this table).
    pub fn at(&self, pe: Pe, cs: u32) -> Option<NodeId> {
        if cs == 0 {
            return None;
        }
        match self
            .rows
            .get(pe.index())
            .and_then(|row| row.get((cs - 1) as usize))
        {
            Some(&i) if i != FREE => Some(NodeId::from_index(i)),
            _ => None,
        }
    }

    /// `true` if `pe` is free for `[start, start + duration)`.
    pub fn is_free(&self, pe: Pe, start: u32, duration: u32) -> bool {
        let row = &self.rows[pe.index()];
        for cs in start..start + duration {
            if cs == 0 {
                continue; // control steps are 1-based; cs 0 never exists
            }
            if matches!(row.get((cs - 1) as usize), Some(&i) if i != FREE) {
                return false;
            }
        }
        true
    }

    /// First control step `>= from` at which `pe` can host a task of
    /// `duration` steps.
    ///
    /// Word-level scan over the occupancy bitset: from each candidate
    /// window start, jump straight to the next occupied cell via
    /// masked `trailing_zeros` — if it lies at or beyond the window
    /// end the window is free, otherwise restart one past the
    /// conflict.  Whole free words cost one compare instead of 64 cell
    /// reads; behavior is bit-identical to the cell-walk original
    /// (proptested against the sparse reference in
    /// `tests/equivalence.rs`).
    #[inline]
    pub fn earliest_free(&self, pe: Pe, from: u32, duration: u32) -> u32 {
        let len = self.rows[pe.index()].len() as u32;
        let bits = &self.bits[pe.index()];
        // Every cell below the cursor is occupied, so no window can
        // start there.
        let mut start = from.max(1).max(self.first_free[pe.index()]);
        loop {
            if start > len {
                // Everything from `start` on is past the occupied row
                // (hence free).
                return start;
            }
            match next_occupied(bits, start - 1) {
                None => return start,
                Some(occ) => {
                    if u64::from(occ) >= u64::from(start - 1) + u64::from(duration) {
                        // First conflict lies at or past the window
                        // end: the window is free.
                        return start;
                    }
                    // Occupied cell `occ` blocks the window; the next
                    // candidate start is the step right after it.
                    start = occ + 2;
                }
            }
        }
    }

    /// The per-PE first-free cursor: the smallest control step at
    /// which `pe` could host anything (every step strictly below is
    /// occupied).  `earliest_free(pe, from, d) >= free_cursor(pe)` for
    /// any `from` and `d` — the candidate-scan engine uses this as a
    /// cheap lower bound when deciding whether a PE can still beat the
    /// incumbent before paying for the window scan.
    #[inline]
    pub fn free_cursor(&self, pe: Pe) -> u32 {
        self.first_free[pe.index()]
    }

    /// Test support: `true` when every PE's occupancy bitset exactly
    /// mirrors its dense row (same occupied cells, exact word count,
    /// no ghost bits past the row).  The equivalence proptests call
    /// this after every mutation; it is O(cells) and not for the hot
    /// path.
    #[doc(hidden)]
    pub fn occupancy_bits_in_sync(&self) -> bool {
        self.rows.iter().zip(&self.bits).all(|(row, bits)| {
            if bits.len() != bit_words(row.len()) {
                return false;
            }
            let cell_set = |c: usize| bits[c / 64] >> (c % 64) & 1 == 1;
            let mirrored = row
                .iter()
                .enumerate()
                .all(|(c, &cell)| cell_set(c) == (cell != FREE));
            let no_ghosts = (row.len()..bits.len() * 64).all(|c| !cell_set(c));
            mirrored && no_ghosts
        })
    }

    /// Nodes beginning at control step 1 — the paper's rotation set `J`.
    pub fn first_row(&self) -> Vec<NodeId> {
        self.rows_upto(1)
    }

    /// Nodes beginning at control step `<= upto` — the rotation set of
    /// a multi-row rotation pass.
    pub fn rows_upto(&self, upto: u32) -> Vec<NodeId> {
        self.placements()
            .filter(|(_, s)| s.start <= upto)
            .map(|(n, _)| n)
            .collect()
    }

    /// All placed nodes with their slots, ordered by node id.
    pub fn placements(&self) -> impl Iterator<Item = (NodeId, Slot)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|s| (NodeId::from_index(i), s)))
    }

    /// Every occupied `(pe, control step, node)` cell of the table, in
    /// `(pe, cs)` order.  The checker cross-validates these cells
    /// against [`Schedule::placements`] — for a healthy table they
    /// agree exactly; a mismatch means the occupancy index and the slot
    /// list have desynchronized (a duplicate or stale placement).
    pub fn occupied_cells(&self) -> impl Iterator<Item = (Pe, u32, NodeId)> + '_ {
        self.rows.iter().enumerate().flat_map(|(p, row)| {
            row.iter()
                .enumerate()
                .filter(|&(_, &i)| i != FREE)
                .map(move |(c, &i)| (Pe::from_index(p), c as u32 + 1, NodeId::from_index(i)))
        })
    }

    /// Slot-occupancy statistics of the table: how busy the rows are
    /// and how fragmented.  `O(cells)`; intended for observability
    /// snapshots (the tracing layer's `schedule.occupancy` events), not
    /// the hot path.
    pub fn occupancy(&self) -> Occupancy {
        let mut busy_cells: u64 = 0;
        let mut holes: u64 = 0;
        let mut used_pes: u32 = 0;
        for row in &self.rows {
            // Cells past the last occupied index are tail freedom, not
            // fragmentation; count FREE cells only below it.
            let last = row.iter().rposition(|&i| i != FREE);
            let Some(last) = last else {
                continue;
            };
            used_pes += 1;
            for &cell in &row[..=last] {
                if cell == FREE {
                    holes += 1;
                } else {
                    busy_cells += 1;
                }
            }
        }
        Occupancy {
            busy_cells,
            holes,
            used_pes,
            length: self.length(),
        }
    }

    /// Fault injection for oracle/mutation tests: overwrites the slot
    /// record of `node` **without** updating the occupancy rows or any
    /// cached state — exactly the kind of single-sided corruption an
    /// aliasing bug in an in-place pass would produce.  The resulting
    /// table is *illegal by construction*; the only legitimate use is
    /// proving that the invariant oracle catches it.
    #[doc(hidden)]
    pub fn fault_force_slot(&mut self, node: NodeId, slot: Slot) {
        if node.index() >= self.slots.len() {
            self.slots.resize(node.index() + 1, None);
        }
        if self.slots[node.index()].is_none() {
            self.placed += 1;
        }
        self.slots[node.index()] = Some(slot);
        self.occupied_end = self.occupied_end.max(slot.end());
    }

    /// Fault injection for oracle/mutation tests: writes one occupancy
    /// cell directly, bypassing every placement check (the complement
    /// of [`Schedule::fault_force_slot`] — corrupts the occupancy index
    /// instead of the slot list).
    #[doc(hidden)]
    pub fn fault_force_occupy(&mut self, pe: Pe, cs: u32, node: NodeId) {
        assert!(cs >= 1, "control steps are 1-based");
        let row = &mut self.rows[pe.index()];
        if (row.len() as u32) < cs {
            row.resize(cs as usize, FREE);
        }
        row[(cs - 1) as usize] = node.index();
        // Bits mirror rows even under fault injection, so the oracle
        // exercises the same lookup structures the hot path reads.
        let bits = &mut self.bits[pe.index()];
        bits.resize(bit_words(row.len()), 0);
        let cell = (cs - 1) as usize;
        bits[cell / 64] |= 1 << (cell % 64);
    }

    /// Removes the given nodes and shifts every remaining placement one
    /// control step earlier — the renumbering that follows a rotation
    /// (the old row 1 conceptually moves to row `L + 1`).
    ///
    /// # Panics
    ///
    /// Panics if a remaining node starts at control step 1 (the caller
    /// must remove the whole first row).
    pub fn drop_and_shift(&mut self, nodes: &[NodeId]) {
        self.drop_and_shift_by(nodes, 1);
    }

    /// Generalization of [`Schedule::drop_and_shift`]: removes `nodes`
    /// and shifts every remaining placement `shift` control steps
    /// earlier (multi-row rotation).
    ///
    /// # Panics
    ///
    /// Panics if a remaining node starts at or before control step
    /// `shift` (the caller must remove everything in the first `shift`
    /// rows).
    pub fn drop_and_shift_by(&mut self, nodes: &[NodeId], shift: u32) {
        for &n in nodes {
            self.remove(n);
        }
        if shift == 0 {
            self.padding = 0;
            return;
        }
        // Validate in node-id order (matching the sparse original's
        // panic site), then shift every slot in place and rebuild the
        // occupancy rows in one sweep — no remove/re-place churn.
        for (i, s) in self.slots.iter().enumerate() {
            if let Some(s) = s {
                assert!(
                    s.start > shift,
                    "drop_and_shift_by: node {n} starts at cs{start} <= shift {shift}",
                    n = NodeId::from_index(i),
                    start = s.start,
                );
            }
        }
        for s in self.slots.iter_mut().flatten() {
            s.start -= shift;
        }
        self.occupied_end = self.occupied_end.saturating_sub(shift);
        self.rebuild_rows();
        self.padding = 0;
    }

    /// Shifts every placement `shift` control steps later — the exact
    /// inverse of the renumbering in [`Schedule::drop_and_shift_by`]
    /// (used to roll a rotation pass back without cloning the table).
    /// Padding is left unchanged.
    pub fn shift_later(&mut self, shift: u32) {
        if shift == 0 || self.placed == 0 {
            return;
        }
        for s in self.slots.iter_mut().flatten() {
            s.start += shift;
        }
        self.occupied_end += shift;
        self.rebuild_rows();
    }

    /// Reconstructs occupancy rows and cursors from `slots`.
    fn rebuild_rows(&mut self) {
        for row in &mut self.rows {
            row.clear();
        }
        for (i, slot) in self.slots.iter().enumerate() {
            let Some(slot) = slot else { continue };
            let row = &mut self.rows[slot.pe.index()];
            let end = slot.end();
            if (row.len() as u32) < end {
                row.resize(end as usize, FREE);
            }
            for cs in slot.start..=end {
                row[(cs - 1) as usize] = i;
            }
        }
        for (p, row) in self.rows.iter().enumerate() {
            let mut cs = 1u32;
            while (cs as usize) <= row.len() && row[(cs - 1) as usize] != FREE {
                cs += 1;
            }
            self.first_free[p] = cs;
        }
        for (row, bits) in self.rows.iter().zip(self.bits.iter_mut()) {
            bits.clear();
            bits.resize(bit_words(row.len()), 0);
            for (c, &cell) in row.iter().enumerate() {
                if cell != FREE {
                    bits[c / 64] |= 1 << (c % 64);
                }
            }
        }
    }

    /// Renders the table in the paper's layout (`cs` rows, `pe`
    /// columns), labelling tasks via `name`.
    pub fn render(&self, mut name: impl FnMut(NodeId) -> String) -> String {
        let len = self.length();
        let mut cells: Vec<Vec<String>> = vec![vec![String::new(); self.num_pes]; len as usize];
        for (node, slot) in self.placements() {
            let label = name(node);
            for cs in slot.start..=slot.end() {
                cells[(cs - 1) as usize][slot.pe.index()] = label.clone();
            }
        }
        let mut widths: Vec<usize> = (0..self.num_pes)
            .map(|p| {
                cells
                    .iter()
                    .map(|row| row[p].len())
                    .chain(std::iter::once(format!("pe{}", p + 1).len()))
                    .max()
                    .unwrap_or(3)
            })
            .collect();
        for w in &mut widths {
            *w = (*w).max(3);
        }
        let cs_w = format!("{len}").len().max(2);
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = write!(out, "{:>cs_w$} |", "cs");
        for (p, w) in widths.iter().enumerate() {
            let _ = write!(out, " {:^w$}", format!("pe{}", p + 1));
        }
        out.push('\n');
        let total: usize = cs_w + 2 + widths.iter().map(|w| w + 1).sum::<usize>();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for (i, row) in cells.iter().enumerate() {
            let _ = write!(out, "{:>cs_w$} |", i + 1);
            for (p, w) in widths.iter().enumerate() {
                let _ = write!(out, " {:^w$}", row[p]);
            }
            out.push('\n');
        }
        out
    }
}

/// Equality is over the logical contents: machine size, placements,
/// and padding (occupancy rows are derived state).
impl PartialEq for Schedule {
    fn eq(&self, other: &Self) -> bool {
        self.num_pes == other.num_pes
            && self.padding == other.padding
            && self.placed == other.placed
            && self.placements().eq(other.placements())
    }
}

impl Eq for Schedule {}

/// Serializes in the original sparse shape:
/// `{num_pes, slots: {node: Slot}, occupancy: [{cs: node}], padding}`.
impl Serialize for Schedule {
    fn to_value(&self) -> Value {
        let slots: BTreeMap<usize, Slot> = self.placements().map(|(n, s)| (n.index(), s)).collect();
        let occupancy: Vec<BTreeMap<u32, usize>> = self
            .rows
            .iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .filter(|(_, &i)| i != FREE)
                    .map(|(c, &i)| (c as u32 + 1, i))
                    .collect()
            })
            .collect();
        Value::Object(vec![
            ("num_pes".into(), self.num_pes.to_value()),
            ("slots".into(), slots.to_value()),
            ("occupancy".into(), occupancy.to_value()),
            ("padding".into(), self.padding.to_value()),
        ])
    }
}

impl Deserialize for Schedule {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::msg("Schedule: expected object"))?;
        let field = |name: &str| {
            serde::__field(obj, name)
                .ok_or_else(|| DeError::msg(format!("Schedule: missing field `{name}`")))
        };
        let num_pes = usize::from_value(field("num_pes")?)?;
        if num_pes == 0 {
            return Err(DeError::msg("Schedule: num_pes must be >= 1"));
        }
        let slots: BTreeMap<usize, Slot> = BTreeMap::from_value(field("slots")?)?;
        let padding = u32::from_value(field("padding")?)?;
        // `occupancy` is derived state: accept and ignore its contents,
        // rebuilding from `slots` (which also validates consistency).
        let mut sched = Schedule::new(num_pes);
        for (node, slot) in slots {
            sched
                .place(NodeId::from_index(node), slot.pe, slot.start, slot.duration)
                .map_err(|e| DeError::msg(format!("Schedule: bad slot table: {e}")))?;
        }
        sched.padding = padding;
        Ok(sched)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn place_and_accessors() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 2).unwrap();
        s.place(n(2), Pe(1), 3, 1).unwrap();
        assert_eq!(s.cb(n(1)), Some(2));
        assert_eq!(s.ce(n(1)), Some(3));
        assert_eq!(s.pe(n(2)), Some(Pe(1)));
        assert_eq!(s.length(), 3);
        assert_eq!(s.placed_count(), 3);
        assert_eq!(s.at(Pe(0), 3), Some(n(1)));
        assert_eq!(s.at(Pe(1), 1), None);
    }

    #[test]
    fn conflicts_rejected() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 2).unwrap();
        let err = s.place(n(1), Pe(0), 2, 1).unwrap_err();
        assert_eq!(
            err,
            TableError::Occupied {
                pe: Pe(0),
                cs: 2,
                by: n(0)
            }
        );
        assert_eq!(
            s.place(n(0), Pe(0), 5, 1),
            Err(TableError::AlreadyPlaced(n(0)))
        );
        assert_eq!(s.place(n(2), Pe(0), 0, 1), Err(TableError::BadInterval));
        assert_eq!(s.place(n(2), Pe(1), 1, 1), Err(TableError::BadPe(Pe(1))));
    }

    #[test]
    fn remove_frees_occupancy() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 3).unwrap();
        let slot = s.remove(n(0)).unwrap();
        assert_eq!(slot.duration, 3);
        assert!(s.is_free(Pe(0), 1, 3));
        assert_eq!(s.remove(n(0)), None);
        s.place(n(1), Pe(0), 2, 1).unwrap();
    }

    #[test]
    fn earliest_free_skips_conflicts() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 2, 2).unwrap(); // busy cs2-3
        assert_eq!(s.earliest_free(Pe(0), 1, 1), 1);
        assert_eq!(s.earliest_free(Pe(0), 1, 2), 4);
        assert_eq!(s.earliest_free(Pe(0), 2, 1), 4);
        assert_eq!(s.earliest_free(Pe(0), 5, 3), 5);
        // from=0 clamps to 1
        assert_eq!(s.earliest_free(Pe(0), 0, 1), 1);
    }

    #[test]
    fn first_free_cursor_tracks_prefix() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 2).unwrap();
        s.place(n(1), Pe(0), 3, 1).unwrap();
        // Prefix cs1-3 is solid: earliest free is 4 even when asked
        // from 1.
        assert_eq!(s.earliest_free(Pe(0), 1, 1), 4);
        s.remove(n(0)).unwrap();
        assert_eq!(s.earliest_free(Pe(0), 1, 1), 1);
        assert_eq!(s.earliest_free(Pe(0), 1, 3), 4);
    }

    #[test]
    fn padding_extends_length() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 2).unwrap();
        assert_eq!(s.length(), 2);
        s.pad_to(5);
        assert_eq!(s.length(), 5);
        assert_eq!(s.padding(), 3);
        s.pad_to(4); // never shrinks
        assert_eq!(s.length(), 5);
        s.trim_padding();
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn first_row_finds_cs1_starters() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 2).unwrap();
        s.place(n(1), Pe(1), 1, 1).unwrap();
        s.place(n(2), Pe(1), 2, 1).unwrap();
        let mut row = s.first_row();
        row.sort();
        assert_eq!(row, vec![n(0), n(1)]);
    }

    #[test]
    fn drop_and_shift_renumbers() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 2).unwrap();
        s.place(n(2), Pe(1), 3, 1).unwrap();
        s.pad_to(9);
        s.drop_and_shift(&[n(0)]);
        assert!(!s.is_placed(n(0)));
        assert_eq!(s.cb(n(1)), Some(1));
        assert_eq!(s.ce(n(1)), Some(2));
        assert_eq!(s.cb(n(2)), Some(2));
        assert_eq!(s.length(), 2);
        assert_eq!(s.padding(), 0);
    }

    #[test]
    fn drop_and_shift_by_two_rows() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 2).unwrap(); // spans rows 1-2
        s.place(n(1), Pe(1), 2, 1).unwrap();
        s.place(n(2), Pe(0), 3, 1).unwrap();
        s.place(n(3), Pe(1), 4, 2).unwrap();
        let mut rotated = s.rows_upto(2);
        rotated.sort();
        assert_eq!(rotated, vec![n(0), n(1)]);
        s.drop_and_shift_by(&rotated, 2);
        assert_eq!(s.cb(n(2)), Some(1));
        assert_eq!(s.cb(n(3)), Some(2));
        assert_eq!(s.length(), 3);
    }

    #[test]
    fn drop_and_shift_by_zero_only_removes() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 1).unwrap();
        s.pad_to(5);
        s.drop_and_shift_by(&[n(0)], 0);
        assert_eq!(s.cb(n(1)), Some(2));
        assert_eq!(s.padding(), 0);
    }

    #[test]
    #[should_panic(expected = "<= shift 2")]
    fn drop_and_shift_by_rejects_partial_rows() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 2, 1).unwrap();
        s.drop_and_shift_by(&[], 2);
    }

    #[test]
    #[should_panic(expected = "<= shift 1")]
    fn drop_and_shift_requires_full_first_row() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(1), 1, 1).unwrap();
        s.drop_and_shift(&[n(0)]); // n(1) still at cs1
    }

    #[test]
    fn drop_and_shift_reuses_freed_cells() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 2).unwrap();
        s.place(n(2), Pe(1), 1, 3).unwrap();
        s.drop_and_shift(&[n(0), n(2)]);
        // After the shift, cs1-2 on pe1 hold node 1; pe2 is empty.
        assert_eq!(s.at(Pe(0), 1), Some(n(1)));
        assert_eq!(s.at(Pe(0), 2), Some(n(1)));
        assert_eq!(s.at(Pe(1), 1), None);
        assert_eq!(s.earliest_free(Pe(1), 1, 5), 1);
        assert_eq!(s.earliest_free(Pe(0), 1, 1), 3);
        // Freed space is placeable again.
        s.place(n(0), Pe(1), 1, 2).unwrap();
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn shift_later_inverts_drop_and_shift() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 2).unwrap();
        s.place(n(2), Pe(1), 3, 1).unwrap();
        let before = s.clone();
        let slot0 = s.slot(n(0)).unwrap();
        s.drop_and_shift(&[n(0)]);
        s.shift_later(1);
        s.place(n(0), slot0.pe, slot0.start, slot0.duration)
            .unwrap();
        assert_eq!(s, before);
        assert_eq!(s.earliest_free(Pe(0), 1, 1), 4);
    }

    #[test]
    fn render_matches_paper_layout() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 2).unwrap();
        s.place(n(2), Pe(1), 3, 1).unwrap();
        let text = s.render(|v| ["A", "B", "C"][v.index()].to_string());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("pe1"));
        assert!(lines[0].contains("pe2"));
        assert!(lines[2].contains('A'));
        // B occupies rows 2 and 3.
        assert!(lines[3].contains('B'));
        assert!(lines[4].contains('B'));
        assert!(lines[4].contains('C'));
    }

    #[test]
    fn render_includes_padded_rows() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.pad_to(3);
        let text = s.render(|_| "X".into());
        assert_eq!(text.lines().count(), 2 + 3); // header + rule + 3 rows
    }

    #[test]
    fn slot_end_arithmetic() {
        let s = Slot {
            pe: Pe(0),
            start: 4,
            duration: 3,
        };
        assert_eq!(s.end(), 6);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(1), 2, 2).unwrap();
        s.pad_to(4);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.length(), 4);
    }

    #[test]
    fn serde_emits_legacy_sparse_shape() {
        let mut s = Schedule::new(2);
        s.place(n(3), Pe(1), 2, 2).unwrap();
        s.pad_to(5);
        let v = serde_json::to_value(&s).unwrap();
        assert_eq!(v["num_pes"].as_u64(), Some(2));
        assert_eq!(v["padding"].as_u64(), Some(2));
        assert_eq!(v["slots"]["3"]["pe"].as_u64(), Some(1));
        assert_eq!(v["slots"]["3"]["start"].as_u64(), Some(2));
        assert_eq!(v["occupancy"][1]["2"].as_u64(), Some(3));
        assert_eq!(v["occupancy"][1]["3"].as_u64(), Some(3));
        assert_eq!(v["occupancy"][0], serde::Value::Object(vec![]));
    }

    #[test]
    fn serde_rejects_conflicting_slot_table() {
        let text = r#"{"num_pes":1,"slots":{"0":{"pe":0,"start":1,"duration":2},
            "1":{"pe":0,"start":2,"duration":1}},"occupancy":[{}],"padding":0}"#;
        assert!(serde_json::from_str::<Schedule>(text).is_err());
    }

    #[test]
    fn bitsets_stay_in_sync_across_mutations() {
        let mut s = Schedule::new(3);
        assert!(s.occupancy_bits_in_sync());
        s.place(n(0), Pe(0), 1, 2).unwrap();
        s.place(n(1), Pe(0), 5, 3).unwrap();
        s.place(n(2), Pe(1), 70, 2).unwrap(); // second bitset word
        assert!(s.occupancy_bits_in_sync());
        s.remove(n(0)).unwrap();
        assert!(s.occupancy_bits_in_sync());
        s.shift_later(2);
        assert!(s.occupancy_bits_in_sync());
        let rotated = s.rows_upto(7);
        s.drop_and_shift_by(&rotated, 7);
        assert!(s.occupancy_bits_in_sync());
        s.fault_force_occupy(Pe(2), 130, n(0));
        assert!(s.occupancy_bits_in_sync());
    }

    #[test]
    fn earliest_free_across_word_boundaries() {
        let mut s = Schedule::new(1);
        // Occupy cs1..=128 except a 2-wide hole at cs63-64 (straddling
        // the first word boundary) and a 3-wide hole at cs100-102.
        s.place(n(0), Pe(0), 1, 62).unwrap();
        s.place(n(1), Pe(0), 65, 35).unwrap();
        s.place(n(2), Pe(0), 103, 26).unwrap();
        assert!(s.occupancy_bits_in_sync());
        assert_eq!(s.earliest_free(Pe(0), 1, 1), 63);
        assert_eq!(s.earliest_free(Pe(0), 1, 2), 63);
        assert_eq!(s.earliest_free(Pe(0), 1, 3), 100);
        assert_eq!(s.earliest_free(Pe(0), 64, 1), 64);
        assert_eq!(s.earliest_free(Pe(0), 1, 4), 129);
        assert_eq!(s.earliest_free(Pe(0), 200, 9), 200);
        s.remove(n(1)).unwrap();
        assert_eq!(s.earliest_free(Pe(0), 1, 40), 63);
    }

    #[test]
    fn free_cursor_is_a_lower_bound() {
        let mut s = Schedule::new(2);
        assert_eq!(s.free_cursor(Pe(0)), 1);
        s.place(n(0), Pe(0), 1, 3).unwrap();
        assert_eq!(s.free_cursor(Pe(0)), 4);
        assert_eq!(s.free_cursor(Pe(1)), 1);
        for from in 0..6 {
            for dur in 1..4 {
                assert!(s.earliest_free(Pe(0), from, dur) >= s.free_cursor(Pe(0)));
            }
        }
        s.remove(n(0)).unwrap();
        assert_eq!(s.free_cursor(Pe(0)), 1);
    }

    #[test]
    fn eq_ignores_storage_history() {
        let mut a = Schedule::new(2);
        a.place(n(0), Pe(0), 1, 1).unwrap();
        a.place(n(5), Pe(1), 2, 1).unwrap();
        a.remove(n(5)).unwrap();
        let mut b = Schedule::new(2);
        b.place(n(0), Pe(0), 1, 1).unwrap();
        assert_eq!(a, b);
        b.pad_to(3);
        assert_ne!(a, b);
    }
}

//! The static schedule table: control steps x processors.

use ccs_model::NodeId;
use ccs_topology::Pe;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// One task assignment inside a [`Schedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Slot {
    /// Assigned processor (the paper's `PE(u)`).
    pub pe: Pe,
    /// First control step of execution, 1-based (the paper's `CB(u)`).
    pub start: u32,
    /// Number of consecutive control steps occupied (`t(u)`).
    pub duration: u32,
}

impl Slot {
    /// Last control step of execution (the paper's `CE(u) = CB + t - 1`).
    pub fn end(&self) -> u32 {
        self.start + self.duration - 1
    }
}

/// Errors raised when mutating a schedule table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableError {
    /// The target PE is busy during the requested interval.
    Occupied {
        /// Requested processor.
        pe: Pe,
        /// The control step found occupied.
        cs: u32,
        /// Node occupying it.
        by: NodeId,
    },
    /// The node is already placed.
    AlreadyPlaced(NodeId),
    /// Control steps are 1-based; `start == 0` or `duration == 0`.
    BadInterval,
    /// PE index out of range for the machine size the table was built
    /// with.
    BadPe(Pe),
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Occupied { pe, cs, by } => {
                write!(f, "{pe} is occupied at cs{cs} by node {by}")
            }
            TableError::AlreadyPlaced(n) => write!(f, "node {n} is already placed"),
            TableError::BadInterval => write!(f, "start and duration must be >= 1"),
            TableError::BadPe(p) => write!(f, "{p} out of range"),
        }
    }
}

impl std::error::Error for TableError {}

/// A static schedule for one loop iteration: every task gets a
/// processor and a 1-based start control step; the table repeats every
/// [`Schedule::length`] steps.
///
/// The *length* is `max(max_u CE(u), explicit padding)` — the paper's
/// cyclo-compaction appends empty control steps when the projected
/// schedule length `PSL` demands more room than the occupied rows
/// (§4), which [`Schedule::pad_to`] models.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    num_pes: usize,
    /// Node -> slot. Key is the raw node index.
    slots: BTreeMap<usize, Slot>,
    /// Per-PE occupancy: cs -> node raw index.
    occupancy: Vec<BTreeMap<u32, usize>>,
    /// Extra empty control steps appended at the end.
    padding: u32,
}

impl Schedule {
    /// An empty schedule for a machine with `num_pes` processors.
    pub fn new(num_pes: usize) -> Self {
        assert!(num_pes > 0, "schedule needs at least one PE");
        Schedule {
            num_pes,
            slots: BTreeMap::new(),
            occupancy: vec![BTreeMap::new(); num_pes],
            padding: 0,
        }
    }

    /// Number of processors of the target machine.
    pub fn num_pes(&self) -> usize {
        self.num_pes
    }

    /// Number of placed tasks.
    pub fn placed_count(&self) -> usize {
        self.slots.len()
    }

    /// `true` if `node` has been placed.
    pub fn is_placed(&self, node: NodeId) -> bool {
        self.slots.contains_key(&node.index())
    }

    /// The slot of `node`, if placed.
    pub fn slot(&self, node: NodeId) -> Option<Slot> {
        self.slots.get(&node.index()).copied()
    }

    /// The paper's `CB(u)`: start control step.
    pub fn cb(&self, node: NodeId) -> Option<u32> {
        self.slot(node).map(|s| s.start)
    }

    /// The paper's `CE(u)`: end control step.
    pub fn ce(&self, node: NodeId) -> Option<u32> {
        self.slot(node).map(|s| s.end())
    }

    /// The paper's `PE(u)`: assigned processor.
    pub fn pe(&self, node: NodeId) -> Option<Pe> {
        self.slot(node).map(|s| s.pe)
    }

    /// Schedule length `L`: last occupied control step, plus padding.
    pub fn length(&self) -> u32 {
        let occupied = self.slots.values().map(Slot::end).max().unwrap_or(0);
        occupied + self.padding
    }

    /// Current padding (empty control steps at the end).
    pub fn padding(&self) -> u32 {
        self.padding
    }

    /// Ensures `length() >= target` by appending empty control steps.
    /// Never shrinks.
    pub fn pad_to(&mut self, target: u32) {
        let occupied = self.slots.values().map(Slot::end).max().unwrap_or(0);
        if target > occupied + self.padding {
            self.padding = target - occupied;
        }
    }

    /// Drops any padding beyond the last occupied step.
    pub fn trim_padding(&mut self) {
        self.padding = 0;
    }

    /// Places `node` on `pe` starting at `start` for `duration` steps.
    pub fn place(
        &mut self,
        node: NodeId,
        pe: Pe,
        start: u32,
        duration: u32,
    ) -> Result<(), TableError> {
        if start == 0 || duration == 0 {
            return Err(TableError::BadInterval);
        }
        if pe.index() >= self.num_pes {
            return Err(TableError::BadPe(pe));
        }
        if self.is_placed(node) {
            return Err(TableError::AlreadyPlaced(node));
        }
        let lane = &self.occupancy[pe.index()];
        for cs in start..start + duration {
            if let Some(&by) = lane.get(&cs) {
                return Err(TableError::Occupied { pe, cs, by: NodeId::from_index(by) });
            }
        }
        let lane = &mut self.occupancy[pe.index()];
        for cs in start..start + duration {
            lane.insert(cs, node.index());
        }
        self.slots.insert(node.index(), Slot { pe, start, duration });
        Ok(())
    }

    /// Removes `node` from the table, returning its slot.
    pub fn remove(&mut self, node: NodeId) -> Option<Slot> {
        let slot = self.slots.remove(&node.index())?;
        let lane = &mut self.occupancy[slot.pe.index()];
        for cs in slot.start..slot.start + slot.duration {
            lane.remove(&cs);
        }
        Some(slot)
    }

    /// Node occupying `(pe, cs)`, if any.
    pub fn at(&self, pe: Pe, cs: u32) -> Option<NodeId> {
        self.occupancy[pe.index()].get(&cs).map(|&i| NodeId::from_index(i))
    }

    /// `true` if `pe` is free for `[start, start + duration)`.
    pub fn is_free(&self, pe: Pe, start: u32, duration: u32) -> bool {
        let lane = &self.occupancy[pe.index()];
        lane.range(start..start + duration).next().is_none()
    }

    /// First control step `>= from` at which `pe` can host a task of
    /// `duration` steps.
    pub fn earliest_free(&self, pe: Pe, from: u32, duration: u32) -> u32 {
        let mut cs = from.max(1);
        loop {
            // Jump past the first conflict in [cs, cs+duration).
            match self.occupancy[pe.index()].range(cs..cs + duration).next() {
                None => return cs,
                Some((&busy, _)) => cs = busy + 1,
            }
        }
    }

    /// Nodes beginning at control step 1 — the paper's rotation set `J`.
    pub fn first_row(&self) -> Vec<NodeId> {
        self.rows_upto(1)
    }

    /// Nodes beginning at control step `<= upto` — the rotation set of
    /// a multi-row rotation pass.
    pub fn rows_upto(&self, upto: u32) -> Vec<NodeId> {
        self.slots
            .iter()
            .filter(|(_, s)| s.start <= upto)
            .map(|(&i, _)| NodeId::from_index(i))
            .collect()
    }

    /// All placed nodes with their slots, ordered by node id.
    pub fn placements(&self) -> impl Iterator<Item = (NodeId, Slot)> + '_ {
        self.slots.iter().map(|(&i, &s)| (NodeId::from_index(i), s))
    }

    /// Removes the given nodes and shifts every remaining placement one
    /// control step earlier — the renumbering that follows a rotation
    /// (the old row 1 conceptually moves to row `L + 1`).
    ///
    /// # Panics
    ///
    /// Panics if a remaining node starts at control step 1 (the caller
    /// must remove the whole first row).
    pub fn drop_and_shift(&mut self, nodes: &[NodeId]) {
        self.drop_and_shift_by(nodes, 1);
    }

    /// Generalization of [`Schedule::drop_and_shift`]: removes `nodes`
    /// and shifts every remaining placement `shift` control steps
    /// earlier (multi-row rotation).
    ///
    /// # Panics
    ///
    /// Panics if a remaining node starts at or before control step
    /// `shift` (the caller must remove everything in the first `shift`
    /// rows).
    pub fn drop_and_shift_by(&mut self, nodes: &[NodeId], shift: u32) {
        for &n in nodes {
            self.remove(n);
        }
        if shift == 0 {
            self.padding = 0;
            return;
        }
        let old: Vec<(NodeId, Slot)> = self.placements().collect();
        for (n, _) in &old {
            self.remove(*n);
        }
        for (n, s) in old {
            assert!(
                s.start > shift,
                "drop_and_shift_by: node {n} starts at cs{} <= shift {shift}",
                s.start
            );
            self.place(n, s.pe, s.start - shift, s.duration)
                .expect("shift of a valid schedule cannot conflict");
        }
        self.padding = 0;
    }

    /// Renders the table in the paper's layout (`cs` rows, `pe`
    /// columns), labelling tasks via `name`.
    pub fn render(&self, mut name: impl FnMut(NodeId) -> String) -> String {
        let len = self.length();
        let mut cells: Vec<Vec<String>> =
            vec![vec![String::new(); self.num_pes]; len as usize];
        for (node, slot) in self.placements() {
            let label = name(node);
            for cs in slot.start..=slot.end() {
                cells[(cs - 1) as usize][slot.pe.index()] = label.clone();
            }
        }
        let mut widths: Vec<usize> = (0..self.num_pes)
            .map(|p| {
                cells
                    .iter()
                    .map(|row| row[p].len())
                    .chain(std::iter::once(format!("pe{}", p + 1).len()))
                    .max()
                    .unwrap_or(3)
            })
            .collect();
        for w in &mut widths {
            *w = (*w).max(3);
        }
        let cs_w = format!("{len}").len().max(2);
        let mut out = String::new();
        use std::fmt::Write as _;
        let _ = write!(out, "{:>cs_w$} |", "cs");
        for (p, w) in widths.iter().enumerate() {
            let _ = write!(out, " {:^w$}", format!("pe{}", p + 1));
        }
        out.push('\n');
        let total: usize = cs_w + 2 + widths.iter().map(|w| w + 1).sum::<usize>();
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for (i, row) in cells.iter().enumerate() {
            let _ = write!(out, "{:>cs_w$} |", i + 1);
            for (p, w) in widths.iter().enumerate() {
                let _ = write!(out, " {:^w$}", row[p]);
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn place_and_accessors() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 2).unwrap();
        s.place(n(2), Pe(1), 3, 1).unwrap();
        assert_eq!(s.cb(n(1)), Some(2));
        assert_eq!(s.ce(n(1)), Some(3));
        assert_eq!(s.pe(n(2)), Some(Pe(1)));
        assert_eq!(s.length(), 3);
        assert_eq!(s.placed_count(), 3);
        assert_eq!(s.at(Pe(0), 3), Some(n(1)));
        assert_eq!(s.at(Pe(1), 1), None);
    }

    #[test]
    fn conflicts_rejected() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 2).unwrap();
        let err = s.place(n(1), Pe(0), 2, 1).unwrap_err();
        assert_eq!(err, TableError::Occupied { pe: Pe(0), cs: 2, by: n(0) });
        assert_eq!(s.place(n(0), Pe(0), 5, 1), Err(TableError::AlreadyPlaced(n(0))));
        assert_eq!(s.place(n(2), Pe(0), 0, 1), Err(TableError::BadInterval));
        assert_eq!(s.place(n(2), Pe(1), 1, 1), Err(TableError::BadPe(Pe(1))));
    }

    #[test]
    fn remove_frees_occupancy() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 3).unwrap();
        let slot = s.remove(n(0)).unwrap();
        assert_eq!(slot.duration, 3);
        assert!(s.is_free(Pe(0), 1, 3));
        assert_eq!(s.remove(n(0)), None);
        s.place(n(1), Pe(0), 2, 1).unwrap();
    }

    #[test]
    fn earliest_free_skips_conflicts() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 2, 2).unwrap(); // busy cs2-3
        assert_eq!(s.earliest_free(Pe(0), 1, 1), 1);
        assert_eq!(s.earliest_free(Pe(0), 1, 2), 4);
        assert_eq!(s.earliest_free(Pe(0), 2, 1), 4);
        assert_eq!(s.earliest_free(Pe(0), 5, 3), 5);
        // from=0 clamps to 1
        assert_eq!(s.earliest_free(Pe(0), 0, 1), 1);
    }

    #[test]
    fn padding_extends_length() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 2).unwrap();
        assert_eq!(s.length(), 2);
        s.pad_to(5);
        assert_eq!(s.length(), 5);
        assert_eq!(s.padding(), 3);
        s.pad_to(4); // never shrinks
        assert_eq!(s.length(), 5);
        s.trim_padding();
        assert_eq!(s.length(), 2);
    }

    #[test]
    fn first_row_finds_cs1_starters() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 2).unwrap();
        s.place(n(1), Pe(1), 1, 1).unwrap();
        s.place(n(2), Pe(1), 2, 1).unwrap();
        let mut row = s.first_row();
        row.sort();
        assert_eq!(row, vec![n(0), n(1)]);
    }

    #[test]
    fn drop_and_shift_renumbers() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 2).unwrap();
        s.place(n(2), Pe(1), 3, 1).unwrap();
        s.pad_to(9);
        s.drop_and_shift(&[n(0)]);
        assert!(!s.is_placed(n(0)));
        assert_eq!(s.cb(n(1)), Some(1));
        assert_eq!(s.ce(n(1)), Some(2));
        assert_eq!(s.cb(n(2)), Some(2));
        assert_eq!(s.length(), 2);
        assert_eq!(s.padding(), 0);
    }

    #[test]
    fn drop_and_shift_by_two_rows() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 2).unwrap(); // spans rows 1-2
        s.place(n(1), Pe(1), 2, 1).unwrap();
        s.place(n(2), Pe(0), 3, 1).unwrap();
        s.place(n(3), Pe(1), 4, 2).unwrap();
        let mut rotated = s.rows_upto(2);
        rotated.sort();
        assert_eq!(rotated, vec![n(0), n(1)]);
        s.drop_and_shift_by(&rotated, 2);
        assert_eq!(s.cb(n(2)), Some(1));
        assert_eq!(s.cb(n(3)), Some(2));
        assert_eq!(s.length(), 3);
    }

    #[test]
    fn drop_and_shift_by_zero_only_removes() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 1).unwrap();
        s.pad_to(5);
        s.drop_and_shift_by(&[n(0)], 0);
        assert_eq!(s.cb(n(1)), Some(2));
        assert_eq!(s.padding(), 0);
    }

    #[test]
    #[should_panic(expected = "<= shift 2")]
    fn drop_and_shift_by_rejects_partial_rows() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 2, 1).unwrap();
        s.drop_and_shift_by(&[], 2);
    }

    #[test]
    #[should_panic(expected = "<= shift 1")]
    fn drop_and_shift_requires_full_first_row() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(1), 1, 1).unwrap();
        s.drop_and_shift(&[n(0)]); // n(1) still at cs1
    }

    #[test]
    fn render_matches_paper_layout() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.place(n(1), Pe(0), 2, 2).unwrap();
        s.place(n(2), Pe(1), 3, 1).unwrap();
        let text = s.render(|v| ["A", "B", "C"][v.index()].to_string());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("pe1"));
        assert!(lines[0].contains("pe2"));
        assert!(lines[2].contains('A'));
        // B occupies rows 2 and 3.
        assert!(lines[3].contains('B'));
        assert!(lines[4].contains('B'));
        assert!(lines[4].contains('C'));
    }

    #[test]
    fn render_includes_padded_rows() {
        let mut s = Schedule::new(1);
        s.place(n(0), Pe(0), 1, 1).unwrap();
        s.pad_to(3);
        let text = s.render(|_| "X".into());
        assert_eq!(text.lines().count(), 2 + 3); // header + rule + 3 rows
    }

    #[test]
    fn slot_end_arithmetic() {
        let s = Slot { pe: Pe(0), start: 4, duration: 3 };
        assert_eq!(s.end(), 6);
    }

    #[test]
    fn serde_round_trip() {
        let mut s = Schedule::new(2);
        s.place(n(0), Pe(1), 2, 2).unwrap();
        s.pad_to(4);
        let json = serde_json::to_string(&s).unwrap();
        let back: Schedule = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.length(), 4);
    }
}

//! SVG rendering of schedule tables — a publication-ready counterpart
//! of the ASCII renderer.

use crate::table::Schedule;
use ccs_model::Csdfg;
use std::fmt::Write as _;

/// Options for [`to_svg`].
#[derive(Clone, Copy, Debug)]
pub struct SvgOptions {
    /// Pixel width of one control step.
    pub cell_w: u32,
    /// Pixel height of one processor lane.
    pub cell_h: u32,
    /// Left margin for PE labels.
    pub margin_left: u32,
    /// Top margin for the control-step axis.
    pub margin_top: u32,
}

impl Default for SvgOptions {
    fn default() -> Self {
        SvgOptions {
            cell_w: 34,
            cell_h: 26,
            margin_left: 48,
            margin_top: 28,
        }
    }
}

/// A small qualitative palette; tasks cycle through it by node index.
const PALETTE: [&str; 8] = [
    "#4e79a7", "#f28e2b", "#59a14f", "#e15759", "#b07aa1", "#76b7b2", "#edc948", "#9c755f",
];

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// Renders `sched` (hosting `g`) as a standalone SVG document: one
/// horizontal lane per PE, one column per control step, tasks as
/// labelled colored blocks, padded steps hatched out.
pub fn to_svg(g: &Csdfg, sched: &Schedule, opt: SvgOptions) -> String {
    let length = sched.length().max(1);
    let pes = sched.num_pes() as u32;
    let width = opt.margin_left + length * opt.cell_w + 8;
    let height = opt.margin_top + pes * opt.cell_h + 8;
    let mut out = String::new();
    let _ = writeln!(
        out,
        r##"<svg xmlns="http://www.w3.org/2000/svg" width="{width}" height="{height}" viewBox="0 0 {width} {height}">"##
    );
    let _ = writeln!(
        out,
        r##"  <style>text {{ font: 11px sans-serif; }} .lbl {{ fill: #fff; text-anchor: middle; dominant-baseline: central; }} .ax {{ fill: #444; text-anchor: middle; }}</style>"##
    );
    let _ = writeln!(
        out,
        r##"  <rect width="{width}" height="{height}" fill="white"/>"##
    );

    // Grid and axes.
    for cs in 0..length {
        let x = opt.margin_left + cs * opt.cell_w;
        let _ = writeln!(
            out,
            r##"  <line x1="{x}" y1="{}" x2="{x}" y2="{}" stroke="#ddd"/>"##,
            opt.margin_top,
            opt.margin_top + pes * opt.cell_h
        );
        let _ = writeln!(
            out,
            r##"  <text class="ax" x="{}" y="{}">{}</text>"##,
            x + opt.cell_w / 2,
            opt.margin_top - 8,
            cs + 1
        );
    }
    for p in 0..pes {
        let y = opt.margin_top + p * opt.cell_h;
        let _ = writeln!(
            out,
            r##"  <line x1="{}" y1="{y}" x2="{}" y2="{y}" stroke="#ddd"/>"##,
            opt.margin_left,
            opt.margin_left + length * opt.cell_w
        );
        let _ = writeln!(
            out,
            r##"  <text x="6" y="{}">pe{}</text>"##,
            y + opt.cell_h / 2 + 4,
            p + 1
        );
    }

    // Task blocks.
    for (node, slot) in sched.placements() {
        let x = opt.margin_left + (slot.start - 1) * opt.cell_w;
        let y = opt.margin_top + slot.pe.0 * opt.cell_h;
        let w = slot.duration * opt.cell_w;
        let color = PALETTE[node.index() % PALETTE.len()];
        let name = escape(g.name(node));
        let _ = writeln!(
            out,
            r##"  <rect x="{x}" y="{}" width="{}" height="{}" rx="3" fill="{color}"><title>{name}: pe{} cs{}-{}</title></rect>"##,
            y + 2,
            w - 2,
            opt.cell_h - 4,
            slot.pe.0 + 1,
            slot.start,
            slot.end()
        );
        let _ = writeln!(
            out,
            r##"  <text class="lbl" x="{}" y="{}">{name}</text>"##,
            x + w / 2,
            y + opt.cell_h / 2
        );
    }

    // Hatch the padded (empty) suffix.
    if sched.padding() > 0 {
        let x = opt.margin_left + (length - sched.padding()) * opt.cell_w;
        let w = sched.padding() * opt.cell_w;
        let _ = writeln!(
            out,
            r##"  <rect x="{x}" y="{}" width="{w}" height="{}" fill="#888" opacity="0.15"/>"##,
            opt.margin_top,
            pes * opt.cell_h
        );
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccs_topology::Pe;

    fn setup() -> (Csdfg, Schedule) {
        let mut g = Csdfg::new();
        let a = g.add_task("A", 1).unwrap();
        let b = g.add_task("<B&>", 2).unwrap();
        g.add_dep(a, b, 0, 1).unwrap();
        g.add_dep(b, a, 1, 1).unwrap();
        let mut s = Schedule::new(2);
        s.place(a, Pe(0), 1, 1).unwrap();
        s.place(b, Pe(1), 2, 2).unwrap();
        s.pad_to(5);
        (g, s)
    }

    #[test]
    fn produces_valid_looking_svg() {
        let (g, s) = setup();
        let svg = to_svg(&g, &s, SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // one rect per task + background + padding overlay
        assert_eq!(svg.matches("<rect").count(), 4);
        assert!(svg.contains(">pe1<"));
        assert!(svg.contains(">pe2<"));
    }

    #[test]
    fn escapes_task_names() {
        let (g, s) = setup();
        let svg = to_svg(&g, &s, SvgOptions::default());
        assert!(svg.contains("&lt;B&amp;&gt;"));
        assert!(!svg.contains("<B&>"));
    }

    #[test]
    fn padding_overlay_present_only_when_padded() {
        let (g, mut s) = setup();
        s.trim_padding();
        let svg = to_svg(&g, &s, SvgOptions::default());
        assert_eq!(svg.matches("opacity=\"0.15\"").count(), 0);
    }

    #[test]
    fn axis_covers_every_control_step() {
        let (g, s) = setup();
        let svg = to_svg(&g, &s, SvgOptions::default());
        for cs in 1..=5 {
            assert!(svg.contains(&format!(">{cs}</text>")), "missing cs {cs}");
        }
    }
}

//! Equivalence harness: the dense `Schedule` (flat occupancy rows +
//! first-free cursors) against a reference model that mirrors the
//! original sparse `BTreeMap` implementation, under random operation
//! sequences.  Every mutation result and every observable query must
//! agree — this is what licenses the storage swap to claim "exact same
//! public API and tie-break semantics".

use ccs_model::NodeId;
use ccs_schedule::{Schedule, Slot, TableError};
use ccs_topology::Pe;
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Straightforward reimplementation of the pre-optimization sparse
/// table: slot map keyed by node id, per-PE `cs -> node` occupancy
/// maps, linear `earliest_free` probing.
struct RefTable {
    num_pes: usize,
    slots: BTreeMap<usize, Slot>,
    occupancy: Vec<BTreeMap<u32, usize>>,
    padding: u32,
}

impl RefTable {
    fn new(num_pes: usize) -> Self {
        RefTable {
            num_pes,
            slots: BTreeMap::new(),
            occupancy: vec![BTreeMap::new(); num_pes],
            padding: 0,
        }
    }

    fn occupied_end(&self) -> u32 {
        self.slots.values().map(Slot::end).max().unwrap_or(0)
    }

    fn length(&self) -> u32 {
        self.occupied_end() + self.padding
    }

    fn place(&mut self, node: NodeId, pe: Pe, start: u32, duration: u32) -> Result<(), TableError> {
        if start == 0 || duration == 0 {
            return Err(TableError::BadInterval);
        }
        if pe.index() >= self.num_pes {
            return Err(TableError::BadPe(pe));
        }
        if self.slots.contains_key(&node.index()) {
            return Err(TableError::AlreadyPlaced(node));
        }
        let end = start + duration - 1;
        for cs in start..=end {
            if let Some(&by) = self.occupancy[pe.index()].get(&cs) {
                return Err(TableError::Occupied {
                    pe,
                    cs,
                    by: NodeId::from_index(by),
                });
            }
        }
        for cs in start..=end {
            self.occupancy[pe.index()].insert(cs, node.index());
        }
        self.slots.insert(
            node.index(),
            Slot {
                pe,
                start,
                duration,
            },
        );
        Ok(())
    }

    fn remove(&mut self, node: NodeId) -> Option<Slot> {
        let slot = self.slots.remove(&node.index())?;
        for cs in slot.start..=slot.end() {
            self.occupancy[slot.pe.index()].remove(&cs);
        }
        Some(slot)
    }

    fn is_free(&self, pe: Pe, start: u32, duration: u32) -> bool {
        (start..start + duration)
            .filter(|&cs| cs > 0)
            .all(|cs| !self.occupancy[pe.index()].contains_key(&cs))
    }

    fn earliest_free(&self, pe: Pe, from: u32, duration: u32) -> u32 {
        // Jump past the latest conflict in the probed window instead of
        // advancing one step at a time: the old `cs += 1` walk made the
        // reference O(row length) per query and dominated proptest
        // runtime on padded tables.
        let mut cs = from.max(1);
        loop {
            match self.occupancy[pe.index()]
                .range(cs..cs + duration)
                .next_back()
            {
                None => return cs,
                Some((&occupied, _)) => cs = occupied + 1,
            }
        }
    }

    fn at(&self, pe: Pe, cs: u32) -> Option<NodeId> {
        self.occupancy[pe.index()]
            .get(&cs)
            .map(|&i| NodeId::from_index(i))
    }

    fn pad_to(&mut self, target: u32) {
        let len = self.length();
        if target > len {
            self.padding += target - len;
        }
    }

    fn rows_upto(&self, upto: u32) -> Vec<NodeId> {
        self.slots
            .iter()
            .filter(|(_, s)| s.start <= upto)
            .map(|(&i, _)| NodeId::from_index(i))
            .collect()
    }

    fn drop_and_shift_by(&mut self, nodes: &[NodeId], shift: u32) {
        for &n in nodes {
            self.remove(n);
        }
        self.padding = 0;
        if shift == 0 {
            return;
        }
        let old = std::mem::take(&mut self.slots);
        for row in &mut self.occupancy {
            row.clear();
        }
        for (i, s) in old {
            assert!(s.start > shift);
            let moved = Slot {
                start: s.start - shift,
                ..s
            };
            for cs in moved.start..=moved.end() {
                self.occupancy[moved.pe.index()].insert(cs, i);
            }
            self.slots.insert(i, moved);
        }
    }

    fn shift_later(&mut self, shift: u32) {
        let old = std::mem::take(&mut self.slots);
        for row in &mut self.occupancy {
            row.clear();
        }
        for (i, s) in old {
            let moved = Slot {
                start: s.start + shift,
                ..s
            };
            for cs in moved.start..=moved.end() {
                self.occupancy[moved.pe.index()].insert(cs, i);
            }
            self.slots.insert(i, moved);
        }
    }
}

/// One step of a random operation sequence.
#[derive(Clone, Debug)]
enum Op {
    Place {
        node: usize,
        pe: u32,
        start: u32,
        dur: u32,
    },
    Remove {
        node: usize,
    },
    DropAndShiftBy {
        shift: u32,
    },
    PadTo {
        target: u32,
    },
    TrimPadding,
    ShiftLater {
        shift: u32,
    },
}

fn arb_place() -> impl Strategy<Value = Op> {
    (0usize..12, 0u32..5, 0u32..10, 0u32..4).prop_map(|(node, pe, start, dur)| Op::Place {
        node,
        pe,
        start,
        dur,
    })
}

fn arb_op() -> impl Strategy<Value = Op> {
    // Placements repeated to bias the mix toward well-filled tables
    // (the vendored proptest stand-in has no weighted `prop_oneof!`).
    prop_oneof![
        arb_place(),
        arb_place(),
        arb_place(),
        arb_place(),
        (0usize..12).prop_map(|node| Op::Remove { node }),
        (0usize..12).prop_map(|node| Op::Remove { node }),
        (0u32..3).prop_map(|shift| Op::DropAndShiftBy { shift }),
        (0u32..14).prop_map(|target| Op::PadTo { target }),
        Just(Op::TrimPadding),
        (0u32..3).prop_map(|shift| Op::ShiftLater { shift }),
    ]
}

/// Checks every observable on both tables.
fn assert_same(dense: &Schedule, reference: &RefTable) {
    assert_eq!(dense.num_pes(), reference.num_pes);
    // The word-level occupancy bitsets must mirror the dense rows after
    // every mutation (place/remove/shift/rotate round-trips alike) —
    // `earliest_free` trusts them without consulting the rows.
    assert!(
        dense.occupancy_bits_in_sync(),
        "occupancy bitsets out of sync with dense rows"
    );
    assert_eq!(dense.length(), reference.length());
    assert_eq!(dense.padding(), reference.padding);
    assert_eq!(dense.placed_count(), reference.slots.len());
    let dense_slots: Vec<(usize, Slot)> = dense.placements().map(|(n, s)| (n.index(), s)).collect();
    let ref_slots: Vec<(usize, Slot)> = reference.slots.iter().map(|(&i, &s)| (i, s)).collect();
    assert_eq!(dense_slots, ref_slots, "placement tables diverged");
    for p in 0..reference.num_pes {
        let pe = Pe(p as u32);
        for cs in 0..16u32 {
            assert_eq!(dense.at(pe, cs), reference.at(pe, cs), "at({pe:?}, {cs})");
        }
        for from in 0..10u32 {
            for dur in 1..4u32 {
                assert_eq!(
                    dense.earliest_free(pe, from, dur),
                    reference.earliest_free(pe, from, dur),
                    "earliest_free({pe:?}, {from}, {dur})"
                );
                assert_eq!(
                    dense.is_free(pe, from.max(1), dur),
                    reference.is_free(pe, from.max(1), dur)
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn dense_table_matches_sparse_reference(pes in 1usize..5, ops in proptest::collection::vec(arb_op(), 0..40)) {
        let mut dense = Schedule::new(pes);
        let mut reference = RefTable::new(pes);
        for op in ops {
            match op {
                Op::Place { node, pe, start, dur } => {
                    let n = NodeId::from_index(node);
                    let r1 = dense.place(n, Pe(pe), start, dur);
                    let r2 = reference.place(n, Pe(pe), start, dur);
                    prop_assert_eq!(r1, r2, "place({node}, pe{pe}, {start}, {dur})");
                }
                Op::Remove { node } => {
                    let n = NodeId::from_index(node);
                    prop_assert_eq!(dense.remove(n), reference.remove(n));
                }
                Op::DropAndShiftBy { shift } => {
                    // The API contract requires removing everything in
                    // the first `shift` rows, exactly as remap does.
                    let nodes = dense.rows_upto(shift);
                    let ref_nodes = reference.rows_upto(shift);
                    prop_assert_eq!(&nodes, &ref_nodes);
                    dense.drop_and_shift_by(&nodes, shift);
                    reference.drop_and_shift_by(&ref_nodes, shift);
                }
                Op::PadTo { target } => {
                    dense.pad_to(target);
                    reference.pad_to(target);
                }
                Op::TrimPadding => {
                    dense.trim_padding();
                    reference.padding = 0;
                }
                Op::ShiftLater { shift } => {
                    dense.shift_later(shift);
                    if dense.placed_count() > 0 {
                        reference.shift_later(shift);
                    }
                }
            }
            assert_same(&dense, &reference);
        }
    }
}

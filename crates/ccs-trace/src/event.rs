//! The structured event taxonomy of the cyclo-compaction pipeline.
//!
//! Events are emitted by three scheduler layers (see `DESIGN.md` §10):
//!
//! * **startup** — `PF` ready-list picks and per-node placements of the
//!   start-up list scheduler;
//! * **remap** — per-pass rotation sets, the per-PE candidate scan of
//!   `best_position` (anticipation-function components and rejection
//!   reasons), `PSL` slack repairs, and per-pass hot-path counters;
//! * **compact** — driver pass boundaries, best-snapshot updates, and
//!   slot-occupancy snapshots.
//!
//! Every event is plain data over raw node / PE indices (`u32`), so the
//! crate depends on nothing but the serde stand-in.  Events are fully
//! deterministic: no wall-clock quantities ever appear in an event
//! (sinks that want timing keep their own clocks), which is what makes
//! golden-pinning the stream and byte-identical `--trace` output across
//! thread counts possible.

use serde::Value;
use std::fmt;

/// The runner-up candidate of a remap placement: the second-best
/// `(PE, control step)` under the `(impact, cs, comm, pe)` ranking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunnerUp {
    /// Processor index of the runner-up slot.
    pub pe: u32,
    /// Start control step of the runner-up slot.
    pub cs: u32,
    /// Length impact the runner-up would have forced.
    pub impact: u32,
    /// Total communication traffic of the runner-up.
    pub comm: u32,
}

impl fmt::Display for RunnerUp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pe{}@cs{}(impact={},comm={})",
            self.pe + 1,
            self.cs,
            self.impact,
            self.comm
        )
    }
}

/// Outcome of scanning one candidate PE in `best_position`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verdict {
    /// The anticipation-function bounds crossed (`AN(v, p) > ub`): no
    /// control step on this PE can satisfy both the placed predecessors
    /// and the placed successors at this target length.
    Infeasible,
    /// Bounds were satisfiable but the earliest free slot at or after
    /// the lower bound ends past the upper bound — the PE's occupancy
    /// row is too busy.
    NoFreeSlot,
    /// A legal slot exists but ranked worse than the current best.
    Feasible {
        /// The slot's start control step.
        cs: u32,
        /// Schedule length this placement would force (Lemma 4.3).
        impact: u32,
    },
    /// A legal slot that became the best seen so far in this scan.
    Leading {
        /// The slot's start control step.
        cs: u32,
        /// Schedule length this placement would force (Lemma 4.3).
        impact: u32,
    },
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Infeasible => write!(f, "infeasible"),
            Verdict::NoFreeSlot => write!(f, "busy"),
            Verdict::Feasible { cs, impact } => write!(f, "feasible cs={cs} impact={impact}"),
            Verdict::Leading { cs, impact } => write!(f, "leading cs={cs} impact={impact}"),
        }
    }
}

/// One structured event from the scheduler pipeline.
///
/// Node and PE identifiers are raw indices (0-based); renderers that
/// want human names resolve them through a caller-provided lookup.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// Start-up scheduling begins.
    StartupBegin {
        /// Number of tasks to place.
        tasks: u32,
        /// Number of processors of the machine.
        pes: u32,
    },
    /// One ready-list entry at a control step, in `PF`-sorted order.
    ReadyPick {
        /// Control step being filled.
        cs: u32,
        /// Rank in the sorted ready list (0 = scheduled first).
        rank: u32,
        /// The ready node.
        node: u32,
        /// Its priority value under the active policy.
        priority: i64,
    },
    /// The start-up scheduler placed a node.
    StartupPlace {
        /// The placed node.
        node: u32,
        /// Chosen processor.
        pe: u32,
        /// Start control step.
        cs: u32,
        /// Execution time (control steps occupied).
        duration: u32,
    },
    /// A ready node could not start at this control step (no feasible
    /// PE under the `cm < cs` rule) and was deferred.
    StartupDefer {
        /// The deferred node.
        node: u32,
        /// Control step at which it was deferred.
        cs: u32,
    },
    /// Start-up scheduling finished.
    StartupEnd {
        /// Final (padded) start-up schedule length.
        length: u32,
    },
    /// The cyclo-compaction driver begins.
    CompactBegin {
        /// Number of tasks.
        tasks: u32,
        /// Number of processors.
        pes: u32,
        /// Configured maximum number of passes.
        max_passes: u32,
    },
    /// A rotate-remap pass begins.
    PassBegin {
        /// 1-based pass number.
        pass: u32,
        /// Schedule length entering the pass.
        prev_len: u32,
        /// Leading rows rotated this pass.
        rows: u32,
    },
    /// The rotation set `J` of the current pass (nodes deallocated from
    /// the leading rows and retimed by +1).
    Rotate {
        /// Rotated nodes, in remap order.
        nodes: Vec<u32>,
    },
    /// One candidate PE scanned by `best_position` for one node at one
    /// target length, with the anticipation-function components.
    Candidate {
        /// Node being re-placed.
        node: u32,
        /// Target final schedule length of this attempt.
        target: u32,
        /// Candidate processor.
        pe: u32,
        /// Lower bound on `CB(v)` from placed predecessors (`AN(v, p)`).
        lb: i64,
        /// Upper bound on `CE(v)` from placed successors and the target.
        ub: i64,
        /// Total communication traffic of this PE choice.
        comm: u32,
        /// Scan outcome.
        verdict: Verdict,
    },
    /// A rotated node was re-placed.
    Placed {
        /// The node.
        node: u32,
        /// Chosen processor.
        pe: u32,
        /// Start control step.
        cs: u32,
        /// Execution time.
        duration: u32,
        /// Target length of the successful attempt.
        target: u32,
        /// Schedule length this placement forces.
        impact: u32,
        /// Total communication traffic of the placement.
        comm: u32,
        /// Second-best candidate, if any other PE was feasible.
        runner_up: Option<RunnerUp>,
    },
    /// No PE could host the node at this target length (the remap moves
    /// on to the next target, or gives up and reverts).
    NoSlot {
        /// The node that could not be placed.
        node: u32,
        /// The target length that failed.
        target: u32,
    },
    /// Projected-schedule-length slack repair: the table is padded so
    /// the length covers every loop-carried edge's `PSL` (Lemma 4.3).
    SlackRepair {
        /// Length the PSL terms require.
        required: u32,
        /// Length before padding.
        occupied: u32,
    },
    /// Per-pass hot-path counters, emitted once per rotate-remap pass.
    PassStats {
        /// Resolved edges swept in `best_position` (per PE × target).
        edges_swept: u64,
        /// Candidate `(PE, target)` slots probed.
        slots_probed: u64,
        /// Per-node scratch resolutions reused across PEs and targets.
        scratch_reuses: u64,
        /// Invariant-oracle invocations on this pass's mutations.
        oracle_calls: u64,
    },
    /// A rotate-remap pass ended.
    PassEnd {
        /// 1-based pass number.
        pass: u32,
        /// `false` when the pass was rolled back.
        accepted: bool,
        /// Schedule length after the pass (pre-pass length on revert).
        length: u32,
    },
    /// The driver snapshotted a new best schedule (the one clone on the
    /// per-pass hot path).
    BestSnapshot {
        /// Pass that produced the improvement.
        pass: u32,
        /// New best length.
        length: u32,
    },
    /// Slot-occupancy statistics of the working schedule after an
    /// accepted pass (from `Schedule::occupancy`).
    OccupancySnapshot {
        /// Pass number.
        pass: u32,
        /// Occupied cells across all PEs.
        busy_cells: u64,
        /// Free cells below each PE's last occupied step (fragmentation).
        holes: u64,
        /// PEs hosting at least one task.
        used_pes: u32,
        /// Current schedule length.
        length: u32,
    },
    /// The driver finished.
    CompactEnd {
        /// Start-up schedule length.
        initial: u32,
        /// Best length found.
        best: u32,
        /// Passes actually run.
        passes: u32,
    },
    /// Per-edge traffic attribution: where one dependence edge's
    /// communication lands on the machine under the current placement
    /// (`M(p_i, p_j) = hops · volume`).  Emitted as a full-graph
    /// snapshot after start-up placement, after every accepted
    /// rotate-remap pass, and once for the final best schedule.
    EdgeTraffic {
        /// Edge index in the graph's edge order.
        edge: u32,
        /// Producer node.
        src: u32,
        /// Consumer node.
        dst: u32,
        /// Processor hosting the producer.
        src_pe: u32,
        /// Processor hosting the consumer.
        dst_pe: u32,
        /// Hop count between the two PEs (0 when co-located).
        hops: u32,
        /// Data volume carried by the edge (`c(e)`).
        volume: u32,
    },
    /// Per-PE load summary of the final best schedule: how many tasks a
    /// processor hosts and how many control-step cells they occupy.
    PeLoad {
        /// Processor index.
        pe: u32,
        /// Tasks placed on this PE.
        tasks: u32,
        /// Occupied control-step cells on this PE.
        busy: u32,
    },
}

impl Event {
    /// Short dotted name of the event kind (stable; used as the Chrome
    /// trace event name and the first token of [`Event`]'s `Display`).
    pub fn kind(&self) -> &'static str {
        match self {
            Event::StartupBegin { .. } => "startup.begin",
            Event::ReadyPick { .. } => "startup.pick",
            Event::StartupPlace { .. } => "startup.place",
            Event::StartupDefer { .. } => "startup.defer",
            Event::StartupEnd { .. } => "startup.end",
            Event::CompactBegin { .. } => "compact.begin",
            Event::PassBegin { .. } => "pass.begin",
            Event::Rotate { .. } => "pass.rotate",
            Event::Candidate { .. } => "remap.candidate",
            Event::Placed { .. } => "remap.place",
            Event::NoSlot { .. } => "remap.noslot",
            Event::SlackRepair { .. } => "psl.pad",
            Event::PassStats { .. } => "pass.stats",
            Event::PassEnd { .. } => "pass.end",
            Event::BestSnapshot { .. } => "compact.best",
            Event::OccupancySnapshot { .. } => "schedule.occupancy",
            Event::CompactEnd { .. } => "compact.end",
            Event::EdgeTraffic { .. } => "traffic.edge",
            Event::PeLoad { .. } => "traffic.pe",
        }
    }

    /// The hop-weighted communication cost carried by an
    /// [`Event::EdgeTraffic`] event (`hops · volume`, saturating);
    /// `0` for every other event kind.
    pub fn traffic_cost(&self) -> u64 {
        match self {
            Event::EdgeTraffic { hops, volume, .. } => {
                u64::from(*hops).saturating_mul(u64::from(*volume))
            }
            _ => 0,
        }
    }

    /// The event's payload as an ordered JSON object (for the Chrome
    /// trace `args` field and other serializers).
    pub fn args(&self) -> Value {
        fn obj(fields: Vec<(&str, Value)>) -> Value {
            Value::Object(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
        }
        fn u(x: u32) -> Value {
            Value::UInt(u64::from(x))
        }
        fn u64v(x: u64) -> Value {
            Value::UInt(x)
        }
        fn i(x: i64) -> Value {
            if x < 0 {
                Value::Int(x)
            } else {
                Value::UInt(x.unsigned_abs())
            }
        }
        match self {
            Event::StartupBegin { tasks, pes } => obj(vec![("tasks", u(*tasks)), ("pes", u(*pes))]),
            Event::ReadyPick {
                cs,
                rank,
                node,
                priority,
            } => obj(vec![
                ("cs", u(*cs)),
                ("rank", u(*rank)),
                ("node", u(*node)),
                ("priority", i(*priority)),
            ]),
            Event::StartupPlace {
                node,
                pe,
                cs,
                duration,
            } => obj(vec![
                ("node", u(*node)),
                ("pe", u(*pe)),
                ("cs", u(*cs)),
                ("duration", u(*duration)),
            ]),
            Event::StartupDefer { node, cs } => obj(vec![("node", u(*node)), ("cs", u(*cs))]),
            Event::StartupEnd { length } => obj(vec![("length", u(*length))]),
            Event::CompactBegin {
                tasks,
                pes,
                max_passes,
            } => obj(vec![
                ("tasks", u(*tasks)),
                ("pes", u(*pes)),
                ("max_passes", u(*max_passes)),
            ]),
            Event::PassBegin {
                pass,
                prev_len,
                rows,
            } => obj(vec![
                ("pass", u(*pass)),
                ("prev_len", u(*prev_len)),
                ("rows", u(*rows)),
            ]),
            Event::Rotate { nodes } => obj(vec![(
                "nodes",
                Value::Array(nodes.iter().map(|&n| u(n)).collect()),
            )]),
            Event::Candidate {
                node,
                target,
                pe,
                lb,
                ub,
                comm,
                verdict,
            } => obj(vec![
                ("node", u(*node)),
                ("target", u(*target)),
                ("pe", u(*pe)),
                ("lb", i(*lb)),
                ("ub", i(*ub)),
                ("comm", u(*comm)),
                ("verdict", Value::String(verdict.to_string())),
            ]),
            Event::Placed {
                node,
                pe,
                cs,
                duration,
                target,
                impact,
                comm,
                runner_up,
            } => obj(vec![
                ("node", u(*node)),
                ("pe", u(*pe)),
                ("cs", u(*cs)),
                ("duration", u(*duration)),
                ("target", u(*target)),
                ("impact", u(*impact)),
                ("comm", u(*comm)),
                (
                    "runner_up",
                    match runner_up {
                        Some(r) => obj(vec![
                            ("pe", u(r.pe)),
                            ("cs", u(r.cs)),
                            ("impact", u(r.impact)),
                            ("comm", u(r.comm)),
                        ]),
                        None => Value::Null,
                    },
                ),
            ]),
            Event::NoSlot { node, target } => obj(vec![("node", u(*node)), ("target", u(*target))]),
            Event::SlackRepair { required, occupied } => {
                obj(vec![("required", u(*required)), ("occupied", u(*occupied))])
            }
            Event::PassStats {
                edges_swept,
                slots_probed,
                scratch_reuses,
                oracle_calls,
            } => obj(vec![
                ("edges_swept", u64v(*edges_swept)),
                ("slots_probed", u64v(*slots_probed)),
                ("scratch_reuses", u64v(*scratch_reuses)),
                ("oracle_calls", u64v(*oracle_calls)),
            ]),
            Event::PassEnd {
                pass,
                accepted,
                length,
            } => obj(vec![
                ("pass", u(*pass)),
                ("accepted", Value::Bool(*accepted)),
                ("length", u(*length)),
            ]),
            Event::BestSnapshot { pass, length } => {
                obj(vec![("pass", u(*pass)), ("length", u(*length))])
            }
            Event::OccupancySnapshot {
                pass,
                busy_cells,
                holes,
                used_pes,
                length,
            } => obj(vec![
                ("pass", u(*pass)),
                ("busy_cells", u64v(*busy_cells)),
                ("holes", u64v(*holes)),
                ("used_pes", u(*used_pes)),
                ("length", u(*length)),
            ]),
            Event::CompactEnd {
                initial,
                best,
                passes,
            } => obj(vec![
                ("initial", u(*initial)),
                ("best", u(*best)),
                ("passes", u(*passes)),
            ]),
            Event::EdgeTraffic {
                edge,
                src,
                dst,
                src_pe,
                dst_pe,
                hops,
                volume,
            } => obj(vec![
                ("edge", u(*edge)),
                ("src", u(*src)),
                ("dst", u(*dst)),
                ("src_pe", u(*src_pe)),
                ("dst_pe", u(*dst_pe)),
                ("hops", u(*hops)),
                ("volume", u(*volume)),
                ("cost", u64v(self.traffic_cost())),
                ("crossing", Value::Bool(src_pe != dst_pe)),
            ]),
            Event::PeLoad { pe, tasks, busy } => obj(vec![
                ("pe", u(*pe)),
                ("tasks", u(*tasks)),
                ("busy", u(*busy)),
            ]),
        }
    }
}

impl fmt::Display for Event {
    /// One stable line per event — the format golden tests pin.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.kind())?;
        match self {
            Event::StartupBegin { tasks, pes } => write!(f, " tasks={tasks} pes={pes}"),
            Event::ReadyPick {
                cs,
                rank,
                node,
                priority,
            } => write!(f, " cs={cs} rank={rank} node=n{node} pf={priority}"),
            Event::StartupPlace {
                node,
                pe,
                cs,
                duration,
            } => write!(f, " node=n{node} pe={pe} cs={cs} dur={duration}"),
            Event::StartupDefer { node, cs } => write!(f, " node=n{node} cs={cs}"),
            Event::StartupEnd { length } => write!(f, " len={length}"),
            Event::CompactBegin {
                tasks,
                pes,
                max_passes,
            } => write!(f, " tasks={tasks} pes={pes} max_passes={max_passes}"),
            Event::PassBegin {
                pass,
                prev_len,
                rows,
            } => write!(f, " pass={pass} len={prev_len} rows={rows}"),
            Event::Rotate { nodes } => {
                write!(f, " nodes=[")?;
                for (i, n) in nodes.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "n{n}")?;
                }
                write!(f, "]")
            }
            Event::Candidate {
                node,
                target,
                pe,
                lb,
                ub,
                comm,
                verdict,
            } => write!(
                f,
                " node=n{node} target={target} pe={pe} lb={lb} ub={ub} comm={comm} verdict={verdict}"
            ),
            Event::Placed {
                node,
                pe,
                cs,
                duration,
                target,
                impact,
                comm,
                runner_up,
            } => {
                write!(
                    f,
                    " node=n{node} pe={pe} cs={cs} dur={duration} target={target} impact={impact} comm={comm} runner_up="
                )?;
                match runner_up {
                    Some(r) => write!(f, "{r}"),
                    None => write!(f, "none"),
                }
            }
            Event::NoSlot { node, target } => write!(f, " node=n{node} target={target}"),
            Event::SlackRepair { required, occupied } => {
                write!(f, " required={required} occupied={occupied}")
            }
            Event::PassStats {
                edges_swept,
                slots_probed,
                scratch_reuses,
                oracle_calls,
            } => write!(
                f,
                " edges={edges_swept} slots={slots_probed} scratch={scratch_reuses} oracle={oracle_calls}"
            ),
            Event::PassEnd {
                pass,
                accepted,
                length,
            } => write!(f, " pass={pass} accepted={accepted} len={length}"),
            Event::BestSnapshot { pass, length } => write!(f, " pass={pass} len={length}"),
            Event::OccupancySnapshot {
                pass,
                busy_cells,
                holes,
                used_pes,
                length,
            } => write!(
                f,
                " pass={pass} busy={busy_cells} holes={holes} used_pes={used_pes} len={length}"
            ),
            Event::CompactEnd {
                initial,
                best,
                passes,
            } => write!(f, " init={initial} best={best} passes={passes}"),
            Event::EdgeTraffic {
                edge,
                src,
                dst,
                src_pe,
                dst_pe,
                hops,
                volume,
            } => write!(
                f,
                " edge=e{edge} n{src}->n{dst} pe={src_pe}->{dst_pe} hops={hops} vol={volume} cost={} crossing={}",
                self.traffic_cost(),
                src_pe != dst_pe
            ),
            Event::PeLoad { pe, tasks, busy } => write!(f, " pe={pe} tasks={tasks} busy={busy}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_stable_one_liner() {
        let ev = Event::Placed {
            node: 0,
            pe: 1,
            cs: 2,
            duration: 1,
            target: 6,
            impact: 6,
            comm: 3,
            runner_up: Some(RunnerUp {
                pe: 2,
                cs: 3,
                impact: 7,
                comm: 1,
            }),
        };
        assert_eq!(
            ev.to_string(),
            "remap.place node=n0 pe=1 cs=2 dur=1 target=6 impact=6 comm=3 runner_up=pe3@cs3(impact=7,comm=1)"
        );
        assert!(!ev.to_string().contains('\n'));
    }

    #[test]
    fn verdict_rendering() {
        assert_eq!(Verdict::Infeasible.to_string(), "infeasible");
        assert_eq!(Verdict::NoFreeSlot.to_string(), "busy");
        assert_eq!(
            Verdict::Leading { cs: 2, impact: 5 }.to_string(),
            "leading cs=2 impact=5"
        );
    }

    #[test]
    fn args_are_objects() {
        let ev = Event::PassStats {
            edges_swept: 10,
            slots_probed: 4,
            scratch_reuses: 2,
            oracle_calls: 1,
        };
        let v = ev.args();
        assert_eq!(v["edges_swept"].as_u64(), Some(10));
        assert_eq!(ev.kind(), "pass.stats");
    }

    #[test]
    fn edge_traffic_display_and_args() {
        let ev = Event::EdgeTraffic {
            edge: 4,
            src: 0,
            dst: 3,
            src_pe: 1,
            dst_pe: 2,
            hops: 2,
            volume: 3,
        };
        assert_eq!(
            ev.to_string(),
            "traffic.edge edge=e4 n0->n3 pe=1->2 hops=2 vol=3 cost=6 crossing=true"
        );
        assert_eq!(ev.kind(), "traffic.edge");
        assert_eq!(ev.traffic_cost(), 6);
        let v = ev.args();
        assert_eq!(v["cost"].as_u64(), Some(6));
        assert_eq!(v["hops"].as_u64(), Some(2));

        let local = Event::EdgeTraffic {
            edge: 0,
            src: 1,
            dst: 2,
            src_pe: 0,
            dst_pe: 0,
            hops: 0,
            volume: 9,
        };
        assert_eq!(
            local.to_string(),
            "traffic.edge edge=e0 n1->n2 pe=0->0 hops=0 vol=9 cost=0 crossing=false"
        );
        assert_eq!(local.traffic_cost(), 0);
    }

    #[test]
    fn traffic_cost_saturates() {
        let ev = Event::EdgeTraffic {
            edge: 0,
            src: 0,
            dst: 1,
            src_pe: 0,
            dst_pe: 1,
            hops: u32::MAX,
            volume: u32::MAX,
        };
        // u32::MAX² fits in u64, so no saturation needed here — but the
        // product must not panic and non-traffic events report zero.
        assert_eq!(ev.traffic_cost(), u64::from(u32::MAX) * u64::from(u32::MAX));
        assert_eq!(Event::StartupEnd { length: 1 }.traffic_cost(), 0);
    }

    #[test]
    fn pe_load_display() {
        let ev = Event::PeLoad {
            pe: 2,
            tasks: 3,
            busy: 5,
        };
        assert_eq!(ev.to_string(), "traffic.pe pe=2 tasks=3 busy=5");
        assert_eq!(ev.kind(), "traffic.pe");
        assert_eq!(ev.args()["busy"].as_u64(), Some(5));
    }

    #[test]
    fn negative_priority_serializes_as_int() {
        let ev = Event::ReadyPick {
            cs: 1,
            rank: 0,
            node: 3,
            priority: -4,
        };
        assert_eq!(ev.args()["priority"].as_i64(), Some(-4));
    }
}

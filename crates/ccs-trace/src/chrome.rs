//! Chrome-trace (a.k.a. Trace Event Format) exporter.
//!
//! Converts a recorded [`TimedEvent`] stream into the JSON array form
//! understood by `chrome://tracing` and [Perfetto](https://ui.perfetto.dev):
//!
//! * paired `"B"`/`"E"` duration events for the startup phase, each
//!   compaction pass, and the whole `cyclo_compact` run;
//! * `"i"` instant events for individual decisions (ready-list picks,
//!   placements, candidate scans, slack repairs, snapshots).
//!
//! Two clock domains are supported via [`Clock`]:
//!
//! * [`Clock::Logical`] — the timestamp is the event's *index* in the
//!   stream (1 µs apart).  Output is a pure function of the event
//!   stream, so `--trace` files are byte-identical across runs and
//!   thread counts.  This is the CLI default.
//! * [`Clock::Wall`] — the timestamp is the recorded wall-clock
//!   nanosecond offset divided by 1000.  Use this when you care about
//!   where real time goes rather than about reproducibility.
//!
//! [`validate_chrome`] re-parses an exported document and checks the
//! structural rules above; the `trace-check` binary (and the CI trace
//! job) are thin wrappers around it.

use crate::event::Event;
use crate::TimedEvent;
use serde::Value;

/// Timestamp domain for [`to_chrome`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Clock {
    /// Deterministic: `ts` = event index (in microseconds).
    Logical,
    /// Real time: `ts` = recorded nanoseconds / 1000.
    Wall,
}

/// Span-open kinds, used to pair `"B"`/`"E"` events.
fn open_name(ev: &Event) -> Option<String> {
    match ev {
        Event::StartupBegin { .. } => Some("startup".to_string()),
        Event::CompactBegin { .. } => Some("cyclo_compact".to_string()),
        Event::PassBegin { pass, .. } => Some(format!("pass {pass}")),
        _ => None,
    }
}

/// Span-close kinds.
fn close_name(ev: &Event) -> Option<String> {
    match ev {
        Event::StartupEnd { .. } => Some("startup".to_string()),
        Event::CompactEnd { .. } => Some("cyclo_compact".to_string()),
        Event::PassEnd { pass, .. } => Some(format!("pass {pass}")),
        _ => None,
    }
}

fn push_obj(out: &mut String, name: &str, ph: &str, ts: u64, args: &Value, scoped: bool) {
    let mut fields = vec![
        ("name".to_string(), Value::String(name.to_string())),
        ("ph".to_string(), Value::String(ph.to_string())),
        ("ts".to_string(), Value::UInt(ts)),
        ("pid".to_string(), Value::UInt(1)),
        ("tid".to_string(), Value::UInt(1)),
    ];
    if scoped {
        fields.push(("s".to_string(), Value::String("t".to_string())));
    }
    fields.push(("args".to_string(), args.clone()));
    // INVARIANT: Value serialization is infallible in the vendored
    // stand-in (no foreign Serialize impls can reach here).
    let json = serde_json::to_string(&Value::Object(fields)).unwrap_or_default();
    out.push_str(&json);
}

/// Renders the event stream as a Chrome-trace JSON array.
///
/// The output always ends with a newline and is a pure function of
/// `(events, clock)` — with [`Clock::Logical`] it is additionally
/// independent of the recorded timestamps.
pub fn to_chrome(events: &[TimedEvent], clock: Clock) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 16);
    out.push_str("[\n");
    let mut first = true;
    for (idx, te) in events.iter().enumerate() {
        let ts = match clock {
            Clock::Logical => idx as u64,
            Clock::Wall => te.ns / 1000,
        };
        let args = te.event.args();
        let (name, ph, scoped) = if let Some(n) = open_name(&te.event) {
            (n, "B", false)
        } else if let Some(n) = close_name(&te.event) {
            (n, "E", false)
        } else {
            (te.event.kind().to_string(), "i", true)
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        push_obj(&mut out, &name, ph, ts, &args, scoped);
    }
    out.push_str("\n]\n");
    out
}

/// Summary statistics returned by [`validate_chrome`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChromeStats {
    /// Total trace records.
    pub total: usize,
    /// `"B"`/`"E"` span pairs.
    pub spans: usize,
    /// `"i"` instant records.
    pub instants: usize,
}

fn field<'v>(obj: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Validates that `text` is a structurally well-formed Chrome-trace
/// document as produced by [`to_chrome`]:
///
/// * the top level is a JSON array;
/// * every record is an object with string `name`, string `ph` in
///   `{B, E, i}`, numeric `ts`, and numeric `pid`/`tid`;
/// * `ts` values are non-decreasing in document order;
/// * `B`/`E` records nest properly (stack discipline, matching names)
///   and every span opened is closed.
///
/// Returns counts on success and a message describing the first
/// violation otherwise.
pub fn validate_chrome(text: &str) -> Result<ChromeStats, String> {
    let value: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let arr = match value {
        Value::Array(a) => a,
        _ => return Err("top level is not a JSON array".to_string()),
    };
    let mut stats = ChromeStats::default();
    let mut stack: Vec<String> = Vec::new();
    let mut last_ts: Option<f64> = None;
    for (i, rec) in arr.iter().enumerate() {
        let obj = rec
            .as_object()
            .ok_or_else(|| format!("record {i} is not an object"))?;
        let name = field(obj, "name")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("record {i}: missing string `name`"))?;
        let ph = field(obj, "ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("record {i}: missing string `ph`"))?;
        let ts = field(obj, "ts")
            .and_then(Value::as_f64)
            .ok_or_else(|| format!("record {i}: missing numeric `ts`"))?;
        for key in ["pid", "tid"] {
            field(obj, key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("record {i}: missing numeric `{key}`"))?;
        }
        if let Some(prev) = last_ts {
            if ts < prev {
                return Err(format!("record {i}: ts {ts} decreases below {prev}"));
            }
        }
        last_ts = Some(ts);
        match ph {
            "B" => {
                stack.push(name.to_string());
            }
            "E" => {
                let open = stack
                    .pop()
                    .ok_or_else(|| format!("record {i}: `E` for {name:?} with no open span"))?;
                if open != name {
                    return Err(format!(
                        "record {i}: span mismatch — closing {name:?} but {open:?} is open"
                    ));
                }
                stats.spans += 1;
            }
            "i" => {
                stats.instants += 1;
            }
            other => {
                return Err(format!("record {i}: unsupported ph {other:?}"));
            }
        }
        stats.total += 1;
    }
    if let Some(open) = stack.pop() {
        return Err(format!("span {open:?} is never closed"));
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timed(events: Vec<Event>) -> Vec<TimedEvent> {
        events
            .into_iter()
            .enumerate()
            .map(|(i, event)| TimedEvent {
                ns: (i as u64) * 1500,
                event,
            })
            .collect()
    }

    fn sample() -> Vec<TimedEvent> {
        timed(vec![
            Event::CompactBegin {
                tasks: 3,
                pes: 2,
                max_passes: 4,
            },
            Event::PassBegin {
                pass: 1,
                prev_len: 5,
                rows: 3,
            },
            Event::Rotate { nodes: vec![0, 2] },
            Event::PassEnd {
                pass: 1,
                accepted: true,
                length: 4,
            },
            Event::CompactEnd {
                initial: 5,
                best: 4,
                passes: 1,
            },
        ])
    }

    #[test]
    fn exports_valid_chrome_trace() {
        let text = to_chrome(&sample(), Clock::Logical);
        let stats = validate_chrome(&text).expect("must validate");
        assert_eq!(stats.total, 5);
        assert_eq!(stats.spans, 2);
        assert_eq!(stats.instants, 1);
    }

    #[test]
    fn logical_clock_ignores_recorded_time() {
        let mut a = sample();
        let b = a.clone();
        for te in &mut a {
            te.ns += 999_999; // perturb wall time
        }
        assert_eq!(to_chrome(&a, Clock::Logical), to_chrome(&b, Clock::Logical));
        assert_ne!(to_chrome(&a, Clock::Wall), to_chrome(&b, Clock::Wall));
    }

    #[test]
    fn wall_clock_uses_microseconds() {
        let events = timed(vec![Event::StartupEnd { length: 1 }]);
        let text = to_chrome(&events, Clock::Wall);
        // 0 ns -> 0 µs for the first event.
        assert!(text.contains("\"ts\":0"));
    }

    #[test]
    fn rejects_non_array() {
        assert!(validate_chrome("{}").is_err());
        assert!(validate_chrome("not json").is_err());
    }

    #[test]
    fn rejects_unbalanced_spans() {
        let events = timed(vec![Event::PassBegin {
            pass: 1,
            prev_len: 5,
            rows: 3,
        }]);
        let text = to_chrome(&events, Clock::Logical);
        let err = validate_chrome(&text).unwrap_err();
        assert!(err.contains("never closed"), "{err}");
    }

    #[test]
    fn rejects_mismatched_span_names() {
        let events = timed(vec![
            Event::PassBegin {
                pass: 1,
                prev_len: 5,
                rows: 3,
            },
            Event::PassEnd {
                pass: 2,
                accepted: false,
                length: 5,
            },
        ]);
        let text = to_chrome(&events, Clock::Logical);
        let err = validate_chrome(&text).unwrap_err();
        assert!(err.contains("mismatch"), "{err}");
    }

    #[test]
    fn rejects_decreasing_timestamps() {
        let mut events = sample();
        events[1].ns = 0;
        events[0].ns = 5_000;
        let text = to_chrome(&events, Clock::Wall);
        let err = validate_chrome(&text).unwrap_err();
        assert!(err.contains("decreases"), "{err}");
    }
}

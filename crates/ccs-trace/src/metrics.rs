//! Counter + histogram registry fed by the event stream.
//!
//! [`MetricsSink`] is a [`Sink`](crate::Sink) that aggregates the
//! per-pass hot-path counters ([`Event::PassStats`]) and times the
//! startup / pass / compact spans with its own clock, accumulating
//! everything into a [`Metrics`] registry.  `bench_hotpath` installs
//! one around an instrumented run and serializes the registry into the
//! BENCH json, giving the perf trajectory a per-phase breakdown
//! (`BENCH_pr3.json` onward).
//!
//! Keeping the clock in the *sink* (not the events) preserves the
//! determinism contract: the same schedule always emits the same event
//! stream, while wall time stays an artifact of the observation.

use crate::event::Event;
use crate::Sink;
use serde::Value;
use std::collections::BTreeMap;
use std::time::Instant;

/// Min/max/sum/count summary of a series of `f64` samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Histogram {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample (`0.0` when empty).
    pub min: f64,
    /// Largest sample (`0.0` when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: 0.0,
            max: 0.0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, sample: f64) {
        if self.count == 0 {
            self.min = sample;
            self.max = sample;
        } else {
            self.min = self.min.min(sample);
            self.max = self.max.max(sample);
        }
        self.count += 1;
        self.sum += sample;
    }

    /// Mean of the recorded samples (`0.0` when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

/// Ordered registry of named counters and histograms.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Metrics {
    /// Monotonic counters, keyed by stable snake_case names.
    pub counters: BTreeMap<String, u64>,
    /// Sample summaries, keyed by stable snake_case names.
    pub histograms: BTreeMap<String, Histogram>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `by` to the counter `name` (creating it at zero).
    pub fn add(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Records `sample` into the histogram `name` (creating it empty).
    pub fn observe(&mut self, name: &str, sample: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .record(sample);
    }

    /// Serializes only the counters as an ordered JSON object.
    ///
    /// Counters are pure event-stream folds, so this value is
    /// deterministic (byte-identical across runs and thread counts) —
    /// unlike [`Metrics::to_value`], whose wall-clock histograms vary
    /// per run.  Per-cell sweep summaries serialize this.
    pub fn counters_value(&self) -> Value {
        Value::Object(
            self.counters
                .iter()
                .map(|(k, v)| (k.clone(), Value::UInt(*v)))
                .collect(),
        )
    }

    /// Serializes the registry as `{"counters": {..}, "histograms":
    /// {name: {count, sum, min, max, mean}, ..}}`.
    pub fn to_value(&self) -> Value {
        let counters = self.counters_value();
        let histograms = Value::Object(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    (
                        k.clone(),
                        Value::Object(vec![
                            ("count".to_string(), Value::UInt(h.count)),
                            ("sum".to_string(), Value::Float(h.sum)),
                            ("min".to_string(), Value::Float(h.min)),
                            ("max".to_string(), Value::Float(h.max)),
                            ("mean".to_string(), Value::Float(h.mean())),
                        ]),
                    )
                })
                .collect(),
        );
        Value::Object(vec![
            ("counters".to_string(), counters),
            ("histograms".to_string(), histograms),
        ])
    }
}

/// A [`Sink`] that folds the event stream into a [`Metrics`] registry.
///
/// * [`Event::PassStats`] counters accumulate into `edges_swept`,
///   `slots_probed`, `scratch_reuses`, `oracle_calls`;
/// * [`Event::BestSnapshot`] increments `clones` (the one
///   snapshot-clone per improving pass);
/// * placements, candidates, no-slots, rotations, and PSL pads feed
///   `placements`, `candidates`, `no_slots`, `rotated_nodes`,
///   `psl_pads`;
/// * startup / pass / compact begin-end pairs are timed with the
///   sink's own [`Instant`] clock into the `startup_wall_ms`,
///   `pass_wall_ms`, and `compact_wall_ms` histograms, and accepted vs.
///   reverted passes count into `passes_accepted` / `passes_reverted`.
pub struct MetricsSink {
    /// The accumulated registry.
    pub metrics: Metrics,
    startup_t0: Option<Instant>,
    pass_t0: Option<Instant>,
    compact_t0: Option<Instant>,
}

impl MetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        MetricsSink {
            metrics: Metrics::new(),
            startup_t0: None,
            pass_t0: None,
            compact_t0: None,
        }
    }

    /// Consumes the sink, returning the registry.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }
}

impl Default for MetricsSink {
    fn default() -> Self {
        MetricsSink::new()
    }
}

fn ms_since(t0: Option<Instant>) -> Option<f64> {
    t0.map(|t| t.elapsed().as_secs_f64() * 1e3)
}

impl Sink for MetricsSink {
    fn event(&mut self, ev: Event) {
        let m = &mut self.metrics;
        match ev {
            // CLOCK: the MetricsSink is a sanctioned sink — the three
            // *_wall_ms observations below are timing diagnostics,
            // excluded from fingerprinted and golden-pinned output.
            Event::StartupBegin { .. } => self.startup_t0 = Some(Instant::now()),
            Event::StartupEnd { .. } => {
                if let Some(ms) = ms_since(self.startup_t0.take()) {
                    m.observe("startup_wall_ms", ms);
                }
            }
            // CLOCK: sanctioned sink (see above).
            Event::CompactBegin { .. } => self.compact_t0 = Some(Instant::now()),
            Event::CompactEnd { .. } => {
                if let Some(ms) = ms_since(self.compact_t0.take()) {
                    m.observe("compact_wall_ms", ms);
                }
            }
            // CLOCK: sanctioned sink (see above).
            Event::PassBegin { .. } => self.pass_t0 = Some(Instant::now()),
            Event::PassEnd { accepted, .. } => {
                if let Some(ms) = ms_since(self.pass_t0.take()) {
                    m.observe("pass_wall_ms", ms);
                }
                m.add(
                    if accepted {
                        "passes_accepted"
                    } else {
                        "passes_reverted"
                    },
                    1,
                );
            }
            Event::PassStats {
                edges_swept,
                slots_probed,
                scratch_reuses,
                oracle_calls,
            } => {
                m.add("edges_swept", edges_swept);
                m.add("slots_probed", slots_probed);
                m.add("scratch_reuses", scratch_reuses);
                m.add("oracle_calls", oracle_calls);
            }
            Event::BestSnapshot { .. } => m.add("clones", 1),
            Event::Rotate { nodes } => m.add("rotated_nodes", nodes.len() as u64),
            Event::Candidate { .. } => m.add("candidates", 1),
            Event::Placed { .. } => m.add("placements", 1),
            Event::NoSlot { .. } => m.add("no_slots", 1),
            Event::SlackRepair { .. } => m.add("psl_pads", 1),
            Event::ReadyPick { .. } => m.add("ready_picks", 1),
            Event::StartupPlace { .. } => m.add("startup_placements", 1),
            Event::StartupDefer { .. } => m.add("startup_defers", 1),
            Event::OccupancySnapshot { .. } => {}
            Event::EdgeTraffic {
                src_pe,
                dst_pe,
                volume,
                hops,
                ..
            } => {
                m.add("traffic_events", 1);
                m.add(
                    if src_pe == dst_pe {
                        "traffic_local"
                    } else {
                        "traffic_crossing"
                    },
                    1,
                );
                m.add("traffic_volume", u64::from(volume));
                m.add(
                    "traffic_cost",
                    u64::from(hops).saturating_mul(u64::from(volume)),
                );
            }
            Event::PeLoad { busy, .. } => m.add("pe_busy_cells", u64::from(busy)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_tracks_bounds_and_mean() {
        let mut h = Histogram::default();
        assert_eq!(h.mean(), 0.0);
        h.record(2.0);
        h.record(6.0);
        h.record(4.0);
        assert_eq!(h.count, 3);
        assert_eq!(h.min, 2.0);
        assert_eq!(h.max, 6.0);
        assert_eq!(h.mean(), 4.0);
    }

    #[test]
    fn sink_aggregates_counters_and_times_passes() {
        let mut sink = MetricsSink::new();
        sink.event(Event::CompactBegin {
            tasks: 2,
            pes: 2,
            max_passes: 3,
        });
        sink.event(Event::PassBegin {
            pass: 1,
            prev_len: 5,
            rows: 1,
        });
        sink.event(Event::Rotate { nodes: vec![0, 1] });
        sink.event(Event::PassStats {
            edges_swept: 7,
            slots_probed: 3,
            scratch_reuses: 1,
            oracle_calls: 2,
        });
        sink.event(Event::BestSnapshot { pass: 1, length: 4 });
        sink.event(Event::PassEnd {
            pass: 1,
            accepted: true,
            length: 4,
        });
        sink.event(Event::CompactEnd {
            initial: 5,
            best: 4,
            passes: 1,
        });
        let m = sink.into_metrics();
        assert_eq!(m.counters["edges_swept"], 7);
        assert_eq!(m.counters["rotated_nodes"], 2);
        assert_eq!(m.counters["clones"], 1);
        assert_eq!(m.counters["passes_accepted"], 1);
        assert_eq!(m.histograms["pass_wall_ms"].count, 1);
        assert_eq!(m.histograms["compact_wall_ms"].count, 1);
    }

    #[test]
    fn sink_folds_traffic_events() {
        let mut sink = MetricsSink::new();
        sink.event(Event::EdgeTraffic {
            edge: 0,
            src: 0,
            dst: 1,
            src_pe: 0,
            dst_pe: 2,
            hops: 2,
            volume: 3,
        });
        sink.event(Event::EdgeTraffic {
            edge: 1,
            src: 1,
            dst: 2,
            src_pe: 1,
            dst_pe: 1,
            hops: 0,
            volume: 5,
        });
        sink.event(Event::PeLoad {
            pe: 0,
            tasks: 2,
            busy: 4,
        });
        let m = sink.into_metrics();
        assert_eq!(m.counters["traffic_events"], 2);
        assert_eq!(m.counters["traffic_crossing"], 1);
        assert_eq!(m.counters["traffic_local"], 1);
        assert_eq!(m.counters["traffic_volume"], 8);
        assert_eq!(m.counters["traffic_cost"], 6);
        assert_eq!(m.counters["pe_busy_cells"], 4);
    }

    #[test]
    fn counters_value_is_counters_only() {
        let mut m = Metrics::new();
        m.add("a", 1);
        m.observe("h", 2.0);
        let v = m.counters_value();
        assert_eq!(v["a"].as_u64(), Some(1));
        assert!(v.get("h").is_none(), "histograms must not leak");
    }

    #[test]
    fn to_value_round_trips_shape() {
        let mut m = Metrics::new();
        m.add("x", 3);
        m.observe("h", 1.5);
        let v = m.to_value();
        assert_eq!(v["counters"]["x"].as_u64(), Some(3));
        assert_eq!(v["histograms"]["h"]["count"].as_u64(), Some(1));
        assert_eq!(v["histograms"]["h"]["mean"].as_f64(), Some(1.5));
    }
}

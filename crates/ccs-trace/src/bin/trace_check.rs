//! `trace-check` — validates a Chrome-trace JSON document produced by
//! `cyclosched schedule --trace`.
//!
//! ```text
//! trace-check out.json
//! ```
//!
//! Exit codes: `0` valid, `1` structurally invalid, `2` usage/IO error.
//! CI runs this on the artifact uploaded by the trace job.

use ccs_trace::chrome::validate_chrome;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let path = match (args.next(), args.next()) {
        (Some(p), None) if p != "--help" && p != "-h" => p,
        _ => {
            eprintln!("usage: trace-check <trace.json>");
            return ExitCode::from(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("trace-check: cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    match validate_chrome(&text) {
        Ok(stats) => {
            println!(
                "{path}: OK — {} records ({} spans, {} instants)",
                stats.total, stats.spans, stats.instants
            );
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("{path}: INVALID — {msg}");
            ExitCode::FAILURE
        }
    }
}

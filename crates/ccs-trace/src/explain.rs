//! Human-readable decision narrative.
//!
//! [`explain`] replays a recorded event stream and renders, per pass
//! and per node, *why* the scheduler did what it did: which `(PE,
//! control step)` each rotated node landed on, what the runner-up slot
//! was, which candidate PEs were rejected and for which reason
//! (anticipation-function bounds crossed vs. occupancy-row full), where
//! `PSL` slack forced padding, and which passes were accepted or
//! reverted.  The `cyclosched schedule --explain` flag pipes the
//! recorded stream of a real run through this renderer.
//!
//! The renderer is a pure function of the event stream, so its output
//! is as deterministic as the events themselves.

use crate::event::{Event, Verdict};
use crate::TimedEvent;
use std::fmt::Write as _;

/// Pending candidate-scan lines for one `(node, target)` attempt.
#[derive(Default)]
struct Scan {
    node: u32,
    target: u32,
    lines: Vec<String>,
}

/// Renders the decision narrative for `events`.
///
/// `name` maps a raw node index to a display name (pass
/// `|n| format!("n{n}")` when no graph is at hand).  PEs are shown
/// 1-based to match the paper's `PE1..PEm` convention; control steps
/// are 0-based table rows.
pub fn explain(events: &[TimedEvent], name: impl FnMut(u32) -> String) -> String {
    explain_with(events, name, |_| None)
}

/// [`explain`] with a per-pass annotation hook: after every *accepted*
/// pass line, `annotate(pass)` may contribute extra narrative — the
/// CLI splices in the per-pass ledger diffs computed by `ccs-profile`
/// here ("which edges' hop·volume moved, where, and by how much"),
/// keeping this crate free of any topology dependency.
///
/// The annotation is appended verbatim, so it should be pre-indented
/// and newline-terminated to match the surrounding narrative.
pub fn explain_with(
    events: &[TimedEvent],
    mut name: impl FnMut(u32) -> String,
    mut annotate: impl FnMut(u32) -> Option<String>,
) -> String {
    let mut out = String::new();
    // Candidate events for the attempt currently being scanned.  A
    // `Placed`/`NoSlot` event closes the attempt; `Placed` flushes the
    // buffered rejections under the placement line.
    let mut scan = Scan::default();
    let mut in_pass = false;
    // Running totals of the current contiguous `traffic.edge` snapshot
    // (edges, crossing edges, hop-weighted cost); flushed as a one-line
    // summary when the snapshot ends.
    let mut traffic: Option<(u32, u32, u64)> = None;

    let flush_scan = |out: &mut String, scan: &mut Scan, keep: bool| {
        if keep {
            for line in &scan.lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        scan.lines.clear();
    };

    for te in events {
        if !matches!(te.event, Event::EdgeTraffic { .. }) {
            if let Some((edges, crossing, cost)) = traffic.take() {
                let _ = writeln!(
                    out,
                    "  traffic: {edges} edge(s), {crossing} crossing, comm cost {cost}"
                );
            }
        }
        match &te.event {
            Event::StartupBegin { tasks, pes } => {
                let _ = writeln!(out, "startup: {tasks} tasks on {pes} PEs");
            }
            Event::ReadyPick {
                cs,
                rank,
                node,
                priority,
            } => {
                let _ = writeln!(
                    out,
                    "  cs {cs}: ready[{rank}] = {} (PF={priority})",
                    name(*node)
                );
            }
            Event::StartupPlace {
                node,
                pe,
                cs,
                duration,
            } => {
                let _ = writeln!(
                    out,
                    "  place {} -> PE{} @ cs {cs} (dur {duration})",
                    name(*node),
                    pe + 1
                );
            }
            Event::StartupDefer { node, cs } => {
                let _ = writeln!(out, "  defer {} at cs {cs} (no feasible PE)", name(*node));
            }
            Event::StartupEnd { length } => {
                let _ = writeln!(out, "startup done: length {length}");
            }
            Event::CompactBegin {
                tasks,
                pes,
                max_passes,
            } => {
                let _ = writeln!(
                    out,
                    "cyclo-compact: {tasks} tasks, {pes} PEs, up to {max_passes} passes"
                );
            }
            Event::PassBegin {
                pass,
                prev_len,
                rows,
            } => {
                in_pass = true;
                let _ = writeln!(
                    out,
                    "pass {pass}: length {prev_len}, rotating {rows} leading row(s)"
                );
            }
            Event::Rotate { nodes } => {
                let names: Vec<String> = nodes.iter().map(|&n| name(n)).collect();
                let _ = writeln!(out, "  rotated J = {{{}}}", names.join(", "));
            }
            Event::Candidate {
                node,
                target,
                pe,
                lb,
                ub,
                comm,
                verdict,
            } => {
                if scan.node != *node || scan.target != *target {
                    // A new attempt implicitly abandons the previous
                    // buffer (its outcome event already consumed it).
                    scan.lines.clear();
                    scan.node = *node;
                    scan.target = *target;
                }
                let line = match verdict {
                    Verdict::Infeasible => format!(
                        "      PE{}: rejected — AN bounds cross (lb {lb} > ub {ub})",
                        pe + 1
                    ),
                    Verdict::NoFreeSlot => format!(
                        "      PE{}: rejected — no free slot in [{lb}, {ub}]",
                        pe + 1
                    ),
                    Verdict::Feasible { cs, impact } => format!(
                        "      PE{}: feasible @ cs {cs} (impact {impact}, comm {comm}) — outranked",
                        pe + 1
                    ),
                    Verdict::Leading { cs, impact } => format!(
                        "      PE{}: feasible @ cs {cs} (impact {impact}, comm {comm}) — leading",
                        pe + 1
                    ),
                };
                scan.lines.push(line);
            }
            Event::Placed {
                node,
                pe,
                cs,
                duration,
                target,
                impact,
                comm,
                runner_up,
            } => {
                let _ = writeln!(
                    out,
                    "    {} -> PE{} @ cs {cs} (dur {duration}, target {target}, impact {impact}, comm {comm})",
                    name(*node),
                    pe + 1
                );
                match runner_up {
                    Some(r) => {
                        let _ = writeln!(
                            out,
                            "      runner-up: PE{} @ cs {} (impact {}, comm {})",
                            r.pe + 1,
                            r.cs,
                            r.impact,
                            r.comm
                        );
                    }
                    None => {
                        let _ = writeln!(out, "      runner-up: none (only feasible slot)");
                    }
                }
                let keep = scan.node == *node && scan.target == *target;
                flush_scan(&mut out, &mut scan, keep);
            }
            Event::NoSlot { node, target } => {
                let _ = writeln!(
                    out,
                    "    {}: no slot at target {target} — retrying longer",
                    name(*node)
                );
                let keep = scan.node == *node && scan.target == *target;
                flush_scan(&mut out, &mut scan, keep);
            }
            Event::SlackRepair { required, occupied } => {
                let indent = if in_pass { "    " } else { "  " };
                let _ = writeln!(
                    out,
                    "{indent}PSL pad: occupied {occupied} -> required {required}"
                );
            }
            Event::PassStats {
                edges_swept,
                slots_probed,
                scratch_reuses,
                oracle_calls,
            } => {
                let _ = writeln!(
                    out,
                    "  stats: {edges_swept} edges swept, {slots_probed} slots probed, {scratch_reuses} scratch reuses, {oracle_calls} oracle calls"
                );
            }
            Event::PassEnd {
                pass,
                accepted,
                length,
            } => {
                in_pass = false;
                let verdict = if *accepted { "accepted" } else { "reverted" };
                let _ = writeln!(out, "pass {pass} {verdict}: length {length}");
                if *accepted {
                    if let Some(note) = annotate(*pass) {
                        out.push_str(&note);
                    }
                }
            }
            Event::BestSnapshot { pass, length } => {
                let _ = writeln!(out, "  new best: length {length} (pass {pass})");
            }
            Event::OccupancySnapshot {
                pass: _,
                busy_cells,
                holes,
                used_pes,
                length,
            } => {
                let _ = writeln!(
                    out,
                    "  occupancy: {busy_cells} busy cells, {holes} holes, {used_pes} PEs used, length {length}"
                );
            }
            Event::CompactEnd {
                initial,
                best,
                passes,
            } => {
                let _ = writeln!(
                    out,
                    "compaction done: {initial} -> {best} after {passes} pass(es)"
                );
            }
            Event::EdgeTraffic { src_pe, dst_pe, .. } => {
                let (edges, crossing, cost) = traffic.get_or_insert((0, 0, 0));
                *edges += 1;
                if src_pe != dst_pe {
                    *crossing += 1;
                }
                *cost = cost.saturating_add(te.event.traffic_cost());
            }
            Event::PeLoad { pe, tasks, busy } => {
                let _ = writeln!(out, "  PE{}: {tasks} task(s), {busy} busy cell(s)", pe + 1);
            }
        }
    }
    if let Some((edges, crossing, cost)) = traffic.take() {
        let _ = writeln!(
            out,
            "  traffic: {edges} edge(s), {crossing} crossing, comm cost {cost}"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::RunnerUp;

    fn timed(events: Vec<Event>) -> Vec<TimedEvent> {
        events
            .into_iter()
            .map(|event| TimedEvent { ns: 0, event })
            .collect()
    }

    #[test]
    fn narrates_placement_with_runner_up_and_rejections() {
        let events = timed(vec![
            Event::PassBegin {
                pass: 1,
                prev_len: 6,
                rows: 1,
            },
            Event::Rotate { nodes: vec![0] },
            Event::Candidate {
                node: 0,
                target: 6,
                pe: 0,
                lb: 2,
                ub: 1,
                comm: 0,
                verdict: Verdict::Infeasible,
            },
            Event::Candidate {
                node: 0,
                target: 6,
                pe: 1,
                lb: 0,
                ub: 5,
                comm: 2,
                verdict: Verdict::Leading { cs: 3, impact: 6 },
            },
            Event::Placed {
                node: 0,
                pe: 1,
                cs: 3,
                duration: 1,
                target: 6,
                impact: 6,
                comm: 2,
                runner_up: Some(RunnerUp {
                    pe: 2,
                    cs: 4,
                    impact: 6,
                    comm: 3,
                }),
            },
            Event::PassEnd {
                pass: 1,
                accepted: true,
                length: 5,
            },
        ]);
        let text = explain(&events, |n| format!("n{n}"));
        assert!(text.contains("rotated J = {n0}"), "{text}");
        assert!(text.contains("n0 -> PE2 @ cs 3"), "{text}");
        assert!(text.contains("runner-up: PE3 @ cs 4"), "{text}");
        assert!(text.contains("PE1: rejected — AN bounds cross"), "{text}");
        assert!(text.contains("pass 1 accepted: length 5"), "{text}");
    }

    #[test]
    fn no_slot_keeps_rejection_detail() {
        let events = timed(vec![
            Event::Candidate {
                node: 4,
                target: 5,
                pe: 0,
                lb: 0,
                ub: 4,
                comm: 1,
                verdict: Verdict::NoFreeSlot,
            },
            Event::NoSlot { node: 4, target: 5 },
        ]);
        let text = explain(&events, |n| format!("n{n}"));
        assert!(text.contains("no slot at target 5"), "{text}");
        assert!(text.contains("PE1: rejected — no free slot"), "{text}");
    }

    #[test]
    fn empty_stream_renders_empty() {
        assert!(explain(&[], |n| format!("n{n}")).is_empty());
    }

    #[test]
    fn annotations_splice_under_accepted_passes_only() {
        let events = timed(vec![
            Event::PassEnd {
                pass: 1,
                accepted: true,
                length: 6,
            },
            Event::PassEnd {
                pass: 2,
                accepted: false,
                length: 6,
            },
            Event::PassEnd {
                pass: 3,
                accepted: true,
                length: 5,
            },
        ]);
        let mut asked = Vec::new();
        let text = explain_with(
            &events,
            |n| format!("n{n}"),
            |pass| {
                asked.push(pass);
                (pass == 3).then(|| "  ledger diff: e0 moved\n".to_string())
            },
        );
        assert_eq!(asked, vec![1, 3], "reverted passes are never annotated");
        assert!(
            text.contains("pass 3 accepted: length 5\n  ledger diff: e0 moved\n"),
            "{text}"
        );
        assert!(
            !text.contains("pass 1 accepted: length 6\n  ledger"),
            "{text}"
        );
    }

    #[test]
    fn traffic_snapshots_summarize_and_pe_loads_render() {
        let events = timed(vec![
            Event::EdgeTraffic {
                edge: 0,
                src: 0,
                dst: 1,
                src_pe: 0,
                dst_pe: 1,
                hops: 2,
                volume: 3,
            },
            Event::EdgeTraffic {
                edge: 1,
                src: 1,
                dst: 2,
                src_pe: 1,
                dst_pe: 1,
                hops: 0,
                volume: 4,
            },
            Event::PeLoad {
                pe: 0,
                tasks: 2,
                busy: 3,
            },
            Event::CompactEnd {
                initial: 7,
                best: 5,
                passes: 2,
            },
        ]);
        let text = explain(&events, |n| format!("n{n}"));
        assert!(
            text.contains("traffic: 2 edge(s), 1 crossing, comm cost 6"),
            "{text}"
        );
        assert!(text.contains("PE1: 2 task(s), 3 busy cell(s)"), "{text}");
    }
}

//! # ccs-trace
//!
//! Zero-overhead structured tracing for the cyclo-compaction pipeline.
//!
//! The scheduler layers in `ccs-core` are instrumented against the
//! [`Probe`] trait.  Two implementations exist:
//!
//! * [`Off`] — `ACTIVE = false`; every `if P::ACTIVE { probe.emit(..) }`
//!   site is dead code after monomorphization, so the uninstrumented
//!   schedule path compiles to exactly the code it was before tracing
//!   existed (same discipline as the `ccs-core` invariant oracle:
//!   free when off, observable when on);
//! * [`Tls`] — `ACTIVE = true`; events are forwarded to the sink
//!   installed in the current thread via [`install`] / [`with_sink`] /
//!   [`record`].
//!
//! Public entry points in `ccs-core` dispatch once per call on
//! [`installed`], so the disabled hot path pays a single thread-local
//! read per pass — nothing per node, per PE, or per edge.
//!
//! Consumers of the event stream:
//!
//! * [`chrome`] — Chrome-trace/Perfetto JSON exporter
//!   (`cyclosched schedule --trace out.json`);
//! * [`explain`] — human-readable decision narrative
//!   (`cyclosched schedule --explain`);
//! * [`metrics`] — counters + histograms registry serialized into the
//!   `bench_hotpath` report;
//! * [`sample`] — bounded, deterministic event sampling for long
//!   sweeps (`O(cap)` memory regardless of run length);
//! * the `ccs-profile` crate — folds the per-edge traffic attribution
//!   events (`traffic.edge` / `traffic.pe`) into a `CommProfile`
//!   (`cyclosched schedule --profile out.json [--heatmap]`).
//!
//! Sinks are **thread-local or explicitly threaded**: install one in
//! the thread that runs the scheduler, or pass a sink through
//! [`with_sink`].  Parallel sweep drivers stay untraced unless each
//! worker installs its own sink.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chrome;
pub mod event;
pub mod explain;
pub mod metrics;
pub mod sample;

pub use event::{Event, RunnerUp, Verdict};

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

/// Receives structured events.  Implementations decide what (if
/// anything) to keep: record, aggregate, stream, or drop.
pub trait Sink {
    /// Called once per emitted event, in emission order.
    fn event(&mut self, ev: Event);
}

thread_local! {
    static SINK: RefCell<Option<Box<dyn Sink>>> = const { RefCell::new(None) };
}

/// `true` when a sink is installed in the current thread.
///
/// Instrumented entry points call this once to choose between the
/// [`Off`] and [`Tls`] probes; when it returns `false` the scheduler
/// runs the exact uninstrumented code path.
#[inline]
pub fn installed() -> bool {
    SINK.with(|s| s.borrow().is_some())
}

/// Forwards one event to the installed sink, if any.
pub fn emit(ev: Event) {
    SINK.with(|s| {
        if let Some(sink) = s.borrow_mut().as_mut() {
            sink.event(ev);
        }
    });
}

/// Uninstalls the sink installed by [`install`] when dropped,
/// restoring whatever was installed before (sinks nest).
pub struct Guard {
    prev: Option<Box<dyn Sink>>,
    done: bool,
}

impl Drop for Guard {
    fn drop(&mut self) {
        if !self.done {
            self.done = true;
            let prev = self.prev.take();
            SINK.with(|s| *s.borrow_mut() = prev);
        }
    }
}

/// Installs `sink` as the current thread's event sink until the
/// returned [`Guard`] drops.  Nested installs restore the outer sink.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub fn install(sink: Box<dyn Sink>) -> Guard {
    let prev = SINK.with(|s| s.borrow_mut().replace(sink));
    Guard { prev, done: false }
}

/// Shared handle making a concrete sink recoverable after
/// [`with_sink`] (the thread-local slot needs `'static` ownership).
struct Shared<S>(Rc<RefCell<S>>);

impl<S: Sink> Sink for Shared<S> {
    fn event(&mut self, ev: Event) {
        self.0.borrow_mut().event(ev);
    }
}

/// Runs `f` with `sink` installed in the current thread, then returns
/// `f`'s output together with the sink (carrying whatever it
/// collected).
///
/// This is the explicitly-threaded entry point: no global state
/// outlives the call.
pub fn with_sink<S: Sink + 'static, T>(sink: S, f: impl FnOnce() -> T) -> (T, S) {
    let cell = Rc::new(RefCell::new(sink));
    let guard = install(Box::new(Shared(Rc::clone(&cell))));
    let out = f();
    drop(guard);
    let sink = match Rc::try_unwrap(cell) {
        Ok(cell) => cell.into_inner(),
        // INVARIANT: the only clone went into the guard, which was
        // dropped (uninstalling the shared sink) just above.
        Err(_) => unreachable!("sink handle still shared after uninstall"),
    };
    (out, sink)
}

/// One recorded event with the nanoseconds elapsed since the
/// recorder's creation.  The timestamp lives in the *recording*, not
/// the event: events themselves stay deterministic.
#[derive(Clone, Debug)]
pub struct TimedEvent {
    /// Nanoseconds since the recorder was created.
    pub ns: u64,
    /// The event.
    pub event: Event,
}

/// A sink that records every event with a monotonic timestamp.
pub struct Recorder {
    t0: Instant,
    /// The recorded stream, in emission order.
    pub events: Vec<TimedEvent>,
}

impl Recorder {
    /// An empty recorder; timestamps count from now.
    pub fn new() -> Self {
        Recorder {
            // CLOCK: the Recorder is a sanctioned sink — timestamps
            // order events for replay and never reach fingerprints.
            t0: Instant::now(),
            events: Vec::new(),
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl Sink for Recorder {
    fn event(&mut self, ev: Event) {
        let ns = u64::try_from(self.t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.events.push(TimedEvent { ns, event: ev });
    }
}

/// Records every event emitted while `f` runs, returning `f`'s output
/// and the timed event stream.
pub fn record<T>(f: impl FnOnce() -> T) -> (T, Vec<TimedEvent>) {
    let (out, rec) = with_sink(Recorder::new(), f);
    (out, rec.events)
}

/// Records two runs back to back, each under its own fresh [`Recorder`]
/// — the dual-capture entry point of the multi-run diff report.
///
/// The first closure runs to completion (its recorder uninstalled)
/// before the second starts, so the two streams can never interleave
/// and each stays exactly what a standalone [`record`] would have
/// captured.  Timestamps restart from zero for each run; the events
/// themselves are deterministic either way.
pub fn record_pair<A, B>(
    f: impl FnOnce() -> A,
    g: impl FnOnce() -> B,
) -> ((A, Vec<TimedEvent>), (B, Vec<TimedEvent>)) {
    (record(f), record(g))
}

/// Compile-time-selectable emission point.  Instrumented code writes
///
/// ```ignore
/// if P::ACTIVE {
///     probe.emit(Event::Placed { .. });
/// }
/// ```
///
/// and the branch (including the event construction) vanishes entirely
/// for [`Off`].
pub trait Probe {
    /// `false` for the no-op probe; gate all instrumentation (event
    /// construction *and* any bookkeeping feeding it) on this constant.
    const ACTIVE: bool;
    /// Delivers one event.
    fn emit(&mut self, ev: Event);
}

/// The no-op probe: instrumentation compiles away.
pub struct Off;

impl Probe for Off {
    const ACTIVE: bool = false;
    #[inline(always)]
    fn emit(&mut self, _ev: Event) {}
}

/// The forwarding probe: events go to the thread-local sink.
pub struct Tls;

impl Probe for Tls {
    const ACTIVE: bool = true;
    fn emit(&mut self, ev: Event) {
        emit(ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_sink_means_not_installed_and_emit_is_dropped() {
        assert!(!installed());
        emit(Event::StartupEnd { length: 1 }); // must not panic
        assert!(!installed());
    }

    #[test]
    fn record_collects_in_order() {
        let (val, events) = record(|| {
            emit(Event::StartupBegin { tasks: 2, pes: 1 });
            emit(Event::StartupEnd { length: 3 });
            42
        });
        assert_eq!(val, 42);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].event, Event::StartupBegin { tasks: 2, pes: 1 });
        assert_eq!(events[1].event, Event::StartupEnd { length: 3 });
        assert!(events[0].ns <= events[1].ns);
        assert!(!installed(), "sink must be uninstalled after record");
    }

    #[test]
    fn installs_nest_and_restore() {
        let (_, outer) = with_sink(Recorder::new(), || {
            emit(Event::StartupEnd { length: 1 });
            let (_, inner) = with_sink(Recorder::new(), || {
                emit(Event::StartupEnd { length: 2 });
            });
            assert_eq!(inner.events.len(), 1);
            // Outer sink is re-installed after the inner guard drops.
            emit(Event::StartupEnd { length: 3 });
        });
        let lengths: Vec<u32> = outer
            .events
            .iter()
            .map(|t| match t.event {
                Event::StartupEnd { length } => length,
                _ => panic!("unexpected event"),
            })
            .collect();
        assert_eq!(lengths, vec![1, 3]);
    }

    #[test]
    fn record_pair_keeps_the_streams_separate() {
        let ((a, ev_a), (b, ev_b)) = record_pair(
            || {
                emit(Event::StartupEnd { length: 1 });
                "a"
            },
            || {
                emit(Event::StartupEnd { length: 2 });
                emit(Event::CompactEnd {
                    initial: 2,
                    best: 2,
                    passes: 0,
                });
                "b"
            },
        );
        assert_eq!((a, b), ("a", "b"));
        assert_eq!(ev_a.len(), 1);
        assert_eq!(ev_a[0].event, Event::StartupEnd { length: 1 });
        assert_eq!(ev_b.len(), 2);
        assert_eq!(ev_b[0].event, Event::StartupEnd { length: 2 });
        assert!(!installed(), "both recorders uninstalled afterwards");
    }

    #[test]
    fn off_probe_is_inert() {
        let mut p = Off;
        const { assert!(!Off::ACTIVE) };
        p.emit(Event::StartupEnd { length: 9 }); // no-op
    }

    #[test]
    fn tls_probe_forwards() {
        let ((), rec) = with_sink(Recorder::new(), || {
            let mut p = Tls;
            const { assert!(Tls::ACTIVE) };
            p.emit(Event::StartupEnd { length: 7 });
        });
        assert_eq!(rec.events.len(), 1);
    }
}

//! Bounded, deterministic sampling sink for long sweeps.
//!
//! A full [`Recorder`](crate::Recorder) keeps every event — fine for a
//! single schedule, unbounded for a sweep over thousands of cells.
//! [`SampleSink`] keeps every `stride`-th event up to a hard `cap`, so
//! its memory is `O(cap)` no matter how long the run is, and the kept
//! subset is a pure function of the event stream (no randomness, no
//! clocks): the same run keeps the same events at any thread count.
//!
//! Long `run_many` sweeps that want an event-level sample (rather than
//! the counter folds of [`MetricsSink`](crate::metrics::MetricsSink))
//! install one of these per cell.

use crate::event::Event;
use crate::Sink;

/// Keeps every `stride`-th event, up to `cap` events, dropping the
/// rest.  Deterministic and bounded.
pub struct SampleSink {
    stride: u64,
    cap: usize,
    /// Total events seen (kept + dropped).
    pub seen: u64,
    /// The kept sample, in emission order.
    pub kept: Vec<Event>,
}

impl SampleSink {
    /// A sink keeping events `0, stride, 2·stride, …` until `cap`
    /// events are held.  A `stride` of 0 is treated as 1 (keep all, up
    /// to `cap`).
    pub fn new(stride: u64, cap: usize) -> Self {
        SampleSink {
            stride: stride.max(1),
            cap,
            seen: 0,
            kept: Vec::new(),
        }
    }

    /// `true` when the cap has been reached (later events are counted
    /// but no longer kept).
    pub fn saturated(&self) -> bool {
        self.kept.len() >= self.cap
    }

    /// Consumes the sink, returning `(seen, kept)`.
    pub fn into_parts(self) -> (u64, Vec<Event>) {
        (self.seen, self.kept)
    }
}

impl Sink for SampleSink {
    fn event(&mut self, ev: Event) {
        let ix = self.seen;
        self.seen += 1;
        if ix.is_multiple_of(self.stride) && self.kept.len() < self.cap {
            self.kept.push(ev);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u32) -> Event {
        Event::StartupEnd { length: n }
    }

    fn lengths(kept: &[Event]) -> Vec<u32> {
        kept.iter()
            .map(|e| match e {
                Event::StartupEnd { length } => *length,
                _ => panic!("unexpected event"),
            })
            .collect()
    }

    #[test]
    fn keeps_every_stride_th_event() {
        let mut s = SampleSink::new(3, 100);
        for n in 0..10 {
            s.event(ev(n));
        }
        assert_eq!(s.seen, 10);
        assert_eq!(lengths(&s.kept), vec![0, 3, 6, 9]);
    }

    #[test]
    fn cap_bounds_memory() {
        let mut s = SampleSink::new(1, 4);
        for n in 0..1000 {
            s.event(ev(n));
        }
        assert_eq!(s.seen, 1000);
        assert_eq!(lengths(&s.kept), vec![0, 1, 2, 3]);
        assert!(s.saturated());
    }

    #[test]
    fn zero_stride_means_keep_all() {
        let mut s = SampleSink::new(0, 10);
        for n in 0..3 {
            s.event(ev(n));
        }
        assert_eq!(lengths(&s.kept), vec![0, 1, 2]);
        assert!(!s.saturated());
    }

    #[test]
    fn deterministic_for_same_stream() {
        let run = || {
            let mut s = SampleSink::new(2, 5);
            for n in 0..20 {
                s.event(ev(n));
            }
            s.into_parts()
        };
        assert_eq!(run(), run());
    }
}

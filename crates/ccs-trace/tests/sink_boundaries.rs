//! Boundary-condition coverage for [`ccs_trace::sample::SampleSink`]
//! (stride/cap edges) and for nested [`Recorder`] installation —
//! behaviors previously exercised only incidentally by the sweep
//! drivers.

use ccs_trace::sample::SampleSink;
use ccs_trace::{emit, install, installed, record, Event, Recorder, Sink as _};

fn ev(n: u32) -> Event {
    Event::StartupEnd { length: n }
}

fn lengths(kept: &[Event]) -> Vec<u32> {
    kept.iter()
        .map(|e| match e {
            Event::StartupEnd { length } => *length,
            other => panic!("unexpected event {other:?}"),
        })
        .collect()
}

#[test]
fn stride_one_keeps_everything_until_cap() {
    let mut s = SampleSink::new(1, 3);
    for n in 0..5 {
        s.event(ev(n));
    }
    assert_eq!(s.seen, 5, "dropped events are still counted");
    assert_eq!(lengths(&s.kept), vec![0, 1, 2]);
    assert!(s.saturated());
}

#[test]
fn cap_zero_keeps_nothing_but_counts() {
    let mut s = SampleSink::new(1, 0);
    assert!(s.saturated(), "a zero cap is saturated from the start");
    for n in 0..7 {
        s.event(ev(n));
    }
    let (seen, kept) = s.into_parts();
    assert_eq!(seen, 7);
    assert!(kept.is_empty());
}

#[test]
fn cap_hit_mid_stride_counts_the_tail() {
    // stride 3, cap 2: events 0 and 3 are kept; 6 and 9 match the
    // stride but arrive after saturation and must be dropped while the
    // `seen` counter keeps advancing through non-multiples too.
    let mut s = SampleSink::new(3, 2);
    for n in 0..11 {
        assert_eq!(s.saturated(), n >= 4, "saturates when event 3 lands");
        s.event(ev(n));
    }
    assert_eq!(s.seen, 11);
    assert_eq!(lengths(&s.kept), vec![0, 3]);
    assert!(s.saturated());
}

#[test]
fn saturation_is_by_kept_count_not_by_seen() {
    let mut s = SampleSink::new(5, 2);
    for n in 0..5 {
        s.event(ev(n));
    }
    // Five events seen but only event 0 kept: not saturated yet.
    assert_eq!(s.seen, 5);
    assert_eq!(s.kept.len(), 1);
    assert!(!s.saturated());
}

#[test]
fn nested_recorders_partition_the_stream() {
    let (_, outer) = record(|| {
        emit(ev(1));
        let (_, inner) = record(|| {
            assert!(installed());
            emit(ev(2));
            emit(ev(3));
        });
        assert_eq!(
            inner.len(),
            2,
            "inner recorder owns the events emitted under it"
        );
        // The outer recorder is restored once the inner one unwinds.
        emit(ev(4));
    });
    let seen: Vec<u32> = outer
        .iter()
        .map(|t| match t.event {
            Event::StartupEnd { length } => length,
            ref other => panic!("unexpected event {other:?}"),
        })
        .collect();
    assert_eq!(seen, vec![1, 4], "outer stream never sees inner events");
    assert!(!installed(), "everything uninstalled at the end");
}

#[test]
fn explicit_guard_installs_nest_and_restore_in_order() {
    assert!(!installed());
    let outer_guard = install(Box::new(Recorder::new()));
    assert!(installed());
    {
        let inner_guard = install(Box::new(Recorder::new()));
        assert!(installed(), "inner install shadows the outer sink");
        drop(inner_guard);
        assert!(installed(), "outer sink restored after inner guard drops");
    }
    drop(outer_guard);
    assert!(!installed(), "no sink left after the outermost guard drops");
}

#[test]
fn sample_sink_under_record_composes_with_nesting() {
    // A SampleSink installed inside a Recorder sees only its own
    // scope's events, at its own stride.
    let ((), events) = record(|| {
        emit(ev(0));
        let ((), sample) = ccs_trace::with_sink(SampleSink::new(2, 10), || {
            for n in 10..15 {
                emit(ev(n));
            }
        });
        assert_eq!(sample.seen, 5);
        assert_eq!(lengths(&sample.kept), vec![10, 12, 14]);
        emit(ev(1));
    });
    assert_eq!(events.len(), 2, "sampled events never leak to the recorder");
}

//! Machine-readable output for `cargo xtask lint --json`.
//!
//! The schema is deliberately tiny and versioned:
//!
//! ```json
//! {
//!   "version": 1,
//!   "files_scanned": 123,
//!   "rules": [{"id": "...", "escape": "..." | null, "summary": "..."}],
//!   "findings": [{"file": "...", "line": 7, "rule": "...", "message": "..."}]
//! }
//! ```
//!
//! Emission is hand-rolled (the crate stays dependency-free); the
//! serde_json round-trip lives in the test suite, where dev-deps are
//! allowed.

use crate::{Report, RULES};

/// Serializes a [`Report`] to the versioned JSON schema.  Output is
/// deterministic: findings arrive pre-sorted and rules are emitted in
/// catalogue order.
pub fn emit(report: &Report) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n  \"version\": 1,\n  \"files_scanned\": ");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\n  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        out.push_str("    {\"id\": ");
        push_str_lit(&mut out, r.id);
        out.push_str(", \"escape\": ");
        match r.escape {
            Some(tag) => push_str_lit(&mut out, tag),
            None => out.push_str("null"),
        }
        out.push_str(", \"summary\": ");
        push_str_lit(&mut out, r.summary);
        out.push('}');
        if i + 1 < RULES.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ],\n  \"findings\": [\n");
    for (i, f) in report.findings.iter().enumerate() {
        out.push_str("    {\"file\": ");
        push_str_lit(&mut out, &f.file);
        out.push_str(", \"line\": ");
        out.push_str(&f.line.to_string());
        out.push_str(", \"rule\": ");
        push_str_lit(&mut out, f.rule);
        out.push_str(", \"message\": ");
        push_str_lit(&mut out, &f.message);
        out.push('}');
        if i + 1 < report.findings.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

/// Appends `s` as a JSON string literal, escaping per RFC 8259.
fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Finding, Report};

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd\te\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn emits_rules_and_findings() {
        let report = Report {
            files_scanned: 2,
            findings: vec![Finding {
                file: "crates/x/src/lib.rs".to_string(),
                line: 3,
                rule: crate::rules::RULE_PRINT,
                message: "said \"hi\"".to_string(),
            }],
        };
        let json = emit(&report);
        assert!(json.contains("\"version\": 1"));
        assert!(json.contains("\"files_scanned\": 2"));
        assert!(json.contains("\"rule\": \"no-println-in-libs\""));
        assert!(json.contains("\\\"hi\\\""));
        // Every catalogue rule is listed.
        for r in RULES {
            assert!(json.contains(r.id));
        }
    }

    #[test]
    fn empty_findings_is_an_empty_array() {
        let report = Report {
            files_scanned: 0,
            findings: Vec::new(),
        };
        let json = emit(&report);
        assert!(json.contains("\"findings\": [\n  ]"));
    }
}

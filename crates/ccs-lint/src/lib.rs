//! Token-stream static analysis for the workspace.
//!
//! The crate has three layers:
//!
//! 1. [`lexer`] — a std-only Rust lexer producing a complete tiling of
//!    classified byte spans (code, comments, strings, …).  It handles
//!    the constructs that defeat line heuristics: raw strings at any
//!    hash depth, nested block comments, char-literal vs. lifetime
//!    disambiguation, byte/C-string prefixes, raw identifiers.
//! 2. [`view`] — per-file views derived from the token stream: three
//!    parallel line grids (code / comment / string text, column-
//!    aligned with the original) plus token-level structural masks
//!    (`#[cfg(test)]` items, named `fn` bodies, probe guards).
//! 3. [`rules`] and [`drift`] — the rule catalogue.  Per-file rules
//!    enforce the repo's determinism and hygiene contracts; drift
//!    passes parse declarations and cross-check producer and consumer
//!    layers of the pipeline (trace events vs. folds, diagnostic codes
//!    vs. the DESIGN.md catalogue, BENCH sections vs. the trajectory
//!    gate).
//!
//! The driver is `cargo xtask lint` (human output) and
//! `cargo xtask lint --json` (machine output via [`json::emit`], used
//! by CI to archive findings).  Every rule has a stable id and, where
//! a site can be legitimate, a named justification escape that must
//! appear **in a comment** (the lexer guarantees a tag inside a string
//! literal does not count).
//!
//! The crate deliberately has no dependencies and never panics on
//! malformed input: lint tooling that fails open (or crashes on the
//! code it should flag) is worse than none.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod drift;
pub mod json;
pub mod lexer;
pub mod rules;
pub mod view;

use std::fmt;
use std::path::{Path, PathBuf};

/// How many lines above a flagged site a justification comment may
/// live (inclusive), in addition to the site's own line.
pub const JUSTIFICATION_WINDOW: usize = 4;

/// One lint finding, anchored to a file and 1-based line (line 0 means
/// the finding is about the file as a whole).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path with `/` separators.
    pub file: String,
    /// 1-based line number; 0 for whole-file findings.
    pub line: usize,
    /// Stable rule id (one of the [`RULES`] ids).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Catalogue metadata for one rule: its stable id, the justification
/// escape accepted in comments (if any), and a one-line summary.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable rule id, as it appears in findings.
    pub id: &'static str,
    /// The comment tag that waives a site, if the rule has one.
    pub escape: Option<&'static str>,
    /// One-line summary of what the rule enforces.
    pub summary: &'static str,
}

/// Every rule the engine can report, in catalogue order.  The JSON
/// emitter publishes this table so downstream tooling can map ids to
/// escapes without parsing DESIGN.md.
pub const RULES: [RuleInfo; 14] = [
    RuleInfo {
        id: rules::RULE_UNWRAP,
        escape: Some("INVARIANT:"),
        summary: "no unchecked .unwrap()/.expect( in scheduler library code",
    },
    RuleInfo {
        id: rules::RULE_CAST,
        escape: None,
        summary: "no truncating `as` casts in the remap hot path",
    },
    RuleInfo {
        id: rules::RULE_HEADER,
        escape: None,
        summary: "crate roots declare #![warn(missing_docs)] and #![forbid(unsafe_code)]",
    },
    RuleInfo {
        id: rules::RULE_PRINT,
        escape: None,
        summary: "no stdio print macros in library code",
    },
    RuleInfo {
        id: rules::RULE_PROBE,
        escape: None,
        summary: "probe.emit( sites sit inside an `if P::ACTIVE` guard",
    },
    RuleInfo {
        id: rules::RULE_HOT_ASSERT,
        escape: None,
        summary: "no panicking assert macros inside hot-path functions",
    },
    RuleInfo {
        id: rules::RULE_UNORDERED,
        escape: Some("ORDERED:"),
        summary: "no HashMap/HashSet in library code (iteration order leaks)",
    },
    RuleInfo {
        id: rules::RULE_ESCAPED,
        escape: Some("ESCAPED:"),
        summary: "HTML/SVG interpolation routes through the esc( helper",
    },
    RuleInfo {
        id: rules::RULE_CLOCK,
        escape: Some("CLOCK:"),
        summary: "no Instant::now/SystemTime::now in library code",
    },
    RuleInfo {
        id: rules::RULE_ENV,
        escape: Some("ENV:"),
        summary: "no environment reads in library code",
    },
    RuleInfo {
        id: rules::RULE_IDENTITY,
        escape: Some("IDENTITY:"),
        summary: "no process/thread/host identity reads in library code",
    },
    RuleInfo {
        id: drift::RULE_EVENT,
        escape: Some("EVENT-IGNORED:"),
        summary: "every trace Event variant is handled or waived by each fold",
    },
    RuleInfo {
        id: drift::RULE_DIAG,
        escape: None,
        summary: "every CCS diagnostic code appears in the DESIGN.md catalogue",
    },
    RuleInfo {
        id: drift::RULE_BENCH,
        escape: None,
        summary: "every BENCH section has a gated/ungated decision in report_diff",
    },
];

/// The result of linting a workspace: what was scanned and what was
/// found, findings sorted by `(file, line, rule)` for stable output.
#[derive(Debug)]
pub struct Report {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, sorted.
    pub findings: Vec<Finding>,
}

/// Lints in-memory sources: runs the per-file rules over every file
/// and the drift passes over the set.  `files` holds repo-relative
/// paths (with `/` separators) and contents; `design_md` is the text
/// of `DESIGN.md` for the diagnostic-catalogue pass.
///
/// Pure function — the workspace walk lives in [`run`], so tests can
/// feed fixture trees.
pub fn lint_files(files: &[(String, String)], design_md: &str) -> Report {
    let mut findings = Vec::new();
    for (rel, text) in files {
        findings.extend(rules::lint_source(rel, text));
    }
    findings.extend(drift::drift_passes(files, design_md));
    findings.sort();
    Report {
        files_scanned: files.len(),
        findings,
    }
}

/// Collects every `.rs` file under `root`'s `crates/` and `src/`
/// trees (skipping `target/` and dot-directories), reads them and
/// `DESIGN.md`, and returns the lint [`Report`].
pub fn run(root: &Path) -> std::io::Result<Report> {
    let files = workspace_sources(root)?;
    let design_md = std::fs::read_to_string(root.join("DESIGN.md")).unwrap_or_default();
    Ok(lint_files(&files, &design_md))
}

/// Reads every `.rs` file the lint scans, as sorted
/// `(repo-relative path, contents)` pairs — the exact corpus
/// [`run`] lints, exposed so tests (round-trip, parity) can walk the
/// same set.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<(String, String)>> {
    let mut paths: Vec<PathBuf> = Vec::new();
    collect_rs(&root.join("crates"), &mut paths)?;
    // The root crate's library sources fall under the rules too.
    collect_rs(&root.join("src"), &mut paths)?;
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push((rel, std::fs::read_to_string(path)?));
    }
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_ids_are_unique() {
        let mut ids: Vec<&str> = RULES.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), RULES.len());
    }

    #[test]
    fn finding_display_matches_the_legacy_format() {
        let f = Finding {
            file: "crates/x/src/lib.rs".to_string(),
            line: 7,
            rule: rules::RULE_PRINT,
            message: "boom".to_string(),
        };
        assert_eq!(
            f.to_string(),
            "crates/x/src/lib.rs:7: [no-println-in-libs] boom"
        );
    }

    #[test]
    fn lint_files_sorts_and_counts() {
        let files = vec![
            (
                "crates/ccs-core/src/b.rs".to_string(),
                "fn f() { x.unwrap(); }\n".to_string(),
            ),
            (
                "crates/ccs-core/src/a.rs".to_string(),
                "fn f() { y.unwrap(); }\n".to_string(),
            ),
        ];
        let report = lint_files(&files, "");
        assert_eq!(report.files_scanned, 2);
        assert_eq!(report.findings.len(), 2);
        assert!(report.findings[0].file.ends_with("a.rs"));
        assert!(report.findings[1].file.ends_with("b.rs"));
    }
}

//! The per-file rule catalogue, evaluated over [`SourceFile`] views.
//!
//! Every rule searches the **code view** (comments and string-literal
//! contents blanked by the lexer), so `// .unwrap()` in a comment and
//! `".unwrap()"` in a string can never trip a rule — and `x.unwrap()`
//! after a `"https://..."` literal can never hide behind one.
//! Justification escapes (`INVARIANT:`, `ORDERED:`, `ESCAPED:`,
//! `CLOCK:`, `ENV:`, `IDENTITY:`) are searched in the **comment
//! view**, so a justification must really be a comment.
//!
//! See `DESIGN.md` §14 for the rule-by-rule catalogue with scopes and
//! escapes.

use crate::view::SourceFile;
use crate::{Finding, JUSTIFICATION_WINDOW};

/// Rule identifier for unchecked `.unwrap()` / `.expect(`.
pub const RULE_UNWRAP: &str = "no-unchecked-unwrap";
/// Rule identifier for truncating `as` casts in the remap hot path.
pub const RULE_CAST: &str = "no-truncating-cast";
/// Rule identifier for missing crate-root lint headers.
pub const RULE_HEADER: &str = "lib-header";
/// Rule identifier for stdio print macros in library code.
pub const RULE_PRINT: &str = "no-println-in-libs";
/// Rule identifier for unguarded `probe.emit(` sites in `ccs-core`.
pub const RULE_PROBE: &str = "probe-emit-guarded";
/// Rule identifier for panicking macros in hot-path functions.
pub const RULE_HOT_ASSERT: &str = "hot-path-no-assert";
/// Rule identifier for unordered hash containers in library code.
pub const RULE_UNORDERED: &str = "no-unordered-iteration";
/// Rule identifier for unescaped interpolation into HTML/SVG output.
pub const RULE_ESCAPED: &str = "escaped-html-output";
/// Rule identifier for wall-clock reads in library code.
pub const RULE_CLOCK: &str = "no-wall-clock-in-libs";
/// Rule identifier for environment reads in library code.
pub const RULE_ENV: &str = "no-env-read-in-libs";
/// Rule identifier for machine/run-identity reads in library code.
pub const RULE_IDENTITY: &str = "no-machine-identity-in-libs";

/// Sources whose string formatting lands in HTML/SVG artifacts and
/// falls under [`RULE_ESCAPED`]: the report crate (single-run, diff
/// and grid pages), the profile renderer, and the bench crate's grid
/// dashboard / trajectory sparkline module.
const HTML_OUTPUT_ROOTS: [&str; 3] = [
    "crates/ccs-report/src",
    "crates/ccs-profile/src/render.rs",
    "crates/ccs-bench/src/report.rs",
];

/// Containers whose iteration order is nondeterministic.
const UNORDERED_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// The innermost-loop functions that must stay panic-free in release
/// builds, as `(file, function)` pairs.
const HOT_PATH_FNS: [(&str, &str); 3] = [
    ("crates/ccs-core/src/remap.rs", "best_position"),
    ("crates/ccs-schedule/src/table.rs", "earliest_free"),
    ("crates/ccs-topology/src/machine.rs", "distance"),
];

/// Panicking macros banned inside hot-path functions.  Matched at a
/// token boundary, so `debug_assert!(` — whose release-build expansion
/// is empty — does not trip the `assert!(` pattern.
const PANIC_MACROS: [&str; 4] = ["assert!(", "assert_eq!(", "assert_ne!(", "panic!("];

/// The crate whose emission sites fall under [`RULE_PROBE`].
const PROBE_ROOT: &str = "crates/ccs-core/src";

/// Print macros banned in library code, longest pattern first so the
/// reported name is exact (`eprintln!(` contains `println!(`).
const PRINT_MACROS: [&str; 4] = ["eprintln!(", "println!(", "eprint!(", "print!("];

/// Crates whose non-test code falls under [`RULE_UNWRAP`].
const PANIC_HYGIENE_ROOTS: [&str; 2] = ["crates/ccs-core/src", "crates/ccs-schedule/src"];

/// The one file under [`RULE_CAST`].
const CAST_FILE: &str = "crates/ccs-core/src/remap.rs";

/// Truncating integer casts (widening casts and `as usize`/`as u64`
/// on u32 sources are fine; these can silently drop bits).
const TRUNCATING_CASTS: [&str; 6] = [
    " as u8", " as u16", " as u32", " as i8", " as i16", " as i32",
];

/// Wall-clock constructors banned in library code: both produce
/// machine-dependent quantities that must never reach deterministic,
/// fingerprinted output.  The sanctioned sites (`ccs-trace`'s
/// `Recorder` / `MetricsSink` timestamps and `PassRecord::wall_ms`)
/// carry a `// CLOCK:` justification.
const CLOCK_CALLS: [&str; 2] = ["Instant::now", "SystemTime::now"];

/// Environment reads banned in library code (matched after `env::`):
/// configuration belongs in binaries and CLI flags, not in code whose
/// output is fingerprinted or golden-pinned.
const ENV_READS: [&str; 6] = ["var", "vars", "var_os", "vars_os", "args", "args_os"];

/// Machine/run-identity sources banned in library code: each leaks a
/// value that differs between runs or hosts into code whose output
/// must be byte-stable.
const IDENTITY_CALLS: [&str; 3] = ["process::id", "thread::current", "available_parallelism"];

/// Lints one source file given its repo-relative path (with `/`
/// separators) and contents.  Pure function — unit-testable on
/// fixture strings.
pub fn lint_source(rel: &str, text: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    if rel.ends_with("/src/lib.rs") && !rel.starts_with("vendor/") {
        lint_lib_header(rel, text, &mut out);
    }
    let hygiene = PANIC_HYGIENE_ROOTS.iter().any(|p| rel.starts_with(p));
    let cast = rel == CAST_FILE;
    let library = library_code(rel);
    let probe = rel.starts_with(PROBE_ROOT);
    let html_out = HTML_OUTPUT_ROOTS.iter().any(|p| rel.starts_with(p));
    let hot_fns: Vec<&str> = HOT_PATH_FNS
        .iter()
        .filter(|(file, _)| *file == rel)
        .map(|&(_, name)| name)
        .collect();
    if !hygiene && !cast && !library && !probe && !html_out && hot_fns.is_empty() {
        return out;
    }

    let sf = SourceFile::new(rel, text);
    let guard_mask = if probe {
        sf.active_guard_mask(text)
    } else {
        Vec::new()
    };
    let hot_mask = sf.fn_body_mask(text, &hot_fns);

    for i in 0..sf.num_lines() {
        if sf.test_mask[i] {
            continue;
        }
        let code: &str = &sf.code_lines[i];
        if probe && code.contains("probe.emit(") && !guard_mask[i] {
            out.push(finding(
                rel,
                i + 1,
                RULE_PROBE,
                "`probe.emit(..)` outside an `if P::ACTIVE` guard; wrap the \
                 emission (and its argument construction) so the `Off` probe \
                 compiles the site away"
                    .to_string(),
            ));
        }
        if hygiene {
            if let Some(call) = unchecked_call(code) {
                if !justified(&sf, i, "INVARIANT:") {
                    out.push(finding(
                        rel,
                        i + 1,
                        RULE_UNWRAP,
                        format!(
                            "`{call}` in non-test scheduler code without an \
                             `// INVARIANT:` justification; return a typed error \
                             or document why the panic is unreachable"
                        ),
                    ));
                }
            }
        }
        if library {
            if let Some(mac) = PRINT_MACROS.iter().find(|pat| code.contains(*pat)) {
                out.push(finding(
                    rel,
                    i + 1,
                    RULE_PRINT,
                    format!(
                        "`{}` in library code; report through return values, \
                         the ccs-trace event stream, or a `Display` impl instead",
                        mac.trim_end_matches('(')
                    ),
                ));
            }
            if !code.trim_start().starts_with("use ") {
                if let Some(ty) = UNORDERED_TYPES.iter().find(|t| contains_type(code, t)) {
                    if !justified(&sf, i, "ORDERED:") {
                        out.push(finding(
                            rel,
                            i + 1,
                            RULE_UNORDERED,
                            format!(
                                "`{ty}` in library code: its iteration order is \
                                 nondeterministic and this codebase's output is \
                                 byte-stable — use `BTree{}` (or collect-and-sort), \
                                 or add an `// ORDERED:` comment explaining why the \
                                 order never escapes",
                                &ty[4..]
                            ),
                        ));
                    }
                }
            }
            if let Some(call) = CLOCK_CALLS.iter().find(|pat| code.contains(*pat)) {
                if !justified(&sf, i, "CLOCK:") {
                    out.push(finding(
                        rel,
                        i + 1,
                        RULE_CLOCK,
                        format!(
                            "`{call}` in library code: wall-clock values are \
                             machine-dependent and must never feed deterministic \
                             output — keep clocks in the sanctioned sinks \
                             (`Recorder`/`MetricsSink`/`wall_ms`) and justify \
                             the site with a `// CLOCK:` comment"
                        ),
                    ));
                }
            }
            if let Some(read) = env_read(code) {
                if !justified(&sf, i, "ENV:") {
                    out.push(finding(
                        rel,
                        i + 1,
                        RULE_ENV,
                        format!(
                            "`{read}` in library code: environment reads belong \
                             in binaries and CLI flags, not in code that feeds \
                             fingerprinted output — plumb the value through a \
                             config struct, or justify with a `// ENV:` comment"
                        ),
                    ));
                }
            }
            if let Some(call) = IDENTITY_CALLS.iter().find(|pat| code.contains(*pat)) {
                if !justified(&sf, i, "IDENTITY:") {
                    out.push(finding(
                        rel,
                        i + 1,
                        RULE_IDENTITY,
                        format!(
                            "`{call}` in library code: process/thread/host \
                             identity differs between runs and must never feed \
                             byte-stable output — hoist it to a binary, or \
                             justify with an `// IDENTITY:` comment"
                        ),
                    ));
                }
            }
        }
        if html_out && sf.string_lines[i].contains(">{") {
            let lo = i.saturating_sub(JUSTIFICATION_WINDOW);
            let hi = (i + JUSTIFICATION_WINDOW).min(sf.num_lines() - 1);
            let escaped = (lo..=hi).any(|j| {
                sf.code_lines[j].contains("esc(") || sf.comment_lines[j].contains("ESCAPED:")
            });
            if !escaped {
                out.push(finding(
                    rel,
                    i + 1,
                    RULE_ESCAPED,
                    "interpolation into HTML/SVG content position without the \
                     audited `esc(..)` helper nearby; route the value through \
                     `ccs_profile::render::esc` (or justify with `// ESCAPED:`)"
                        .to_string(),
                ));
            }
        }
        if hot_mask[i] {
            if let Some(mac) = PANIC_MACROS.iter().find(|pat| contains_token(code, pat)) {
                out.push(finding(
                    rel,
                    i + 1,
                    RULE_HOT_ASSERT,
                    format!(
                        "`{}` inside a hot-path function; release builds must stay \
                         branch-free here — use `debug_assert!` or hoist the check \
                         to construction time",
                        mac.trim_end_matches('(')
                    ),
                ));
            }
        }
        if cast {
            for pat in TRUNCATING_CASTS {
                if code.contains(pat) {
                    out.push(finding(
                        rel,
                        i + 1,
                        RULE_CAST,
                        format!(
                            "truncating `{}` cast in the remap hot path; \
                             use `try_from` and handle (or justify) the failure",
                            pat.trim_start()
                        ),
                    ));
                }
            }
        }
    }
    out
}

fn finding(rel: &str, line: usize, rule: &'static str, message: String) -> Finding {
    Finding {
        file: rel.to_string(),
        line,
        rule,
        message,
    }
}

/// `true` when a justification `tag` appears in a comment on line `i`
/// or within [`JUSTIFICATION_WINDOW`] lines above it.
fn justified(sf: &SourceFile, i: usize, tag: &str) -> bool {
    let lo = i.saturating_sub(JUSTIFICATION_WINDOW);
    (lo..=i).any(|j| sf.comment_lines[j].contains(tag))
}

/// Whether `rel` is library code: any `.rs` file in `crates/*/src/**`
/// or the root `src/`, excluding binary targets (`src/bin/**`, the
/// root `src/main.rs`), the `xtask` tool, and vendored stand-ins.
pub fn library_code(rel: &str) -> bool {
    if rel.starts_with("crates/xtask/") || rel.starts_with("vendor/") {
        return false;
    }
    if rel.contains("/src/bin/") {
        return false;
    }
    if rel.starts_with("crates/") {
        return rel.contains("/src/");
    }
    rel.starts_with("src/") && rel != "src/main.rs"
}

/// Checks the crate-root lint headers: both attributes must be present
/// **as code** (a commented-out header does not count).
fn lint_lib_header(rel: &str, text: &str, out: &mut Vec<Finding>) {
    let sf = SourceFile::new(rel, text);
    let joined = sf.code_lines.join("\n");
    let compact: String = joined.chars().filter(|c| !c.is_whitespace()).collect();
    for (required, needle) in [
        ("#![warn(missing_docs)]", "#![warn(missing_docs)]"),
        ("#![forbid(unsafe_code)]", "#![forbid(unsafe_code)]"),
    ] {
        if !compact.contains(needle) {
            out.push(finding(
                rel,
                0,
                RULE_HEADER,
                format!("crate root does not declare `{required}`"),
            ));
        }
    }
}

/// The unchecked call present in a code-view line, if any.
/// `unwrap_or*` and `expect_err` are checked alternatives, not panics
/// on the happy path's inverse, and are allowed.
fn unchecked_call(code: &str) -> Option<&'static str> {
    if code.contains(".unwrap()") {
        return Some(".unwrap()");
    }
    // `.expect(` but not `.expect_err(`.
    let mut rest = code;
    while let Some(pos) = rest.find(".expect") {
        let after = &rest[pos + ".expect".len()..];
        if after.starts_with('(') {
            return Some(".expect(");
        }
        rest = after;
    }
    None
}

/// The environment read present in a code-view line, if any: a
/// `use std::env` import, or `env::<read>(`-shaped call.
fn env_read(code: &str) -> Option<String> {
    if contains_token(code, "std::env") {
        return Some("std::env".to_string());
    }
    for read in ENV_READS {
        let pat = format!("env::{read}(");
        if contains_token(code, &pat) {
            return Some(format!("env::{read}"));
        }
    }
    None
}

/// `true` when `code` contains `pat` at a token boundary (the
/// preceding character is not part of an identifier) — so
/// `debug_assert!(` does not count as an `assert!(` occurrence.
fn contains_token(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let boundary = code[..abs]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if boundary {
            return true;
        }
        start = abs + pat.len();
    }
    false
}

/// `true` when `code` mentions the type name `pat` as a whole token:
/// bounded on both sides by non-identifier characters, so `HashMap`
/// does not match inside `MyHashMapExt`.
fn contains_type(code: &str, pat: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(pat) {
        let abs = start + pos;
        let before = code[..abs]
            .chars()
            .next_back()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        let after = code[abs + pat.len()..]
            .chars()
            .next()
            .is_none_or(|c| !c.is_alphanumeric() && c != '_');
        if before && after {
            return true;
        }
        start = abs + pat.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    const HYGIENE_FILE: &str = "crates/ccs-core/src/demo.rs";
    const LIB_FILE: &str = "crates/ccs-workloads/src/demo.rs";

    #[test]
    fn bare_unwrap_is_flagged() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, RULE_UNWRAP);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn bare_expect_is_flagged_but_expect_err_is_not() {
        let src = "fn f(x: Result<u32, ()>) -> u32 {\n    x.expect(\"boom\")\n}\n";
        assert_eq!(lint_source(HYGIENE_FILE, src).len(), 1);
        let src = "fn f(x: Result<u32, ()>) {\n    let _ = x.expect_err(\"fine\");\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn invariant_comment_justifies() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   // INVARIANT: x is Some by construction (see caller).\n    \
                   x.unwrap()\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
        // Same-line justification also accepted.
        let src = "fn f(x: Option<u32>) -> u32 {\n    x.unwrap() // INVARIANT: non-empty\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn unwrap_or_family_is_allowed() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   x.unwrap_or(0) + x.unwrap_or_else(|| 1) + x.unwrap_or_default()\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn cfg_test_blocks_are_skipped() {
        let src = "fn ok() {}\n\
                   #[cfg(test)]\n\
                   mod tests {\n    \
                   #[test]\n    \
                   fn t() { Some(1).unwrap(); }\n\
                   }\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn unwrap_after_test_block_is_still_flagged() {
        let src = "#[cfg(test)]\n\
                   mod tests {\n    \
                   fn t() { Some(1).unwrap(); }\n\
                   }\n\
                   fn g() { Some(1).unwrap(); }\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 5);
    }

    #[test]
    fn commented_unwrap_is_ignored() {
        let src = "fn f() {\n    // calls .unwrap() eventually\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn other_crates_are_not_under_the_unwrap_rule() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        assert!(lint_source("crates/ccs-workloads/src/demo.rs", src).is_empty());
    }

    #[test]
    fn truncating_cast_in_remap_is_flagged() {
        let src = "fn f(x: i64) -> u32 {\n    x as u32\n}\n";
        let f = lint_source("crates/ccs-core/src/remap.rs", src);
        assert!(f.iter().any(|f| f.rule == RULE_CAST && f.line == 2));
        // Widening / usize casts are fine.
        let src = "fn f(x: u32) -> u64 {\n    let _ = x as usize;\n    x as u64\n}\n";
        let f = lint_source("crates/ccs-core/src/remap.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_CAST), "{f:?}");
    }

    #[test]
    fn print_macros_in_library_code_are_flagged() {
        let src = "fn f() {\n    println!(\"hi\");\n    eprintln!(\"oh\");\n}\n";
        let f = lint_source(LIB_FILE, src);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == RULE_PRINT));
        assert!(f[0].message.contains("`println!`"));
        assert!(f[1].message.contains("`eprintln!`"));
        // Root library files are covered too.
        assert_eq!(lint_source("src/cli.rs", src).len(), 2);
    }

    #[test]
    fn print_macros_in_binaries_tests_and_xtask_are_allowed() {
        let src = "fn main() {\n    println!(\"hi\");\n}\n";
        assert!(lint_source("crates/ccs-bench/src/bin/bench_hotpath.rs", src).is_empty());
        assert!(lint_source("src/main.rs", src).is_empty());
        assert!(lint_source("crates/xtask/src/main.rs", src).is_empty());
        assert!(lint_source("crates/ccs-core/tests/e2e.rs", src).is_empty());
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t() { println!(\"dbg\"); }\n}\n";
        assert!(lint_source(LIB_FILE, in_test).is_empty());
        // Commented mentions are fine.
        let comment = "fn f() {\n    // never println!(..) here\n}\n";
        assert!(lint_source(LIB_FILE, comment).is_empty());
    }

    #[test]
    fn unguarded_probe_emit_is_flagged() {
        let src = "fn f<P: Probe>(probe: &mut P) {\n    probe.emit(Event::Rotate { nodes: vec![] });\n}\n";
        let f = lint_source("crates/ccs-core/src/demo.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_PROBE && f.line == 2),
            "{f:?}"
        );
        // Other crates may structure their probes differently.
        assert!(lint_source("crates/ccs-trace/src/demo.rs", src)
            .iter()
            .all(|f| f.rule != RULE_PROBE));
    }

    #[test]
    fn guarded_probe_emit_is_allowed() {
        let multi = "fn f<P: Probe>(probe: &mut P) {\n    \
                     if P::ACTIVE {\n        \
                     probe.emit(Event::Rotate { nodes: vec![] });\n    \
                     }\n}\n";
        assert!(lint_source("crates/ccs-core/src/demo.rs", multi)
            .iter()
            .all(|f| f.rule != RULE_PROBE));
        let single = "fn f<P: Probe>(probe: &mut P) {\n    if P::ACTIVE { probe.emit(ev()); }\n}\n";
        assert!(lint_source("crates/ccs-core/src/demo.rs", single)
            .iter()
            .all(|f| f.rule != RULE_PROBE));
        // An emission *after* the guarded block is unguarded again.
        let after = "fn f<P: Probe>(probe: &mut P) {\n    \
                     if P::ACTIVE {\n        \
                     probe.emit(ev());\n    \
                     }\n    \
                     probe.emit(ev());\n}\n";
        let f = lint_source("crates/ccs-core/src/demo.rs", after);
        assert!(
            f.iter().any(|f| f.rule == RULE_PROBE && f.line == 5),
            "{f:?}"
        );
        // Test code is exempt.
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t<P: Probe>(probe: &mut P) { probe.emit(ev()); }\n}\n";
        assert!(lint_source("crates/ccs-core/src/demo.rs", in_test)
            .iter()
            .all(|f| f.rule != RULE_PROBE));
    }

    #[test]
    fn assert_in_hot_path_fn_is_flagged() {
        let src = "fn best_position<P: Probe>(x: u32) -> u32 {\n    \
                   assert!(x > 0);\n    \
                   x\n}\n";
        let f = lint_source("crates/ccs-core/src/remap.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_HOT_ASSERT && f.line == 2),
            "{f:?}"
        );
        let src = "pub fn earliest_free(&self) -> u32 {\n    panic!(\"no slot\");\n}\n";
        let f = lint_source("crates/ccs-schedule/src/table.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_HOT_ASSERT && f.line == 2),
            "{f:?}"
        );
        let src = "pub fn distance(&self, a: Pe, b: Pe) -> u32 {\n    \
                   assert_eq!(a.0, b.0);\n    0\n}\n";
        let f = lint_source("crates/ccs-topology/src/machine.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_HOT_ASSERT && f.line == 2),
            "{f:?}"
        );
    }

    #[test]
    fn debug_assert_in_hot_path_fn_is_allowed() {
        let src = "pub fn distance(&self, a: Pe, b: Pe) -> u32 {\n    \
                   debug_assert!(a.0 < 4);\n    \
                   debug_assert_eq!(self.n, 4);\n    0\n}\n";
        let f = lint_source("crates/ccs-topology/src/machine.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_HOT_ASSERT), "{f:?}");
    }

    #[test]
    fn asserts_outside_hot_path_fns_are_allowed() {
        // Same file, different function: not under the rule.
        let src = "pub fn try_distance(&self) -> u32 {\n    assert!(true);\n    0\n}\n\
                   fn rebuild(&mut self) {\n    assert!(self.ok());\n}\n";
        let f = lint_source("crates/ccs-topology/src/machine.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_HOT_ASSERT), "{f:?}");
        // A hot-path fn name in an uncovered file is not under the rule.
        let src = "fn best_position() {\n    assert!(true);\n}\n";
        assert!(lint_source("crates/ccs-bench/src/lib.rs", src)
            .iter()
            .all(|f| f.rule != RULE_HOT_ASSERT));
    }

    #[test]
    fn assert_after_hot_path_fn_is_allowed() {
        let src = "pub fn earliest_free(&self) -> u32 {\n    \
                   self.cursor\n}\n\
                   fn other(&self) {\n    assert!(self.ok());\n}\n";
        let f = lint_source("crates/ccs-schedule/src/table.rs", src);
        assert!(f.iter().all(|f| f.rule != RULE_HOT_ASSERT), "{f:?}");
    }

    #[test]
    fn unordered_containers_in_library_code_are_flagged() {
        let src = "fn f() {\n    let mut m: std::collections::HashMap<u32, u32> = \
                   std::collections::HashMap::new();\n    m.insert(1, 2);\n}\n";
        let f = lint_source(LIB_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_UNORDERED);
        assert_eq!(f[0].line, 2);
        assert!(f[0].message.contains("BTreeMap"), "{}", f[0].message);
        let src =
            "fn f() {\n    let s = std::collections::HashSet::<u32>::new();\n    drop(s);\n}\n";
        let f = lint_source("src/cli.rs", src);
        assert!(f.iter().any(|f| f.rule == RULE_UNORDERED), "{f:?}");
    }

    #[test]
    fn ordered_comment_justifies_hash_containers() {
        let above = "fn f() {\n    \
                     // ORDERED: lookup-only; never iterated, order cannot escape.\n    \
                     let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n";
        assert!(lint_source(LIB_FILE, above).is_empty());
        let same_line =
            "fn f() {\n    let m = HashMap::<u32, u32>::new(); // ORDERED: lookup-only\n    drop(m);\n}\n";
        assert!(lint_source(LIB_FILE, same_line).is_empty());
    }

    #[test]
    fn unordered_rule_skips_imports_tests_binaries_and_btrees() {
        let import = "use std::collections::HashMap;\n\nfn f() {}\n";
        assert!(lint_source(LIB_FILE, import).is_empty());
        let src = "fn f() {\n    let m = std::collections::HashMap::<u32, u32>::new();\n    drop(m);\n}\n";
        assert!(lint_source("crates/ccs-bench/src/bin/bench_hotpath.rs", src).is_empty());
        assert!(lint_source("src/main.rs", src).is_empty());
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t() { let _ = std::collections::HashMap::<u32, u32>::new(); }\n}\n";
        assert!(lint_source(LIB_FILE, in_test).is_empty());
        let btree = "fn f() {\n    let m = std::collections::BTreeMap::<u32, u32>::new();\n    drop(m);\n}\n";
        assert!(lint_source(LIB_FILE, btree).is_empty());
        // A type that merely contains the name is not a hit.
        let ext = "struct MyHashMapExt;\nfn f(_: MyHashMapExt) {}\n";
        assert!(lint_source(LIB_FILE, ext).is_empty());
    }

    #[test]
    fn unescaped_html_interpolation_is_flagged() {
        let src = "fn f(out: &mut String, v: &str) {\n    \
                   let _ = write!(out, \"<td>{v}</td>\");\n}\n";
        let f = lint_source("crates/ccs-report/src/lib.rs", src);
        assert!(
            f.iter().any(|f| f.rule == RULE_ESCAPED && f.line == 2),
            "{f:?}"
        );
        // The profile's SVG renderer is in scope too.
        let f = lint_source("crates/ccs-profile/src/render.rs", src);
        assert!(f.iter().any(|f| f.rule == RULE_ESCAPED), "{f:?}");
    }

    #[test]
    fn esc_on_or_near_the_statement_satisfies_the_rule() {
        let same = "fn f(out: &mut String, v: &str) {\n    \
                    let _ = write!(out, \"<td>{}</td>\", esc(v));\n}\n";
        assert!(lint_source("crates/ccs-report/src/lib.rs", same)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
        // Multi-line write!: the literal and the esc() call are on
        // different lines, inside the justification window.
        let near = "fn f(out: &mut String, v: &str) {\n    \
                    let _ = write!(\n        out,\n        \
                    \"<td>{}</td>\",\n        esc(v)\n    );\n}\n";
        assert!(lint_source("crates/ccs-report/src/lib.rs", near)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
        let justified = "fn f(out: &mut String, n: u32) {\n    \
                         // ESCAPED: n is a number, no markup characters possible\n    \
                         let _ = write!(out, \"<td>{n}</td>\");\n}\n";
        assert!(lint_source("crates/ccs-report/src/lib.rs", justified)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
    }

    #[test]
    fn escape_rule_scope_excludes_other_crates_and_tests() {
        let src = "fn f(out: &mut String, v: &str) {\n    \
                   let _ = write!(out, \"<td>{v}</td>\");\n}\n";
        assert!(lint_source("crates/ccs-profile/src/lib.rs", src)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
        assert!(lint_source("src/cli.rs", src)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t() { let _ = format!(\"<td>{}</td>\", 1); }\n}\n";
        assert!(lint_source("crates/ccs-report/src/lib.rs", in_test)
            .iter()
            .all(|f| f.rule != RULE_ESCAPED));
    }

    #[test]
    fn lib_header_rule() {
        let good = "//! docs\n#![warn(missing_docs)]\n#![forbid(unsafe_code)]\n";
        assert!(lint_source("crates/ccs-foo/src/lib.rs", good).is_empty());
        let bad = "//! docs\n";
        let f = lint_source("crates/ccs-foo/src/lib.rs", bad);
        assert_eq!(f.len(), 2);
        assert!(f.iter().all(|f| f.rule == RULE_HEADER));
        // Vendored stand-ins are exempt.
        assert!(lint_source("vendor/serde/src/lib.rs", bad).is_empty());
    }

    #[test]
    fn commented_out_lib_header_does_not_count() {
        let bad = "//! docs\n// #![warn(missing_docs)]\n// #![forbid(unsafe_code)]\n";
        let f = lint_source("crates/ccs-foo/src/lib.rs", bad);
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|f| f.rule == RULE_HEADER));
    }

    // ---- new determinism rules -------------------------------------

    #[test]
    fn wall_clock_in_library_code_is_flagged() {
        let src = "fn f() -> std::time::Instant {\n    std::time::Instant::now()\n}\n";
        let f = lint_source(LIB_FILE, src);
        assert!(
            f.iter().any(|f| f.rule == RULE_CLOCK && f.line == 2),
            "{f:?}"
        );
        let src = "fn f() -> u64 {\n    let t = SystemTime::now();\n    0\n}\n";
        assert!(lint_source(LIB_FILE, src)
            .iter()
            .any(|f| f.rule == RULE_CLOCK));
    }

    #[test]
    fn clock_comment_justifies_and_binaries_are_exempt() {
        let justified = "fn f() -> Instant {\n    \
                         // CLOCK: recorder timestamps never reach fingerprinted output.\n    \
                         Instant::now()\n}\n";
        assert!(lint_source(LIB_FILE, justified)
            .iter()
            .all(|f| f.rule != RULE_CLOCK));
        let src = "fn main() {\n    let t = std::time::Instant::now();\n    drop(t);\n}\n";
        assert!(lint_source("crates/ccs-bench/src/bin/bench_hotpath.rs", src).is_empty());
        let in_test = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    \
                       fn t() { let _ = std::time::Instant::now(); }\n}\n";
        assert!(lint_source(LIB_FILE, in_test).is_empty());
    }

    #[test]
    fn env_reads_in_library_code_are_flagged() {
        let call = "fn f() -> Option<String> {\n    std::env::var(\"HOME\").ok()\n}\n";
        let f = lint_source(LIB_FILE, call);
        assert!(f.iter().any(|f| f.rule == RULE_ENV && f.line == 2), "{f:?}");
        let import = "use std::env;\n\nfn f() -> Vec<String> {\n    env::args().collect()\n}\n";
        let f = lint_source(LIB_FILE, import);
        assert!(f.iter().any(|f| f.rule == RULE_ENV), "{f:?}");
    }

    #[test]
    fn env_escape_and_scope() {
        let justified = "fn f() -> Option<String> {\n    \
                         // ENV: documented debug knob, read once at startup, never in output.\n    \
                         std::env::var(\"CCS_DEBUG\").ok()\n}\n";
        assert!(lint_source(LIB_FILE, justified)
            .iter()
            .all(|f| f.rule != RULE_ENV));
        // Binaries read the environment freely.
        let src = "fn main() {\n    let _ = std::env::args();\n}\n";
        assert!(lint_source("crates/ccs-bench/src/bin/bench_hotpath.rs", src).is_empty());
        assert!(lint_source("src/main.rs", src).is_empty());
        // An unrelated `env` identifier is not an environment read.
        let other = "fn f(env: &Env) -> u32 {\n    env.lookup(3)\n}\n";
        assert!(lint_source(LIB_FILE, other).is_empty());
    }

    #[test]
    fn machine_identity_in_library_code_is_flagged() {
        let src = "fn f() -> u32 {\n    std::process::id()\n}\n";
        assert!(lint_source(LIB_FILE, src)
            .iter()
            .any(|f| f.rule == RULE_IDENTITY));
        let src = "fn f() -> usize {\n    std::thread::available_parallelism().map_or(1, |n| n.get())\n}\n";
        assert!(lint_source(LIB_FILE, src)
            .iter()
            .any(|f| f.rule == RULE_IDENTITY));
        let justified = "fn f() -> u32 {\n    \
                         // IDENTITY: feeds the log file name only, never the ledger.\n    \
                         std::process::id()\n}\n";
        assert!(lint_source(LIB_FILE, justified)
            .iter()
            .all(|f| f.rule != RULE_IDENTITY));
    }

    // ---- lexer regressions: blind spots of the old line engine -----
    //
    // Each case here produced a wrong answer (either direction) under
    // line heuristics; the token engine pins the correct behaviour.

    #[test]
    fn unwrap_inside_string_literal_is_not_flagged() {
        let src = "fn f() -> &'static str {\n    \"call .unwrap() on it\"\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn unwrap_after_a_string_on_the_same_line_is_flagged() {
        let src = "fn f(m: &Map) -> u32 {\n    *m.get(\"key\").unwrap()\n}\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_UNWRAP);
    }

    #[test]
    fn unwrap_inside_multiline_block_comment_is_not_flagged() {
        let src = "fn f() {}\n/*\n   old code: x.unwrap()\n*/\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
    }

    #[test]
    fn nested_block_comment_close_is_tracked() {
        // With naive (non-nesting) block tracking the outer comment
        // "closes" at the inner `*/` and the real unwrap below would
        // be read as commented out — or the comment text as code.
        let src =
            "/* outer /* inner */ still comment */\nfn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn raw_string_containing_comment_markers_is_inert() {
        // The `//` inside the raw string is not a comment: the unwrap
        // after the literal on the same line is live code.
        let src =
            "fn f(x: Option<u32>) -> u32 {\n    let _ = r#\"// not a comment\"#; x.unwrap()\n}\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn justification_tag_inside_a_string_does_not_justify() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   let _ = \"INVARIANT: fake\";\n    \
                   x.unwrap()\n}\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, RULE_UNWRAP);
    }

    #[test]
    fn cfg_test_inside_string_does_not_mask_following_code() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    \
                   let _ = \"#[cfg(test)]\";\n    \
                   x.unwrap()\n}\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn lifetimes_are_not_string_openers() {
        // A naive quote tracker pairs `'a` with the next `'` and blanks
        // real code as "string contents".
        let src = "fn f<'a>(x: &'a Option<u32>) -> u32 {\n    x.unwrap()\n}\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn char_literal_quote_does_not_open_a_string() {
        let src = "fn f(c: char, x: Option<u32>) -> u32 {\n    if c == '\"' { return 0; }\n    x.unwrap()\n}\n";
        let f = lint_source(HYGIENE_FILE, src);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn println_inside_string_literal_is_not_flagged() {
        let src = "fn f() -> &'static str {\n    \"use println!(..) for that\"\n}\n";
        assert!(lint_source(LIB_FILE, src).is_empty());
    }

    #[test]
    fn multiline_string_contents_are_not_code() {
        let src =
            "fn f() -> &'static str {\n    \"line one\n    x.unwrap()\n    println!(..)\"\n}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
        assert!(lint_source(LIB_FILE, src).is_empty());
    }

    #[test]
    fn doc_comment_examples_are_not_code() {
        let src = "/// Call `x.unwrap()` after checking, or:\n\
                   /// ```\n\
                   /// let v = std::collections::HashMap::<u32, u32>::new();\n\
                   /// ```\n\
                   fn f() {}\n";
        assert!(lint_source(HYGIENE_FILE, src).is_empty());
        assert!(lint_source(LIB_FILE, src).is_empty());
    }
}

//! Token-derived views of one source file.
//!
//! [`SourceFile`] lexes a file once and exposes what the rules
//! actually consume: three **parallel line grids** (code, comments,
//! string-literal text — each line padded with spaces where the other
//! classes live, so column positions line up with the original), plus
//! structural masks computed by token-level brace matching
//! (`#[cfg(test)]` items, named `fn` bodies, `if P::ACTIVE` guard
//! blocks).
//!
//! Splitting the classes is what kills the old line engine's blind
//! spots wholesale: a rule searching `code_lines` can never match
//! inside a comment or a string literal, and a justification tag
//! searched in `comment_lines` must really be a comment.

use crate::lexer::{lex, Token, TokenKind};

/// One lexed source file plus the per-line views derived from it.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    /// The token tiling of the source.
    pub tokens: Vec<Token>,
    /// Per-line code text: everything except comments and string
    /// literals, space-padded to the original column positions.
    pub code_lines: Vec<String>,
    /// Per-line comment text (markers included), space-padded.
    pub comment_lines: Vec<String>,
    /// Per-line string-literal text (delimiters included),
    /// space-padded.
    pub string_lines: Vec<String>,
    /// `true` for every line inside a `#[cfg(test)]` item (attribute
    /// line included).
    pub test_mask: Vec<bool>,
    /// Byte offset of each line start.
    line_starts: Vec<usize>,
    src_len: usize,
}

/// Which view a token's text lands in.
fn view_of(kind: TokenKind) -> usize {
    match kind {
        TokenKind::LineComment | TokenKind::BlockComment => 1,
        TokenKind::Str => 2,
        _ => 0,
    }
}

impl SourceFile {
    /// Lexes `text` and builds every view.
    pub fn new(rel: &str, text: &str) -> SourceFile {
        let tokens = lex(text);
        let line_starts: Vec<usize> = std::iter::once(0)
            .chain(
                text.bytes()
                    .enumerate()
                    .filter(|&(_, b)| b == b'\n')
                    .map(|(i, _)| i + 1),
            )
            .collect();

        // Three full-size buffers, spaces everywhere a class is
        // absent; sliced along the *original* newline positions so the
        // grids stay line-aligned even when a token spans lines.
        let mut buffers = [
            vec![b' '; text.len()],
            vec![b' '; text.len()],
            vec![b' '; text.len()],
        ];
        for t in &tokens {
            let view = view_of(t.kind);
            buffers[view][t.start..t.end].copy_from_slice(&text.as_bytes()[t.start..t.end]);
        }

        let slice_lines = |buf: &[u8]| -> Vec<String> {
            line_starts
                .iter()
                .enumerate()
                .map(|(i, &start)| {
                    let end = line_starts
                        .get(i + 1)
                        .map_or(buf.len(), |&next| next.saturating_sub(1));
                    let end = end.max(start);
                    let line = &buf[start..end];
                    // Strip the `\r` position of CRLF files (it lands
                    // in whatever view owned the token containing it).
                    let line = match line.last() {
                        Some(b'\r') => &line[..line.len() - 1],
                        _ => line,
                    };
                    String::from_utf8_lossy(line).into_owned()
                })
                .collect()
        };
        let code_lines = slice_lines(&buffers[0]);
        let comment_lines = slice_lines(&buffers[1]);
        let string_lines = slice_lines(&buffers[2]);

        let mut sf = SourceFile {
            rel: rel.to_string(),
            tokens,
            code_lines,
            comment_lines,
            string_lines,
            test_mask: Vec::new(),
            line_starts,
            src_len: text.len(),
        };
        sf.test_mask = sf.cfg_test_mask(text);
        sf
    }

    /// Number of lines (as the views count them).
    pub fn num_lines(&self) -> usize {
        self.code_lines.len()
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Indices of tokens that carry code (not whitespace, comments, or
    /// strings) — the stream structural scans walk.
    pub fn code_token_indices(&self) -> Vec<usize> {
        self.tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace
                        | TokenKind::LineComment
                        | TokenKind::BlockComment
                        | TokenKind::Str
                )
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// `mask[line] == true` for every line of every `#[cfg(test)]`
    /// item: from the attribute through the matching close brace of
    /// the item it gates (or its terminating `;`).
    fn cfg_test_mask(&self, src: &str) -> Vec<bool> {
        let mut mask = vec![false; self.num_lines()];
        let code = self.code_token_indices();
        let texts: Vec<&str> = code.iter().map(|&i| self.tokens[i].text(src)).collect();
        let mut k = 0usize;
        while k < code.len() {
            if !matches_seq(&texts[k..], &["#", "[", "cfg", "(", "test", ")", "]"]) {
                k += 1;
                continue;
            }
            let start_line = self.line_of(self.tokens[code[k]].start);
            // Walk to the end of the gated item: the close of the
            // first brace group, or a `;` before any brace opens.
            let mut j = k + 7;
            let mut depth = 0i64;
            let mut opened = false;
            let mut end_line = start_line;
            while j < code.len() {
                let t = texts[j];
                end_line = self.line_of(self.tokens[code[j]].start);
                match t {
                    "{" => {
                        depth += 1;
                        opened = true;
                    }
                    "}" => {
                        depth -= 1;
                        if opened && depth <= 0 {
                            break;
                        }
                    }
                    ";" if !opened && depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            // A block comment after the close brace on the same line
            // must not leak the mask; mark [start_line, end_line].
            for line in start_line..=end_line.min(self.num_lines()) {
                if line >= 1 {
                    mask[line - 1] = true;
                }
            }
            k = j + 1;
        }
        mask
    }

    /// `mask[line] == true` for every line of the body of each `fn`
    /// named exactly one of `names` (signature line included).
    pub fn fn_body_mask(&self, src: &str, names: &[&str]) -> Vec<bool> {
        let mut mask = vec![false; self.num_lines()];
        if names.is_empty() {
            return mask;
        }
        let code = self.code_token_indices();
        let texts: Vec<&str> = code.iter().map(|&i| self.tokens[i].text(src)).collect();
        let mut k = 0usize;
        while k < code.len() {
            let is_decl = texts[k] == "fn"
                && texts.get(k + 1).is_some_and(|n| names.contains(n))
                && matches!(texts.get(k + 2), Some(&"(") | Some(&"<"));
            if !is_decl {
                k += 1;
                continue;
            }
            let start_line = self.line_of(self.tokens[code[k]].start);
            let (end_line, next) = self.brace_span(&code, &texts, k, start_line);
            for line in start_line..=end_line.min(self.num_lines()) {
                mask[line - 1] = true;
            }
            k = next;
        }
        mask
    }

    /// `mask[line] == true` for every line of each `if P::ACTIVE {..}`
    /// block (guard line included).  `else` arms are deliberately not
    /// masked: an emission in the "probe inactive" arm is exactly the
    /// bug the probe rule exists to catch.
    pub fn active_guard_mask(&self, src: &str) -> Vec<bool> {
        let mut mask = vec![false; self.num_lines()];
        let code = self.code_token_indices();
        let texts: Vec<&str> = code.iter().map(|&i| self.tokens[i].text(src)).collect();
        let mut k = 0usize;
        while k < code.len() {
            if !matches_seq(&texts[k..], &["if", "P", ":", ":", "ACTIVE"]) {
                k += 1;
                continue;
            }
            let start_line = self.line_of(self.tokens[code[k]].start);
            let (end_line, next) = self.brace_span(&code, &texts, k, start_line);
            for line in start_line..=end_line.min(self.num_lines()) {
                mask[line - 1] = true;
            }
            k = next;
        }
        mask
    }

    /// From code-token index `k`, finds the close of the first brace
    /// group that opens at or after `k`.  Returns `(last line of the
    /// group, code-token index to resume scanning at)`.
    fn brace_span(
        &self,
        code: &[usize],
        texts: &[&str],
        k: usize,
        start_line: usize,
    ) -> (usize, usize) {
        let mut depth = 0i64;
        let mut opened = false;
        let mut end_line = start_line;
        let mut j = k;
        while j < code.len() {
            end_line = self.line_of(self.tokens[code[j]].start);
            match texts[j] {
                "{" => {
                    depth += 1;
                    opened = true;
                }
                "}" => {
                    depth -= 1;
                    if opened && depth <= 0 {
                        return (end_line, j + 1);
                    }
                }
                _ => {}
            }
            j += 1;
        }
        (end_line.max(self.line_of(self.src_len)), j + 1)
    }
}

/// `true` when `texts` starts with exactly the tokens of `pat`.
fn matches_seq(texts: &[&str], pat: &[&str]) -> bool {
    texts.len() >= pat.len() && texts[..pat.len()] == *pat
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn views_are_line_aligned_and_classified() {
        let src = "let a = 1; // note INVARIANT: here\nlet s = \"x.unwrap()\";\n";
        let sf = SourceFile::new("f.rs", src);
        assert_eq!(sf.num_lines(), 3); // trailing newline -> empty last line
        assert!(sf.code_lines[0].contains("let a = 1;"));
        assert!(!sf.code_lines[0].contains("INVARIANT"));
        assert!(sf.comment_lines[0].contains("INVARIANT:"));
        assert!(!sf.code_lines[1].contains("unwrap"));
        assert!(sf.string_lines[1].contains("x.unwrap()"));
        // Columns line up: `let` starts at column 0 in both raw and view.
        assert!(sf.code_lines[1].starts_with("let s ="));
    }

    #[test]
    fn multiline_tokens_blank_whole_lines() {
        let src = "a();\n/* one\n   two().unwrap()\n*/\nb();\nlet s = \"l1\nl2.unwrap()\";\nc();\n";
        let sf = SourceFile::new("f.rs", src);
        assert!(sf.code_lines[2].trim().is_empty());
        assert!(sf.comment_lines[2].contains("unwrap"));
        assert!(sf.code_lines[5].contains("let s ="));
        assert_eq!(sf.code_lines[6].trim(), ";");
        assert!(sf.string_lines[6].contains("l2.unwrap()"));
        assert!(sf.code_lines[7].contains("c();"));
    }

    #[test]
    fn cfg_test_mask_covers_items() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x(); }\n}\nfn after() {}\n";
        let sf = SourceFile::new("f.rs", src);
        assert_eq!(
            sf.test_mask,
            vec![false, true, true, true, true, false, false]
        );
    }

    #[test]
    fn cfg_test_mask_ignores_string_and_comment_mentions() {
        let src = "let s = \"#[cfg(test)]\";\n// #[cfg(test)]\nfn f() { x(); }\n";
        let sf = SourceFile::new("f.rs", src);
        assert!(sf.test_mask.iter().all(|&m| !m), "{:?}", sf.test_mask);
    }

    #[test]
    fn cfg_test_use_item_stops_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { x(); }\n";
        let sf = SourceFile::new("f.rs", src);
        assert_eq!(sf.test_mask, vec![true, true, false, false]);
    }

    #[test]
    fn fn_body_mask_exact_name() {
        let src = "fn try_distance() {\n    a();\n}\npub fn distance(x: u32) {\n    b();\n}\n";
        let sf = SourceFile::new("f.rs", src);
        let mask = sf.fn_body_mask(src, &["distance"]);
        assert_eq!(mask, vec![false, false, false, true, true, true, false]);
    }

    #[test]
    fn active_guard_mask_blocks() {
        let src = "fn f() {\n    if P::ACTIVE {\n        emit();\n    }\n    emit();\n}\n";
        let sf = SourceFile::new("f.rs", src);
        let mask = sf.active_guard_mask(src);
        assert_eq!(mask, vec![false, true, true, true, false, false, false]);
    }

    #[test]
    fn line_of_offsets() {
        let src = "ab\ncd\nef";
        let sf = SourceFile::new("f.rs", src);
        assert_eq!(sf.line_of(0), 1);
        assert_eq!(sf.line_of(3), 2);
        assert_eq!(sf.line_of(7), 3);
    }
}

//! A hand-rolled, std-only Rust lexer.
//!
//! The lexer's contract is deliberately narrow: split a source file
//! into a **complete tiling** of classified byte spans.  Every byte of
//! the input belongs to exactly one token, so concatenating the token
//! spans reproduces the source byte-for-byte (the round-trip property
//! the workspace test pins on every `.rs` file in the repo).  The
//! classification is what the line-based predecessor could not do
//! reliably:
//!
//! * `//` inside a string literal is string content, not a comment;
//! * raw strings (`r"..."`, `r#"..."#`, any hash depth, plus the
//!   `b`/`br`/`c`/`cr` prefixes) have no escapes and may span lines;
//! * block comments nest (`/* /* */ */`) and may span lines;
//! * `'a'` is a char literal, `'a` is a lifetime, `b'a'` is a byte
//!   literal, and `r#ident` is a raw identifier, not a raw string.
//!
//! The lexer never panics: malformed input (unterminated strings or
//! comments, stray quotes) degrades to a best-effort token that runs
//! to end-of-input, keeping the tiling property intact.

/// The classification of one source span.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Whitespace, including newlines.
    Whitespace,
    /// A `//` comment (doc comments `///` and `//!` included), up to
    /// but not including the terminating newline.
    LineComment,
    /// A `/* ... */` comment (doc comments `/** ... */` included),
    /// nesting-aware, possibly spanning lines.
    BlockComment,
    /// A string literal: `"..."`, `r"..."`, `r#"..."#`, and the
    /// `b`/`br`/`c`/`cr` prefixed forms, prefix and delimiters
    /// included in the span.
    Str,
    /// A char or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// A lifetime or loop label: `'a`, `'static`, `'_`.
    Lifetime,
    /// An identifier or keyword, raw identifiers (`r#match`) included.
    Ident,
    /// A numeric literal (suffixes included: `1_000u64`, `0xFF`,
    /// `1.5e-3`).
    Number,
    /// Any other single character (operators, brackets, `#`, ...).
    Punct,
}

/// One token: a classified half-open byte span of the source.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// Span classification.
    pub kind: TokenKind,
    /// Start byte offset (inclusive).
    pub start: usize,
    /// End byte offset (exclusive).
    pub end: usize,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// Lexes `src` into a complete tiling of tokens.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let start = self.pos;
            let kind = self.next_kind();
            // Defensive: every branch of `next_kind` advances, but if a
            // future edit breaks that, degrade to a one-byte punct
            // rather than looping forever.
            if self.pos == start {
                self.pos += self.char_len(start);
                out.push(Token {
                    kind: TokenKind::Punct,
                    start,
                    end: self.pos,
                });
                continue;
            }
            out.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        out
    }

    /// Byte length of the UTF-8 char starting at `at` (1 for ASCII and
    /// for trailing bytes we should never land on).
    fn char_len(&self, at: usize) -> usize {
        self.src[at..].chars().next().map_or(1, char::len_utf8)
    }

    fn peek(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    /// The char starting at byte offset `self.pos + off` (which must
    /// be a char boundary to return `Some`).
    fn peek_char_at(&self, off: usize) -> Option<char> {
        self.src.get(self.pos + off..)?.chars().next()
    }

    fn next_kind(&mut self) -> TokenKind {
        let b = self.bytes[self.pos];
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'0'..=b'9' => self.number(),
            _ => {
                let c = match self.peek_char_at(0) {
                    Some(c) => c,
                    None => {
                        // Not a char boundary (cannot happen with the
                        // tiling invariant): consume one byte.
                        self.pos += 1;
                        return TokenKind::Punct;
                    }
                };
                if c.is_whitespace() {
                    self.whitespace()
                } else if c == '_' || c.is_alphabetic() {
                    self.ident_or_prefixed()
                } else {
                    self.pos += c.len_utf8();
                    TokenKind::Punct
                }
            }
        }
    }

    fn whitespace(&mut self) -> TokenKind {
        while let Some(c) = self.peek_char_at(0) {
            if !c.is_whitespace() {
                break;
            }
            self.pos += c.len_utf8();
        }
        TokenKind::Whitespace
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += self.char_len(self.pos);
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        // Consumes `/*`, then tracks nesting; unterminated comments
        // run to end-of-input.
        self.pos += 2;
        let mut depth = 1usize;
        while self.pos < self.bytes.len() {
            if self.peek(0) == Some(b'/') && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.peek(0) == Some(b'*') && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.pos += self.char_len(self.pos);
            }
        }
        TokenKind::BlockComment
    }

    /// A normal (escaped) string literal starting at the opening `"`.
    fn string(&mut self) -> TokenKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    // Skip the escape introducer and the escaped char
                    // (enough for `\"` and `\\`; multi-char escapes
                    // like `\u{..}` contain no quotes after this).
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.pos += self.char_len(self.pos);
                    }
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.pos += self.char_len(self.pos),
            }
        }
        TokenKind::Str
    }

    /// A raw string starting at the `r` (any number of `#`s already
    /// verified by the caller to lead to a `"`).  `hashes` is that
    /// number; the prefix (`r`, `br`, ...) has already been consumed.
    fn raw_string(&mut self, hashes: usize) -> TokenKind {
        // Consume `#`* `"`.
        self.pos += hashes + 1;
        while self.pos < self.bytes.len() {
            if self.bytes[self.pos] == b'"' {
                let mut n = 0usize;
                while n < hashes && self.peek(1 + n) == Some(b'#') {
                    n += 1;
                }
                if n == hashes {
                    self.pos += 1 + hashes;
                    return TokenKind::Str;
                }
            }
            self.pos += self.char_len(self.pos);
        }
        TokenKind::Str
    }

    /// Disambiguates `'a'` (char), `'\n'` (char), `'a` / `'static`
    /// (lifetime or label), and `'_` (placeholder lifetime).
    fn char_or_lifetime(&mut self) -> TokenKind {
        // An escape can only start a char literal.
        if self.peek(1) == Some(b'\\') {
            return self.char_literal();
        }
        // `'X'` for any single char X (including `'''` degenerately):
        // a char literal.  Otherwise a lifetime.
        if let Some(c) = self.peek_char_at(1) {
            if self.peek(1 + c.len_utf8()) == Some(b'\'') {
                return self.char_literal();
            }
            if c == '_' || c.is_alphabetic() {
                // Lifetime / label: `'` then ident chars.
                self.pos += 1;
                while let Some(c) = self.peek_char_at(0) {
                    if c == '_' || c.is_alphanumeric() {
                        self.pos += c.len_utf8();
                    } else {
                        break;
                    }
                }
                return TokenKind::Lifetime;
            }
        }
        // Stray quote (`'` at EOF, or before a non-ident non-quote):
        // consume just the quote so the tiling survives.
        self.pos += 1;
        TokenKind::Char
    }

    /// A char/byte literal starting at the opening `'`.
    fn char_literal(&mut self) -> TokenKind {
        self.pos += 1;
        while self.pos < self.bytes.len() {
            match self.bytes[self.pos] {
                b'\\' => {
                    self.pos += 1;
                    if self.pos < self.bytes.len() {
                        self.pos += self.char_len(self.pos);
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    break;
                }
                // A char literal cannot span lines; an unterminated one
                // (malformed input) stops at the newline so the rest of
                // the file still lexes line by line.
                b'\n' => break,
                _ => self.pos += self.char_len(self.pos),
            }
        }
        TokenKind::Char
    }

    fn number(&mut self) -> TokenKind {
        // Integer part, digit separators, hex/oct/bin bodies, and any
        // alphanumeric suffix (`u64`, `f32`, hex digits).
        self.eat_number_body();
        // Fraction: a `.` followed by a digit (so `0..10` and
        // `1.max(2)` keep their `.` as punctuation).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            self.eat_number_body();
        }
        // Exponent sign: `1e-3` / `2.5E+8` (the `e` itself was eaten
        // as part of the alphanumeric body).
        if matches!(self.bytes.get(self.pos.wrapping_sub(1)), Some(b'e' | b'E'))
            && matches!(self.peek(0), Some(b'+' | b'-'))
            && self.peek(1).is_some_and(|b| b.is_ascii_digit())
        {
            self.pos += 1;
            self.eat_number_body();
        }
        TokenKind::Number
    }

    fn eat_number_body(&mut self) {
        while let Some(c) = self.peek_char_at(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
    }

    /// An identifier, or a prefixed literal that *starts* like one:
    /// raw strings (`r"`, `r#"`), byte strings (`b"`, `br"`), C
    /// strings (`c"`, `cr"`), byte chars (`b'x'`), raw identifiers
    /// (`r#ident`).
    fn ident_or_prefixed(&mut self) -> TokenKind {
        let start = self.pos;
        while let Some(c) = self.peek_char_at(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        let ident = &self.src[start..self.pos];
        match ident {
            "r" | "br" | "b" | "c" | "cr" => {
                // `b'x'`: a byte literal.
                if ident == "b" && self.peek(0) == Some(b'\'') {
                    return self.char_literal();
                }
                // Direct quote: `b"..."`, `r"..."`, `c"..."`.
                if self.peek(0) == Some(b'"') {
                    return if ident == "b" || ident == "c" {
                        self.string()
                    } else {
                        self.raw_string(0)
                    };
                }
                // Hash run: raw string (`r#".."#`) or raw identifier
                // (`r#match`) — only a quote after the hashes makes it
                // a string.
                if ident != "b" && ident != "c" && self.peek(0) == Some(b'#') {
                    let mut hashes = 0usize;
                    while self.peek(hashes) == Some(b'#') {
                        hashes += 1;
                    }
                    if self.peek(hashes) == Some(b'"') {
                        return self.raw_string(hashes);
                    }
                    if ident == "r" && hashes == 1 {
                        if let Some(c) = self.peek_char_at(1) {
                            if c == '_' || c.is_alphabetic() {
                                // Raw identifier: consume `#` + ident.
                                self.pos += 1;
                                while let Some(c) = self.peek_char_at(0) {
                                    if c == '_' || c.is_alphanumeric() {
                                        self.pos += c.len_utf8();
                                    } else {
                                        break;
                                    }
                                }
                                return TokenKind::Ident;
                            }
                        }
                    }
                }
                TokenKind::Ident
            }
            _ => TokenKind::Ident,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(src: &str) -> Vec<Token> {
        let toks = lex(src);
        let rebuilt: String = toks.iter().map(|t| t.text(src)).collect();
        assert_eq!(rebuilt, src, "token spans must tile the source");
        toks
    }

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        roundtrip(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    fn only_code(src: &str) -> Vec<String> {
        kinds(src)
            .into_iter()
            .filter(|(k, _)| {
                !matches!(
                    k,
                    TokenKind::Whitespace
                        | TokenKind::LineComment
                        | TokenKind::BlockComment
                        | TokenKind::Str
                )
            })
            .map(|(_, t)| t)
            .collect()
    }

    #[test]
    fn slash_slash_inside_string_is_not_a_comment() {
        let src = r#"let url = "https://example.com"; x.unwrap();"#;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("//")));
        assert!(
            toks.iter().all(|(k, _)| *k != TokenKind::LineComment),
            "{toks:?}"
        );
        // The code after the string survives as code tokens.
        assert!(only_code(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn raw_strings_any_hash_depth() {
        for src in [
            r###"let s = r"// not a comment";"###,
            r###"let s = r#"quote " inside"#;"###,
            "let s = r##\"deeper \"# still inside\"##;",
            r###"let s = br#"bytes"#;"###,
        ] {
            let toks = kinds(src);
            assert_eq!(
                toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(),
                1,
                "{src}: {toks:?}"
            );
            assert!(toks.iter().all(|(k, _)| *k != TokenKind::LineComment));
        }
    }

    #[test]
    fn raw_identifier_is_not_a_raw_string() {
        let src = "let r#match = 1;";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Ident, "r#match".to_string())));
        assert!(toks.iter().all(|(k, _)| *k != TokenKind::Str));
    }

    #[test]
    fn nested_block_comments() {
        let src = "a /* outer /* inner */ still outer */ b";
        let toks = kinds(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::BlockComment)
                .count(),
            1
        );
        assert!(toks.contains(&(TokenKind::Ident, "b".to_string())));
    }

    #[test]
    fn block_comment_spans_lines() {
        let src = "a /* line one\n  x.unwrap()\n*/ b";
        let toks = kinds(src);
        let comment = toks
            .iter()
            .find(|(k, _)| *k == TokenKind::BlockComment)
            .unwrap();
        assert!(comment.1.contains("unwrap"));
        assert!(!only_code(src).contains(&"unwrap".to_string()));
    }

    #[test]
    fn char_vs_lifetime() {
        let src = "let c = 'a'; let n = '\\n'; fn f<'a>(x: &'a str, _: &'static u8) {} 'outer: loop { break 'outer; }";
        let toks = kinds(src);
        let chars: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(chars, ["'a'", "'\\n'"]);
        let lifetimes: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static", "'outer", "'outer"]);
    }

    #[test]
    fn byte_and_unicode_char_literals() {
        let src = "let b = b'x'; let q = b'\\''; let u = '\u{e9}';";
        let toks = kinds(src);
        let chars: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(chars, ["b'x'", "b'\\''", "'\u{e9}'"]);
    }

    #[test]
    fn quote_char_literal_is_not_a_lifetime() {
        // `'\''` and `'''` both start with a quote pair that must not
        // open a string-like consumption of the rest of the file.
        let src = "let a = '\\''; let b = 'x'; f()";
        assert!(only_code(src).contains(&"f".to_string()));
    }

    #[test]
    fn string_escapes() {
        let src = r#"let s = "say \"hi\" // still string"; g()"#;
        let toks = kinds(src);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert!(only_code(src).contains(&"g".to_string()));
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let src = "0..10; 1.max(2); 1.5e-3; 0xFF_u32; 1_000;";
        let toks = kinds(src);
        let nums: Vec<&String> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Number)
            .map(|(_, t)| t)
            .collect();
        assert_eq!(nums, ["0", "10", "1", "2", "1.5e-3", "0xFF_u32", "1_000"]);
        assert!(only_code(src).contains(&"max".to_string()));
    }

    #[test]
    fn doc_comments_are_comments() {
        let src = "/// outer docs with `x.unwrap()`\n//! inner\n/** block docs */ fn f() {}";
        assert!(!only_code(src).contains(&"unwrap".to_string()));
        let toks = kinds(src);
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| matches!(k, TokenKind::LineComment | TokenKind::BlockComment))
                .count(),
            3
        );
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in [
            "let s = \"never closed",
            "/* never closed",
            "/* /* nested unclosed */",
            "let s = r#\"unclosed",
            "let c = '",
            "let c = '\\",
            "let c = 'x",
            "r#",
            "b",
            "1e+",
        ] {
            roundtrip(src);
        }
    }

    #[test]
    fn attributes_lex_as_punct_and_idents() {
        let src = "#[cfg(test)]\n#![warn(missing_docs)]\nmod t {}";
        let toks = kinds(src);
        assert!(toks.contains(&(TokenKind::Punct, "#".to_string())));
        assert!(toks.contains(&(TokenKind::Ident, "cfg".to_string())));
        assert!(toks.contains(&(TokenKind::Ident, "missing_docs".to_string())));
    }

    #[test]
    fn non_ascii_content_roundtrips() {
        roundtrip("// héllo wörld\nlet s = \"ünïcode\"; let c = 'ß'; idént()");
    }
}

//! Cross-file drift passes: declaration-level checks that keep
//! producer and consumer layers of the pipeline in sync.
//!
//! Unlike the per-file rules, these parse **declarations** out of the
//! token stream — an enum's variant list, a `const` string array, the
//! string literals of a diagnostic-code table — and check that every
//! declared item has a consumer (or an explicit, named waiver) in the
//! layer that is supposed to consume it:
//!
//! * [`RULE_EVENT`] — every `ccs-trace` `Event` variant is either
//!   matched (`Event::Variant`) or explicitly waived
//!   (`// EVENT-IGNORED: Variant — reason`) by each event-stream
//!   fold (`ccs-profile`'s `ProfileBuilder`, `ccs-report`'s
//!   `fold`);
//! * [`RULE_DIAG`] — every `CCS0xx` / `CCSWxx` code string declared
//!   by `ccs-analyze` (and the schedule-violation codes it wraps from
//!   `ccs-schedule::checker`) appears in the `DESIGN.md` diagnostic
//!   catalogue;
//! * [`RULE_BENCH`] — every BENCH section key declared by
//!   `bench_hotpath` (`BENCH_SECTIONS`) is claimed by `bench_report`'s
//!   trajectory gate as either gated (`GATED_SECTIONS`) or explicitly
//!   ungated with a reason (`UNGATED_SECTIONS`); stale entries on
//!   either side are findings too.
//!
//! A new event kind, diagnostic code, or BENCH section without a
//! consumer-side decision fails `cargo xtask lint` — and therefore CI
//! — before it can silently drift.

use crate::view::SourceFile;
use crate::Finding;

/// Rule identifier for unconsumed trace-event variants.
pub const RULE_EVENT: &str = "trace-event-consumed";
/// Rule identifier for undocumented diagnostic codes.
pub const RULE_DIAG: &str = "diag-code-documented";
/// Rule identifier for ungated BENCH sections.
pub const RULE_BENCH: &str = "bench-section-gated";

/// The file declaring the `Event` enum.
const EVENT_DECL: &str = "crates/ccs-trace/src/event.rs";
/// The event-stream folds that must consume (or waive) every variant.
const EVENT_CONSUMERS: [&str; 2] = [
    "crates/ccs-profile/src/lib.rs",
    "crates/ccs-report/src/fold.rs",
];
/// Files owning diagnostic-code string literals.
const DIAG_ROOT: &str = "crates/ccs-analyze/src";
/// The schedule-violation codes wrapped by `ccs-analyze` live here.
const DIAG_CHECKER: &str = "crates/ccs-schedule/src/checker.rs";
/// The file declaring the BENCH report sections.
const BENCH_DECL: &str = "crates/ccs-bench/src/bin/bench_hotpath.rs";
/// The file declaring the gated/ungated section split.
const BENCH_GATE: &str = "crates/ccs-bench/src/report_diff.rs";

/// Runs every drift pass over the workspace sources plus the
/// `DESIGN.md` text.
pub fn drift_passes(files: &[(String, String)], design_md: &str) -> Vec<Finding> {
    let mut out = Vec::new();
    event_consumed(files, &mut out);
    diag_documented(files, design_md, &mut out);
    bench_gated(files, &mut out);
    out
}

fn file<'a>(files: &'a [(String, String)], rel: &str) -> Option<&'a (String, String)> {
    files.iter().find(|(r, _)| r == rel)
}

fn event_consumed(files: &[(String, String)], out: &mut Vec<Finding>) {
    let Some((decl_rel, decl_text)) = file(files, EVENT_DECL) else {
        return;
    };
    let decl = SourceFile::new(decl_rel, decl_text);
    let variants = enum_variants(&decl, decl_text, "Event");
    if variants.is_empty() {
        out.push(Finding {
            file: decl_rel.clone(),
            line: 0,
            rule: RULE_EVENT,
            message: "could not parse any `enum Event` variants; the drift pass \
                      is blind — fix the declaration or the parser"
                .to_string(),
        });
        return;
    }
    for consumer_rel in EVENT_CONSUMERS {
        let Some((c_rel, c_text)) = file(files, consumer_rel) else {
            continue;
        };
        let consumer = SourceFile::new(c_rel, c_text);
        let ignored = ignored_events(&consumer);
        for (variant, line) in &variants {
            let handled = mentions_in_code(&consumer, &format!("Event::{variant}"))
                || ignored.iter().any(|(v, _)| v == variant);
            if !handled {
                out.push(Finding {
                    file: decl_rel.clone(),
                    line: *line,
                    rule: RULE_EVENT,
                    message: format!(
                        "`Event::{variant}` is not handled by `{consumer_rel}`: \
                         match it in the fold, or waive it there with \
                         `// EVENT-IGNORED: {variant} — reason`"
                    ),
                });
            }
        }
        // Stale waivers: an EVENT-IGNORED naming a variant that no
        // longer exists (or that the fold now matches) rots silently.
        for (name, line) in &ignored {
            if !variants.iter().any(|(v, _)| v == name) {
                out.push(Finding {
                    file: consumer_rel.to_string(),
                    line: *line,
                    rule: RULE_EVENT,
                    message: format!(
                        "`EVENT-IGNORED: {name}` names no current `Event` \
                         variant; delete or update the waiver"
                    ),
                });
            }
        }
    }
}

fn diag_documented(files: &[(String, String)], design_md: &str, out: &mut Vec<Finding>) {
    for (rel, text) in files {
        let owned = rel.starts_with(DIAG_ROOT) || rel == DIAG_CHECKER;
        if !owned {
            continue;
        }
        let sf = SourceFile::new(rel, text);
        for (code, line) in diag_code_literals(&sf) {
            if !design_md.contains(&code) {
                out.push(Finding {
                    file: rel.clone(),
                    line,
                    rule: RULE_DIAG,
                    message: format!(
                        "diagnostic code `{code}` is not in the DESIGN.md \
                         catalogue; add a row to the diagnostics table"
                    ),
                });
            }
        }
    }
}

fn bench_gated(files: &[(String, String)], out: &mut Vec<Finding>) {
    let Some((decl_rel, decl_text)) = file(files, BENCH_DECL) else {
        return;
    };
    let decl = SourceFile::new(decl_rel, decl_text);
    let Some((sections, _)) = const_str_array(&decl, decl_text, "BENCH_SECTIONS") else {
        out.push(Finding {
            file: decl_rel.clone(),
            line: 0,
            rule: RULE_BENCH,
            message: "`bench_hotpath` declares no `BENCH_SECTIONS` const; the \
                      drift pass is blind — restore the declaration"
                .to_string(),
        });
        return;
    };
    let Some((gate_rel, gate_text)) = file(files, BENCH_GATE) else {
        return;
    };
    let gate = SourceFile::new(gate_rel, gate_text);
    let gated = const_str_array(&gate, gate_text, "GATED_SECTIONS");
    let ungated = const_str_array(&gate, gate_text, "UNGATED_SECTIONS");
    let (Some((gated, gated_line)), Some((ungated, _))) = (gated, ungated) else {
        out.push(Finding {
            file: gate_rel.clone(),
            line: 0,
            rule: RULE_BENCH,
            message: "`report_diff` must declare both `GATED_SECTIONS` and \
                      `UNGATED_SECTIONS` so every BENCH section has an \
                      explicit gating decision"
                .to_string(),
        });
        return;
    };
    for (key, line) in &sections {
        let claimed = gated.iter().any(|(k, _)| k == key) || ungated.iter().any(|(k, _)| k == key);
        if !claimed {
            out.push(Finding {
                file: decl_rel.clone(),
                line: *line,
                rule: RULE_BENCH,
                message: format!(
                    "BENCH section `{key}` has no gating decision in \
                     `report_diff`; add it to `GATED_SECTIONS` (and diff it) \
                     or to `UNGATED_SECTIONS` with a reason"
                ),
            });
        }
    }
    for (key, line) in gated.iter().chain(ungated.iter()) {
        if !sections.iter().any(|(k, _)| k == key) {
            out.push(Finding {
                file: gate_rel.clone(),
                line: *line,
                rule: RULE_BENCH,
                message: format!(
                    "section `{key}` is claimed by `report_diff` but \
                     `bench_hotpath` no longer emits it; delete the stale entry"
                ),
            });
        }
    }
    // The gate declaration must match what the differ actually reads:
    // each gated key must appear again in `report_diff` code (its
    // `.get("...")` consultation), not just in the declaration.
    for (key, _) in &gated {
        let quoted = format!("\"{key}\"");
        let uses = gate
            .string_lines
            .iter()
            .enumerate()
            .filter(|(i, l)| !gate.test_mask[*i] && l.contains(&quoted))
            .count();
        if uses < 2 {
            out.push(Finding {
                file: gate_rel.clone(),
                line: gated_line,
                rule: RULE_BENCH,
                message: format!(
                    "`GATED_SECTIONS` lists `{key}` but `report_diff` never \
                     consults that section; gate it for real or move it to \
                     `UNGATED_SECTIONS`"
                ),
            });
        }
    }
}

/// The variants of `enum <name>` as `(variant, 1-based decl line)`.
fn enum_variants(sf: &SourceFile, src: &str, name: &str) -> Vec<(String, usize)> {
    let code = sf.code_token_indices();
    let texts: Vec<&str> = code.iter().map(|&i| sf.tokens[i].text(src)).collect();
    let mut out = Vec::new();
    let mut k = 0usize;
    while k + 2 < code.len() {
        if texts[k] == "enum" && texts[k + 1] == name && texts[k + 2] == "{" {
            let mut depth = 1i64;
            let mut expecting = true;
            let mut j = k + 3;
            while j < code.len() && depth > 0 {
                match texts[j] {
                    "{" | "(" => depth += 1,
                    "}" | ")" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    "," if depth == 1 => expecting = true,
                    "#" | "[" | "]" => {} // attributes between variants
                    t if depth == 1 && expecting => {
                        if t.chars().next().is_some_and(char::is_alphabetic) {
                            out.push((t.to_string(), sf.line_of(sf.tokens[code[j]].start)));
                        }
                        expecting = false;
                    }
                    _ => {}
                }
                j += 1;
            }
            return out;
        }
        k += 1;
    }
    out
}

/// The string elements of `const <name>: ... = [ "...", ... ];` as
/// `(content, 1-based line)`, plus the declaration line.
fn const_str_array(
    sf: &SourceFile,
    src: &str,
    name: &str,
) -> Option<(Vec<(String, usize)>, usize)> {
    let all: Vec<usize> = (0..sf.tokens.len())
        .filter(|&i| {
            !matches!(
                sf.tokens[i].kind,
                crate::lexer::TokenKind::Whitespace
                    | crate::lexer::TokenKind::LineComment
                    | crate::lexer::TokenKind::BlockComment
            )
        })
        .collect();
    let texts: Vec<&str> = all.iter().map(|&i| sf.tokens[i].text(src)).collect();
    let mut k = 0usize;
    while k + 1 < all.len() {
        if texts[k] == "const" && texts[k + 1] == name {
            let decl_line = sf.line_of(sf.tokens[all[k]].start);
            let mut items = Vec::new();
            // Skip the type annotation (`: [&str; N]` carries a `;`
            // of its own) and start collecting at the initializer.
            let mut j = k + 2;
            while j < all.len() && texts[j] != "=" {
                j += 1;
            }
            while j < all.len() && texts[j] != ";" {
                let tok = sf.tokens[all[j]];
                if tok.kind == crate::lexer::TokenKind::Str {
                    let t = texts[j];
                    let inner = t
                        .trim_start_matches(|c| c != '"')
                        .trim_start_matches('"')
                        .trim_end_matches(|c| c != '"')
                        .trim_end_matches('"');
                    items.push((inner.to_string(), sf.line_of(tok.start)));
                }
                j += 1;
            }
            return Some((items, decl_line));
        }
        k += 1;
    }
    None
}

/// Diagnostic-code string literals (`"CCS###"` / `"CCSW##"`) in
/// non-test code, as `(code, 1-based line)`.
fn diag_code_literals(sf: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, line) in sf.string_lines.iter().enumerate() {
        if sf.test_mask[i] {
            continue;
        }
        let bytes = line.as_bytes();
        let mut pos = 0usize;
        while let Some(at) = line[pos..].find("CCS") {
            let abs = pos + at;
            let rest = &line[abs..];
            let tail = rest.as_bytes().get(3..6);
            let code_len = match tail {
                Some(t) if t.iter().all(u8::is_ascii_digit) => 6,
                Some(t) if t[0] == b'W' && t[1..].iter().all(u8::is_ascii_digit) => 6,
                _ => 0,
            };
            // Must be the entire string literal: quote-delimited on
            // both sides, so prose mentioning a code is not a
            // declaration.
            let quoted = code_len > 0
                && abs >= 1
                && bytes[abs - 1] == b'"'
                && bytes.get(abs + code_len) == Some(&b'"');
            if quoted {
                out.push((line[abs..abs + code_len].to_string(), i + 1));
            }
            pos = abs + 3;
        }
    }
    out
}

/// Waivers of the form `// EVENT-IGNORED: Variant — reason`, one per
/// comment line, as `(variant, 1-based line)`.
fn ignored_events(sf: &SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    for (i, line) in sf.comment_lines.iter().enumerate() {
        if let Some(at) = line.find("EVENT-IGNORED:") {
            let rest = &line[at + "EVENT-IGNORED:".len()..];
            let name: String = rest
                .trim_start()
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                out.push((name, i + 1));
            }
        }
    }
    out
}

/// `true` when a non-test code line mentions `needle` bounded by
/// non-identifier characters on both sides.
fn mentions_in_code(sf: &SourceFile, needle: &str) -> bool {
    sf.code_lines.iter().enumerate().any(|(i, line)| {
        if sf.test_mask[i] {
            return false;
        }
        let mut start = 0;
        while let Some(pos) = line[start..].find(needle) {
            let abs = start + pos;
            let before = line[..abs]
                .chars()
                .next_back()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            let after = line[abs + needle.len()..]
                .chars()
                .next()
                .is_none_or(|c| !c.is_alphanumeric() && c != '_');
            if before && after {
                return true;
            }
            start = abs + needle.len();
        }
        false
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(entries: &[(&str, &str)]) -> Vec<(String, String)> {
        entries
            .iter()
            .map(|(r, t)| (r.to_string(), t.to_string()))
            .collect()
    }

    const EVENT_SRC: &str = "/// Docs.\npub enum Event {\n    /// A.\n    Alpha { x: u32 },\n    /// B.\n    Beta(u32),\n    /// C.\n    Gamma,\n}\n";

    #[test]
    fn enum_variants_parse_struct_tuple_and_unit() {
        let sf = SourceFile::new("e.rs", EVENT_SRC);
        let v = enum_variants(&sf, EVENT_SRC, "Event");
        let names: Vec<&str> = v.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["Alpha", "Beta", "Gamma"]);
        assert_eq!(v[0].1, 4);
    }

    #[test]
    fn unhandled_variant_is_a_finding_waiver_clears_it() {
        let consumer_handles_two =
            "fn fold(ev: Event) {\n    match ev {\n        Event::Alpha { .. } => {}\n        Event::Beta(_) => {}\n        _ => {}\n    }\n}\n";
        let files = ws(&[
            (super::EVENT_DECL, EVENT_SRC),
            (super::EVENT_CONSUMERS[0], consumer_handles_two),
            (super::EVENT_CONSUMERS[1], consumer_handles_two),
        ]);
        let f = drift_passes(&files, "");
        let event_findings: Vec<&Finding> = f.iter().filter(|f| f.rule == RULE_EVENT).collect();
        assert_eq!(event_findings.len(), 2, "{event_findings:?}");
        assert!(event_findings[0].message.contains("Gamma"));

        let with_waiver = format!(
            "// EVENT-IGNORED: Gamma — carries nothing this fold needs\n{consumer_handles_two}"
        );
        let files = ws(&[
            (super::EVENT_DECL, EVENT_SRC),
            (super::EVENT_CONSUMERS[0], &with_waiver),
            (super::EVENT_CONSUMERS[1], &with_waiver),
        ]);
        assert!(drift_passes(&files, "")
            .iter()
            .all(|f| f.rule != RULE_EVENT));
    }

    #[test]
    fn mention_in_test_code_does_not_count() {
        let only_tests = "fn fold(_: Event) {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = Event::Alpha { x: 1 }; }\n}\n";
        let files = ws(&[
            (super::EVENT_DECL, EVENT_SRC),
            (super::EVENT_CONSUMERS[0], only_tests),
        ]);
        let f = drift_passes(&files, "");
        assert!(
            f.iter()
                .filter(|f| f.rule == RULE_EVENT)
                .any(|f| f.message.contains("Alpha")),
            "{f:?}"
        );
    }

    #[test]
    fn stale_waiver_is_a_finding() {
        let consumer = "// EVENT-IGNORED: Vanished — no longer exists\nfn fold(ev: Event) {\n    match ev {\n        Event::Alpha { .. } => {}\n        Event::Beta(_) => {}\n        Event::Gamma => {}\n    }\n}\n";
        let files = ws(&[
            (super::EVENT_DECL, EVENT_SRC),
            (super::EVENT_CONSUMERS[0], consumer),
        ]);
        let f = drift_passes(&files, "");
        assert!(
            f.iter()
                .any(|f| f.rule == RULE_EVENT && f.message.contains("Vanished")),
            "{f:?}"
        );
    }

    #[test]
    fn diag_codes_must_be_in_design_md() {
        let diag = "pub const A: &str = \"CCS001\";\npub const B: &str = \"CCSW42\";\n";
        let files = ws(&[("crates/ccs-analyze/src/diag.rs", diag)]);
        let f = drift_passes(&files, "catalogue: CCS001 only");
        let diag_findings: Vec<&Finding> = f.iter().filter(|f| f.rule == RULE_DIAG).collect();
        assert_eq!(diag_findings.len(), 1, "{diag_findings:?}");
        assert!(diag_findings[0].message.contains("CCSW42"));
        assert_eq!(diag_findings[0].line, 2);
        assert!(drift_passes(&files, "CCS001 and CCSW42")
            .iter()
            .all(|f| f.rule != RULE_DIAG));
    }

    #[test]
    fn prose_mentions_and_test_codes_are_not_declarations() {
        let src = "/// Emits `CCS001` on parse errors.\nfn f() { let s = \"code CCS001 in prose\"; }\n#[cfg(test)]\nmod tests {\n    fn t() { assert_eq!(code(), \"CCS999\"); }\n}\n";
        let files = ws(&[("crates/ccs-analyze/src/diag.rs", src)]);
        assert!(drift_passes(&files, "").iter().all(|f| f.rule != RULE_DIAG));
    }

    #[test]
    fn bench_sections_need_a_gating_decision() {
        let hotpath =
            "const BENCH_SECTIONS: [&str; 3] = [\"timings_ms\", \"fingerprints\", \"metrics\"];\n";
        let gate_ok = "const GATED_SECTIONS: [&str; 2] = [\"timings_ms\", \"fingerprints\"];\nconst UNGATED_SECTIONS: [&str; 1] = [\"metrics\"];\nfn parse(v: &V) { v.get(\"timings_ms\"); v.get(\"fingerprints\"); }\n";
        let files = ws(&[(super::BENCH_DECL, hotpath), (super::BENCH_GATE, gate_ok)]);
        assert!(
            drift_passes(&files, "")
                .iter()
                .all(|f| f.rule != RULE_BENCH),
            "{:?}",
            drift_passes(&files, "")
        );

        // A new section without a decision fails.
        let hotpath2 = "const BENCH_SECTIONS: [&str; 4] = [\"timings_ms\", \"fingerprints\", \"metrics\", \"newbie\"];\n";
        let files = ws(&[(super::BENCH_DECL, hotpath2), (super::BENCH_GATE, gate_ok)]);
        let f = drift_passes(&files, "");
        assert!(
            f.iter()
                .any(|f| f.rule == RULE_BENCH && f.message.contains("newbie")),
            "{f:?}"
        );
    }

    #[test]
    fn stale_gate_entries_and_unconsulted_gated_keys_are_findings() {
        let hotpath = "const BENCH_SECTIONS: [&str; 1] = [\"timings_ms\"];\n";
        // `gone` is stale; `timings_ms` is declared gated but never read.
        let gate = "const GATED_SECTIONS: [&str; 2] = [\"timings_ms\", \"gone\"];\nconst UNGATED_SECTIONS: [&str; 0] = [];\n";
        let files = ws(&[(super::BENCH_DECL, hotpath), (super::BENCH_GATE, gate)]);
        let f = drift_passes(&files, "");
        assert!(
            f.iter()
                .any(|f| f.rule == RULE_BENCH && f.message.contains("stale")),
            "{f:?}"
        );
        assert!(
            f.iter()
                .any(|f| f.rule == RULE_BENCH && f.message.contains("never")),
            "{f:?}"
        );
    }

    #[test]
    fn missing_declarations_are_loud() {
        let files = ws(&[(super::BENCH_DECL, "fn main() {}\n")]);
        let f = drift_passes(&files, "");
        assert!(
            f.iter()
                .any(|f| f.rule == RULE_BENCH && f.message.contains("BENCH_SECTIONS")),
            "{f:?}"
        );
        let files = ws(&[
            (
                super::BENCH_DECL,
                "const BENCH_SECTIONS: [&str; 1] = [\"x\"];\n",
            ),
            (super::BENCH_GATE, "fn parse() {}\n"),
        ]);
        let f = drift_passes(&files, "");
        assert!(
            f.iter()
                .any(|f| f.rule == RULE_BENCH && f.message.contains("GATED_SECTIONS")),
            "{f:?}"
        );
    }
}

//! The lexer's ground truth, checked against every real source file:
//! the token stream is a complete tiling (concatenated spans
//! reproduce the input byte-for-byte) and the derived line views stay
//! aligned with the original.

use ccs_lint::lexer::{lex, TokenKind};
use ccs_lint::view::SourceFile;
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/ccs-lint has the repo root two levels up")
}

#[test]
fn every_workspace_file_roundtrips() {
    let files = ccs_lint::workspace_sources(repo_root()).expect("walk workspace");
    assert!(files.len() > 50, "workspace walk looks broken");
    for (rel, text) in &files {
        let tokens = lex(text);
        // Complete tiling: contiguous, gap-free, covers the input.
        let mut pos = 0usize;
        for t in &tokens {
            assert_eq!(t.start, pos, "{rel}: gap or overlap at byte {pos}");
            assert!(t.end > t.start, "{rel}: empty token at byte {pos}");
            pos = t.end;
        }
        assert_eq!(pos, text.len(), "{rel}: tiling stops short of EOF");
        let rebuilt: String = tokens.iter().map(|t| t.text(text)).collect();
        assert_eq!(&rebuilt, text, "{rel}: concatenated spans differ");
    }
}

#[test]
fn views_stay_line_and_column_aligned() {
    let files = ccs_lint::workspace_sources(repo_root()).expect("walk workspace");
    for (rel, text) in &files {
        let sf = SourceFile::new(rel, text);
        let original: Vec<&str> = text.split('\n').collect();
        assert_eq!(sf.num_lines(), original.len(), "{rel}: line count differs");
        for (i, raw) in original.iter().enumerate() {
            let orig = raw.strip_suffix('\r').unwrap_or(raw);
            for view in [&sf.code_lines[i], &sf.comment_lines[i], &sf.string_lines[i]] {
                assert!(
                    view.len() <= orig.len(),
                    "{rel}:{}: view longer than the original line",
                    i + 1
                );
                // Column alignment: every non-space view byte matches
                // the original at the same position.
                for (col, (v, o)) in view.bytes().zip(orig.bytes()).enumerate() {
                    assert!(
                        v == b' ' || v == o,
                        "{rel}:{}:{}: view byte {v:?} != original {o:?}",
                        i + 1,
                        col + 1
                    );
                }
            }
        }
    }
}

#[test]
fn workspace_string_and_comment_volume_is_sane() {
    // A lexer bug that misclassifies large regions (runaway raw
    // string, comment that never closes) would tilt these ratios hard;
    // the bounds are loose enough to survive normal growth.
    let files = ccs_lint::workspace_sources(repo_root()).expect("walk workspace");
    let mut by_kind = [0usize; 3];
    let mut total = 0usize;
    for (_, text) in &files {
        for t in lex(text) {
            let len = t.end - t.start;
            total += len;
            match t.kind {
                TokenKind::LineComment | TokenKind::BlockComment => by_kind[1] += len,
                TokenKind::Str => by_kind[2] += len,
                _ => by_kind[0] += len,
            }
        }
    }
    let pct = |n: usize| n * 100 / total.max(1);
    assert!(pct(by_kind[0]) >= 40, "code share {}%", pct(by_kind[0]));
    assert!(pct(by_kind[1]) <= 50, "comment share {}%", pct(by_kind[1]));
    assert!(pct(by_kind[2]) <= 20, "string share {}%", pct(by_kind[2]));
}

//! The parity gate: the token engine must see everything the retired
//! line engine saw.
//!
//! The line engine (`parity/line_engine.rs`, frozen verbatim at its
//! retirement) and the token engine both run over the **real
//! workspace sources**.  Every `(file, line, rule)` the line engine
//! reports must also be reported by the token engine, except for
//! entries on the explicit [`LINE_ENGINE_FALSE_POSITIVES`] allowlist —
//! sites where line heuristics misread comments or string literals
//! and the token engine is right to stay quiet.
//!
//! The gate is directional on purpose: the token engine may report
//! *more* (it has new rules and fewer blind spots), never less.

#[path = "parity/line_engine.rs"]
mod line_engine;

use std::collections::BTreeSet;
use std::path::Path;

/// Line-engine findings on the current tree that are **false
/// positives of line heuristics**: the token engine deliberately does
/// not report them.  Each entry is `(file, rule, why the line engine
/// is wrong)`.  Adding to this list requires the same scrutiny as a
/// lint escape: the reason must name the comment/string construct
/// that fooled the line engine.
const LINE_ENGINE_FALSE_POSITIVES: [(&str, &str, &str); 2] = [
    (
        "crates/ccs-lint/src/rules.rs",
        "no-unordered-iteration",
        "the UNORDERED_TYPES rule table names \"HashMap\" inside a string \
         literal; the line engine reads string contents as code",
    ),
    (
        "crates/ccs-lint/src/rules.rs",
        "no-println-in-libs",
        "the PRINT_MACROS rule table names \"eprintln!(\" inside a string \
         literal; the line engine reads string contents as code",
    ),
];

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/ccs-lint has the repo root two levels up")
}

#[test]
fn token_engine_reports_a_superset_of_the_line_engine() {
    let root = repo_root();
    let files = ccs_lint::workspace_sources(root).expect("walk workspace");
    assert!(
        files.len() > 50,
        "workspace walk looks broken: only {} files",
        files.len()
    );
    let design_md =
        std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md at the repo root");

    let token: BTreeSet<(String, usize, String)> = ccs_lint::lint_files(&files, &design_md)
        .findings
        .into_iter()
        .map(|f| (f.file, f.line, f.rule.to_string()))
        .collect();

    let mut missing = Vec::new();
    let mut waived = 0usize;
    for (rel, text) in &files {
        for f in line_engine::lint_source(rel, text) {
            let key = (f.file.clone(), f.line, f.rule.to_string());
            if token.contains(&key) {
                continue;
            }
            if LINE_ENGINE_FALSE_POSITIVES
                .iter()
                .any(|(file, rule, _)| *file == f.file && *rule == f.rule)
            {
                waived += 1;
                continue;
            }
            missing.push(f);
        }
    }
    assert!(
        missing.is_empty(),
        "line-engine findings the token engine missed (either a token-engine \
         bug, or a line-engine false positive to allowlist with a reason):\n{}",
        missing
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    // The allowlist must stay honest: every entry still corresponds to
    // at least one live line-engine finding.
    let line_hit_rules: BTreeSet<(String, String)> = files
        .iter()
        .flat_map(|(rel, text)| line_engine::lint_source(rel, text))
        .map(|f| (f.file, f.rule.to_string()))
        .collect();
    for (file, rule, why) in LINE_ENGINE_FALSE_POSITIVES {
        assert!(
            line_hit_rules.contains(&(file.to_string(), rule.to_string())),
            "stale allowlist entry ({file}, {rule}): the line engine no longer \
             reports it — delete the entry (reason was: {why})"
        );
    }
    let _ = waived;
}
